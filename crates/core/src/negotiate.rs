//! The negotiation cycle: the matchmaking algorithm plus the fair-matching
//! policy (paper §4).
//!
//! "Periodically, the pool manager enters a negotiation cycle. This phase
//! invokes the matchmaking algorithm, which determines which CAs require
//! matchmaking services, obtains requests from these CAs, and matches them
//! with compatible RA ads."
//!
//! Fairness is implemented in two cooperating layers:
//!
//! * **across cycles** — past usage decays into an effective user priority
//!   ([`crate::priority`]), and users are served best-priority-first;
//! * **within a cycle** — users are served in *rounds* (one request per
//!   user per round), so a user with a thousand queued jobs cannot starve
//!   everyone behind them in a single cycle.
//!
//! Preemption follows the paper's model: a claimed resource "may also send
//! an ad when it starts running the job, indicating that although the
//! workstation is currently busy, it is still interested in hearing from
//! higher priority customers. The specification of what constitutes higher
//! priority is completely under the control of the RA" — i.e. a claimed
//! offer is matched only when the offer's *own* `Rank` of the new request
//! strictly exceeds its rank of the current claimant (advertised as
//! `CurrentRank`).

use crate::admanager::{AdStore, StoredAd};
use crate::autocluster::{cluster_requests, offer_external_refs, MatchList, OfferMeta};
use crate::matcher::{Candidate, MatchEngine};
use crate::priority::PriorityTracker;
use crate::protocol::{EntityKind, MatchNotification, Timestamp};
use crate::ticket::Ticket;
use classad::{ClassAd, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Attribute names the negotiator reads from ads (beyond the match
/// conventions).
const ATTR_OWNER: &str = "Owner";
const ATTR_STATE: &str = "State";
const ATTR_CURRENT_RANK: &str = "CurrentRank";
const ATTR_REMOTE_OWNER: &str = "RemoteOwner";
const STATE_CLAIMED: &str = "Claimed";

/// Negotiator tunables.
#[derive(Debug, Clone)]
pub struct NegotiatorConfig {
    /// Worker threads for the match scan (1 = serial).
    pub threads: usize,
    /// Whether claimed resources may be matched to better-ranked requests.
    pub preemption: bool,
    /// How much the offer must prefer the new request over its current
    /// claimant (`offer_rank > CurrentRank + margin`).
    pub preemption_rank_margin: f64,
    /// Usage (resource-seconds) charged to a user per successful match, as
    /// an advance estimate; agents report actual usage later through
    /// [`Negotiator::charge_usage`].
    pub charge_per_match: f64,
    /// Partition requests into equivalence classes and serve each class
    /// from one shared, sorted match list per cycle
    /// ([`crate::autocluster`]) instead of rescanning the offer pool per
    /// request. Produces byte-identical matches to the full scan; disable
    /// only to run the oracle path (testing, benchmarking).
    pub autocluster: bool,
}

impl Default for NegotiatorConfig {
    fn default() -> Self {
        NegotiatorConfig {
            threads: 1,
            preemption: true,
            preemption_rank_margin: 0.0,
            charge_per_match: 0.0,
            autocluster: true,
        }
    }
}

/// One match produced by a negotiation cycle.
#[derive(Debug, Clone)]
pub struct MatchRecord {
    /// Customer-side (request) ad name.
    pub request_name: String,
    /// The request's owner (user).
    pub owner: String,
    /// The request ad as matched.
    pub request_ad: Arc<ClassAd>,
    /// Customer contact address.
    pub customer_contact: String,
    /// Provider-side (offer) ad name.
    pub offer_name: String,
    /// The offer ad as matched.
    pub offer_ad: Arc<ClassAd>,
    /// Provider contact address.
    pub provider_contact: String,
    /// Provider's authorization ticket to relay to the customer.
    pub ticket: Option<Ticket>,
    /// The request's rank of the offer.
    pub request_rank: f64,
    /// The offer's rank of the request.
    pub offer_rank: f64,
    /// If this match preempts a running claim, the displaced user.
    pub preempts: Option<String>,
    /// The request ad's trace context (see
    /// [`crate::admanager::StoredAd::trace`]), so the notifier can keep
    /// the match's causal chain alive across daemons.
    pub trace: Option<crate::protocol::TraceContext>,
}

impl MatchRecord {
    /// Build the two step-3 notifications (customer copy carries the
    /// ticket; provider copy does not need it).
    pub fn notifications(&self) -> (MatchNotification, MatchNotification) {
        let to_customer = MatchNotification {
            own_ad: (*self.request_ad).clone(),
            peer_ad: (*self.offer_ad).clone(),
            peer_contact: self.provider_contact.clone(),
            ticket: self.ticket,
        };
        let to_provider = MatchNotification {
            own_ad: (*self.offer_ad).clone(),
            peer_ad: (*self.request_ad).clone(),
            peer_contact: self.customer_contact.clone(),
            ticket: None,
        };
        (to_customer, to_provider)
    }
}

/// Aggregate statistics for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleStats {
    /// Requests in the store at cycle start.
    pub requests_considered: usize,
    /// Offers in the store at cycle start.
    pub offers_considered: usize,
    /// Matches produced.
    pub matches: usize,
    /// Of which preemptions.
    pub preemptions: usize,
    /// Requests that found no compatible offer.
    pub unmatched_requests: usize,
    /// Distinct users that received at least one match.
    pub users_served: usize,
    /// Fairness rounds executed.
    pub rounds: usize,
    /// Request equivalence classes formed (0 with autoclustering off).
    pub clusters_formed: usize,
    /// Requests served from an already-built cluster match list.
    pub matchlist_hits: usize,
    /// Full scans of the offer pool: match-list builds on the clustered
    /// path, every best-match invocation (including preemption-exclusion
    /// rescans) on the oracle path.
    pub full_scans: usize,
    /// Ads swept by lease expiry just before this cycle (filled in by the
    /// service layer, which owns the sweep; zero when negotiating against
    /// a store directly).
    pub expired_ads: usize,
}

impl CycleStats {
    /// Fold this cycle into an observability registry using the shared
    /// metric schema ([`condor_obs::schema`]): monotone totals accumulate
    /// into counters, the per-cycle figures land in `last_cycle_*` gauges.
    /// Cycle wall-clock duration is not known here — callers that time the
    /// cycle record it into [`condor_obs::schema::CYCLE_DURATION_MS`].
    pub fn record(&self, registry: &condor_obs::Registry) {
        use condor_obs::schema;
        registry.counter(schema::CYCLES).inc();
        registry.counter(schema::MATCHES).add(self.matches as u64);
        registry
            .counter(schema::REQUESTS_CONSIDERED)
            .add(self.requests_considered as u64);
        registry
            .counter(schema::UNMATCHED_REQUESTS)
            .add(self.unmatched_requests as u64);
        registry
            .counter(schema::PREEMPTIONS)
            .add(self.preemptions as u64);
        registry
            .counter(schema::CLUSTERS_FORMED)
            .add(self.clusters_formed as u64);
        registry
            .counter(schema::MATCHLIST_HITS)
            .add(self.matchlist_hits as u64);
        registry
            .counter(schema::FULL_SCANS)
            .add(self.full_scans as u64);
        registry
            .counter(schema::ADS_EXPIRED)
            .add(self.expired_ads as u64);
        registry
            .gauge(schema::LAST_CYCLE_REQUESTS)
            .set(self.requests_considered as i64);
        registry
            .gauge(schema::LAST_CYCLE_OFFERS)
            .set(self.offers_considered as i64);
        registry
            .gauge(schema::LAST_CYCLE_MATCHES)
            .set(self.matches as i64);
        registry
            .gauge(schema::LAST_CYCLE_UNMATCHED)
            .set(self.unmatched_requests as i64);
    }
}

/// The outcome of a negotiation cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleOutcome {
    /// Matches, in the order they were granted.
    pub matches: Vec<MatchRecord>,
    /// Statistics.
    pub stats: CycleStats,
}

/// The pool manager's negotiator.
#[derive(Debug, Default)]
pub struct Negotiator {
    /// The match engine (evaluation policy + conventions).
    pub engine: MatchEngine,
    /// The fair-share priority tracker.
    pub priorities: PriorityTracker,
    /// Tunables.
    pub config: NegotiatorConfig,
}

impl Negotiator {
    /// Create a negotiator with default engine, priorities, and config.
    pub fn new(config: NegotiatorConfig) -> Self {
        Negotiator {
            engine: MatchEngine::new(),
            priorities: PriorityTracker::default(),
            config,
        }
    }

    /// Report actual resource usage (resource-seconds) for a user, e.g.
    /// when a claim is released.
    pub fn charge_usage(&mut self, user: &str, seconds: f64, now: Timestamp) {
        self.priorities.charge(user, seconds, now);
    }

    fn string_attr(&self, ad: &ClassAd, name: &str) -> Option<String> {
        match ad.eval_attr(name, &self.engine.policy) {
            Value::Str(s) => Some(s.to_string()),
            _ => None,
        }
    }

    fn number_attr(&self, ad: &ClassAd, name: &str) -> Option<f64> {
        ad.eval_attr(name, &self.engine.policy).as_f64()
    }

    /// Run one negotiation cycle over the ads in `store` at time `now`.
    pub fn negotiate(&mut self, store: &AdStore, now: Timestamp) -> CycleOutcome {
        let mut offers: Vec<StoredAd> = store.snapshot(EntityKind::Provider, now);
        let mut requests: Vec<StoredAd> = store.snapshot(EntityKind::Customer, now);
        // Daemon self-ads live in the store so they are queryable, but
        // they are telemetry, not participants: matching against them (or
        // counting them in cycle statistics) would corrupt both.
        offers.retain(|o| !condor_obs::is_daemon_ad(&o.ad));
        requests.retain(|r| !condor_obs::is_daemon_ad(&r.ad));
        // Multi-port (gang) requests are served by the gang matcher (see
        // the `gangmatch` crate), not the bilateral algorithm: a request
        // with a `Ports` list must be granted atomically or not at all.
        requests.retain(|r| !r.ad.contains("Ports"));
        // FIFO within a user: oldest advertisement first.
        requests.sort_by_key(|r| r.seq);

        let offer_ads: Vec<Arc<ClassAd>> = offers.iter().map(|o| o.ad.clone()).collect();
        // Per-offer claim snapshot, evaluated once per cycle: whether the
        // offer is claimed (per its own advertised state), at what rank it
        // values its current claimant, and who that claimant is. Grant-time
        // code reads these instead of re-evaluating `State`/`CurrentRank`/
        // `RemoteOwner` per request.
        let offer_meta: Vec<OfferMeta> = offers
            .iter()
            .map(|o| {
                let state = self.string_attr(&o.ad, ATTR_STATE);
                if state.as_deref() == Some(STATE_CLAIMED) {
                    OfferMeta {
                        claimed_rank: Some(
                            self.number_attr(&o.ad, ATTR_CURRENT_RANK).unwrap_or(0.0),
                        ),
                        remote_owner: self.string_attr(&o.ad, ATTR_REMOTE_OWNER),
                    }
                } else {
                    OfferMeta::default()
                }
            })
            .collect();

        // Group request indices by owner.
        let mut by_owner: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, r) in requests.iter().enumerate() {
            let owner = self
                .string_attr(&r.ad, ATTR_OWNER)
                .unwrap_or_else(|| "<unknown>".to_string());
            by_owner.entry(owner).or_default().push(i);
        }
        let users = self
            .priorities
            .order_users(by_owner.keys().map(|s| s.as_str()), now);

        let mut outcome = CycleOutcome::default();
        outcome.stats.requests_considered = requests.len();
        outcome.stats.offers_considered = offers.len();

        // Autoclustering: partition requests into equivalence classes whose
        // members score identically against every offer, then serve each
        // class from one shared match list built on first use.
        let clustering = if self.config.autocluster {
            let external = offer_external_refs(&self.engine.conventions, &offer_ads);
            Some(cluster_requests(
                &self.engine.conventions,
                requests.iter().map(|r| r.ad.as_ref()),
                &external,
            ))
        } else {
            None
        };
        let mut match_lists: Vec<Option<MatchList>> = match &clustering {
            Some(c) => {
                outcome.stats.clusters_formed = c.num_clusters;
                (0..c.num_clusters).map(|_| None).collect()
            }
            None => Vec::new(),
        };

        let mut taken = vec![false; offers.len()];
        let mut cursor: HashMap<&str, usize> = HashMap::new();
        let mut served_users: HashMap<String, bool> = HashMap::new();
        let mut no_match: usize = 0;

        // Fairness rounds: one request per user per round, best-priority
        // user first, until a full round makes no progress.
        loop {
            let mut progress = false;
            outcome.stats.rounds += 1;
            for user in &users {
                let Some(queue) = by_owner.get(user.as_str()) else {
                    continue;
                };
                let pos = cursor.entry(user.as_str()).or_insert(0);
                // Skip requests that already failed or matched.
                if *pos >= queue.len() {
                    continue;
                }
                let req_idx = queue[*pos];
                *pos += 1;
                progress = true;

                let request = &requests[req_idx];
                let preemption_on = self.config.preemption;
                let margin = self.config.preemption_rank_margin;

                let chosen: Option<(Candidate, Option<String>)> = if let Some(cl) = &clustering {
                    // Clustered path: the first member of an equivalence
                    // class pays one full scan to build the sorted match
                    // list; everyone else in the class consumes from it.
                    let cid = cl.cluster_of[req_idx];
                    match &mut match_lists[cid] {
                        slot @ None => {
                            outcome.stats.full_scans += 1;
                            let list = MatchList::build(
                                &self.engine,
                                &request.ad,
                                &offer_ads,
                                self.config.threads,
                            );
                            slot.insert(list)
                                .pop_next(&taken, &offer_meta, preemption_on, margin)
                        }
                        Some(list) => {
                            outcome.stats.matchlist_hits += 1;
                            list.pop_next(&taken, &offer_meta, preemption_on, margin)
                        }
                    }
                } else {
                    // Oracle path: a per-request scan with retry. The
                    // best-ranked offer may be claimed and not preemptible
                    // by this request, in which case it is excluded and the
                    // scan repeats.
                    let mut excluded: Vec<bool> = vec![false; offers.len()];
                    loop {
                        // With preemption disabled, claimed offers can
                        // never be granted: filter them up front rather
                        // than excluding them one rescan at a time (keeps
                        // the no-preemption cycle linear in the pool size).
                        let eligible = |i: usize| {
                            !taken[i]
                                && !excluded[i]
                                && (preemption_on || offer_meta[i].claimed_rank.is_none())
                        };
                        outcome.stats.full_scans += 1;
                        let best = if self.config.threads > 1 {
                            self.engine.best_match_parallel(
                                &request.ad,
                                &offer_ads,
                                self.config.threads,
                                eligible,
                            )
                        } else {
                            self.engine.best_match(&request.ad, &offer_ads, eligible)
                        };
                        match best {
                            None => break None,
                            Some(c) => match offer_meta[c.index].claimed_rank {
                                None => break Some((c, None)),
                                Some(current) => {
                                    if preemption_on && c.offer_rank > current + margin {
                                        let displaced = offer_meta[c.index].remote_owner.clone();
                                        break Some((c, Some(displaced.unwrap_or_default())));
                                    }
                                    excluded[c.index] = true;
                                }
                            },
                        }
                    }
                };

                match chosen {
                    None => no_match += 1,
                    Some((c, preempts)) => {
                        taken[c.index] = true;
                        let offer = &offers[c.index];
                        if preempts.is_some() {
                            outcome.stats.preemptions += 1;
                        }
                        served_users.insert(user.clone(), true);
                        if self.config.charge_per_match > 0.0 {
                            self.priorities
                                .charge(user, self.config.charge_per_match, now);
                        }
                        outcome.matches.push(MatchRecord {
                            request_name: request.name.clone(),
                            owner: user.clone(),
                            request_ad: request.ad.clone(),
                            customer_contact: request.contact.clone(),
                            offer_name: offer.name.clone(),
                            offer_ad: offer.ad.clone(),
                            provider_contact: offer.contact.clone(),
                            ticket: offer.ticket,
                            request_rank: c.request_rank,
                            offer_rank: c.offer_rank,
                            preempts,
                            trace: request.trace,
                        });
                    }
                }
            }
            if !progress {
                break;
            }
        }

        outcome.stats.matches = outcome.matches.len();
        outcome.stats.unmatched_requests = no_match;
        outcome.stats.users_served = served_users.len();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Advertisement, AdvertisingProtocol};
    use classad::parse_classad;

    fn proto() -> AdvertisingProtocol {
        AdvertisingProtocol::default()
    }

    fn machine_ad(name: &str, mips: i64) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Mips = {mips};
                State = "Unclaimed";
                Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap();
        Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: format!("{name}:9614"),
            ticket: Some(Ticket::from_raw(name.len() as u128)),
            expires_at: 10_000,
        }
    }

    fn claimed_machine_ad(name: &str, remote_owner: &str, current_rank: f64) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Mips = 100;
                State = "Claimed"; RemoteOwner = "{remote_owner}";
                CurrentRank = {current_rank};
                Constraint = other.Type == "Job";
                Rank = other.JobPrio ]"#
        ))
        .unwrap();
        Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: format!("{name}:9614"),
            ticket: None,
            expires_at: 10_000,
        }
    }

    fn job_ad(name: &str, owner: &str) -> Advertisement {
        job_ad_with(name, owner, "")
    }

    fn job_ad_with(name: &str, owner: &str, extra: &str) -> Advertisement {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Job"; Owner = "{owner}"; {extra}
                Constraint = other.Type == "Machine"; Rank = other.Mips ]"#
        ))
        .unwrap();
        Advertisement {
            kind: EntityKind::Customer,
            ad,
            contact: format!("{owner}-ca:1"),
            ticket: None,
            expires_at: 10_000,
        }
    }

    fn store_with(ads: Vec<Advertisement>) -> AdStore {
        let mut store = AdStore::new();
        for a in ads {
            store.advertise(a, 0, &proto()).unwrap();
        }
        store
    }

    #[test]
    fn single_job_gets_best_machine() {
        let store = store_with(vec![
            machine_ad("slow", 10),
            machine_ad("fast", 104),
            job_ad("j1", "raman"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.matches[0].offer_name, "fast");
        assert_eq!(out.matches[0].request_rank, 104.0);
        assert_eq!(out.stats.unmatched_requests, 0);
    }

    #[test]
    fn each_offer_granted_once_per_cycle() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("j1", "alice"),
            job_ad("j2", "alice"),
            job_ad("j3", "alice"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.stats.unmatched_requests, 2);
    }

    #[test]
    fn round_robin_across_users_within_cycle() {
        // Two machines, two users with two jobs each: each user must get
        // exactly one machine even though alice's jobs sort first.
        let store = store_with(vec![
            machine_ad("m1", 50),
            machine_ad("m2", 60),
            job_ad("a1", "alice"),
            job_ad("a2", "alice"),
            job_ad("b1", "bob"),
            job_ad("b2", "bob"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 2);
        let mut owners: Vec<&str> = out.matches.iter().map(|m| m.owner.as_str()).collect();
        owners.sort();
        assert_eq!(owners, vec!["alice", "bob"]);
        assert_eq!(out.stats.users_served, 2);
    }

    #[test]
    fn priority_order_decides_who_gets_scarce_resource() {
        let store = store_with(vec![
            machine_ad("only", 50),
            job_ad("a1", "heavy"),
            job_ad("b1", "light"),
        ]);
        let mut neg = Negotiator::default();
        neg.priorities.charge("heavy", 100_000.0, 0);
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.matches[0].owner, "light");
    }

    #[test]
    fn fifo_within_user() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("first", "alice"),
            job_ad("second", "alice"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.matches[0].request_name, "first");
    }

    #[test]
    fn preemption_when_offer_prefers_new_request() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 5.0),
            job_ad_with("hot", "newuser", "JobPrio = 10;"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.stats.preemptions, 1);
        assert_eq!(out.matches[0].preempts.as_deref(), Some("olduser"));
    }

    #[test]
    fn no_preemption_when_rank_not_higher() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 5.0),
            job_ad_with("cold", "newuser", "JobPrio = 5;"), // equal, not higher
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 0);
        assert_eq!(out.stats.unmatched_requests, 1);
    }

    #[test]
    fn preemption_disabled_by_config() {
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 5.0),
            job_ad_with("hot", "newuser", "JobPrio = 10;"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            preemption: false,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 0);
    }

    #[test]
    fn preemption_retry_falls_back_to_unclaimed() {
        // Best-ranked machine is claimed and non-preemptible; the job must
        // fall back to the unclaimed slower machine.
        let store = store_with(vec![
            claimed_machine_ad("busy", "olduser", 50.0), // Mips 100 but won't preempt
            machine_ad("free", 10),
            job_ad_with("j", "alice", "JobPrio = 1;"),
        ]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 1);
        assert_eq!(out.matches[0].offer_name, "free");
    }

    #[test]
    fn charge_per_match_feeds_priorities() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            machine_ad("m2", 50),
            job_ad("a1", "alice"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            charge_per_match: 300.0,
            ..Default::default()
        });
        assert_eq!(neg.priorities.usage("alice", 0), 0.0);
        neg.negotiate(&store, 0);
        assert_eq!(neg.priorities.usage("alice", 0), 300.0);
    }

    #[test]
    fn parallel_negotiation_matches_serial() {
        let mut ads = vec![];
        for i in 0..40 {
            ads.push(machine_ad(&format!("m{i}"), (i * 13) % 97));
        }
        for i in 0..20 {
            ads.push(job_ad(
                &format!("j{i}"),
                if i % 2 == 0 { "alice" } else { "bob" },
            ));
        }
        let store = store_with(ads);
        let mut serial = Negotiator::default();
        let mut parallel = Negotiator::new(NegotiatorConfig {
            threads: 4,
            ..Default::default()
        });
        let a = serial.negotiate(&store, 0);
        let b = parallel.negotiate(&store, 0);
        assert_eq!(a.stats, b.stats);
        let names_a: Vec<(&str, &str)> = a
            .matches
            .iter()
            .map(|m| (m.request_name.as_str(), m.offer_name.as_str()))
            .collect();
        let names_b: Vec<(&str, &str)> = b
            .matches
            .iter()
            .map(|m| (m.request_name.as_str(), m.offer_name.as_str()))
            .collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn autocluster_shares_one_scan_per_equivalence_class() {
        let mut ads = vec![
            machine_ad("m1", 50),
            machine_ad("m2", 60),
            machine_ad("m3", 70),
        ];
        for i in 0..5 {
            ads.push(job_ad(&format!("j{i}"), "alice"));
        }
        let store = store_with(ads);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(
            out.stats.clusters_formed, 1,
            "identical jobs form one cluster"
        );
        assert_eq!(
            out.stats.full_scans, 1,
            "one scan builds the shared match list"
        );
        assert_eq!(out.stats.matchlist_hits, 4, "remaining jobs reuse the list");
        assert_eq!(out.stats.matches, 3);
        assert_eq!(out.stats.unmatched_requests, 2);
    }

    #[test]
    fn oracle_path_counts_scans_and_forms_no_clusters() {
        let store = store_with(vec![
            machine_ad("m1", 50),
            job_ad("j1", "alice"),
            job_ad("j2", "alice"),
        ]);
        let mut neg = Negotiator::new(NegotiatorConfig {
            autocluster: false,
            ..Default::default()
        });
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.clusters_formed, 0);
        assert_eq!(out.stats.matchlist_hits, 0);
        assert_eq!(out.stats.full_scans, 2, "one scan per request");
    }

    #[test]
    fn autocluster_matches_oracle_on_mixed_pool() {
        let mut ads = vec![];
        for i in 0..12 {
            ads.push(machine_ad(&format!("m{i}"), (i * 13) % 97));
        }
        ads.push(claimed_machine_ad("busy-lo", "olduser", 2.0));
        ads.push(claimed_machine_ad("busy-hi", "olduser", 50.0));
        for i in 0..9 {
            let owner = ["alice", "bob", "carol"][i % 3];
            ads.push(job_ad_with(
                &format!("j{i}"),
                owner,
                &format!("JobPrio = {};", i),
            ));
        }
        let store = store_with(ads);
        let mut fast = Negotiator::default();
        let mut oracle = Negotiator::new(NegotiatorConfig {
            autocluster: false,
            ..Default::default()
        });
        let a = fast.negotiate(&store, 0);
        let b = oracle.negotiate(&store, 0);
        let key = |o: &CycleOutcome| {
            o.matches
                .iter()
                .map(|m| {
                    (
                        m.request_name.clone(),
                        m.offer_name.clone(),
                        m.request_rank.to_bits(),
                        m.offer_rank.to_bits(),
                        m.preempts.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.stats.matches, b.stats.matches);
        assert_eq!(a.stats.preemptions, b.stats.preemptions);
        assert_eq!(a.stats.unmatched_requests, b.stats.unmatched_requests);
        assert_eq!(a.stats.users_served, b.stats.users_served);
        assert!(a.stats.full_scans < b.stats.full_scans);
    }

    #[test]
    fn notifications_relay_ticket_to_customer_only() {
        let store = store_with(vec![machine_ad("m", 50), job_ad("j", "alice")]);
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        let (to_customer, to_provider) = out.matches[0].notifications();
        assert!(to_customer.ticket.is_some());
        assert!(to_provider.ticket.is_none());
        assert_eq!(to_customer.peer_contact, "m:9614");
        assert_eq!(to_provider.peer_contact, "alice-ca:1");
        assert_eq!(to_customer.peer_ad, *out.matches[0].offer_ad);
    }

    #[test]
    fn empty_store_yields_empty_cycle() {
        let store = AdStore::new();
        let mut neg = Negotiator::default();
        let out = neg.negotiate(&store, 0);
        assert_eq!(out.stats.matches, 0);
        assert_eq!(out.stats.requests_considered, 0);
    }
}
