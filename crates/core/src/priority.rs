//! User priorities for fair matching.
//!
//! "The matchmaking algorithm also uses past resource usage information to
//! enforce a fair matching policy" (paper §4). This module implements the
//! Condor-style *effective user priority*: each user's accumulated resource
//! usage decays exponentially with a configurable half-life, and the
//! negotiation cycle serves users in increasing priority-value order (lower
//! value = better). An administrator-assigned *priority factor* scales a
//! user's value (e.g. factor 10 makes a user ten times "heavier" per unit
//! of usage).

use crate::protocol::Timestamp;
use std::collections::HashMap;

/// Tunables for the priority system.
#[derive(Debug, Clone)]
pub struct PriorityConfig {
    /// Half-life of accumulated usage, in seconds. Condor's classic default
    /// is one day.
    pub halflife: f64,
    /// Factor assigned to users with no explicit factor.
    pub default_factor: f64,
    /// Floor on the usage term, so brand-new users do not all tie at zero
    /// and factors still discriminate between them.
    pub min_usage: f64,
}

impl Default for PriorityConfig {
    fn default() -> Self {
        PriorityConfig {
            halflife: 86_400.0,
            default_factor: 1.0,
            min_usage: 0.5,
        }
    }
}

#[derive(Debug, Clone)]
struct UserRecord {
    /// Exponentially decayed resource-seconds, current as of `as_of`.
    usage: f64,
    as_of: Timestamp,
    factor: f64,
    /// Lifetime (undecayed) usage, for accounting displays.
    total: f64,
}

/// Tracks per-user usage and computes effective priorities.
#[derive(Debug, Default)]
pub struct PriorityTracker {
    users: HashMap<String, UserRecord>,
    config: PriorityConfig,
}

impl PriorityTracker {
    /// Create a tracker with the given configuration.
    pub fn new(config: PriorityConfig) -> Self {
        PriorityTracker {
            users: HashMap::new(),
            config,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &PriorityConfig {
        &self.config
    }

    fn decayed(&self, rec: &UserRecord, now: Timestamp) -> f64 {
        let dt = now.saturating_sub(rec.as_of) as f64;
        if self.config.halflife <= 0.0 {
            return rec.usage;
        }
        rec.usage * 0.5_f64.powf(dt / self.config.halflife)
    }

    /// Charge `seconds` of resource usage to `user` at time `now`.
    pub fn charge(&mut self, user: &str, seconds: f64, now: Timestamp) {
        let factor = self.config.default_factor;
        let rec = self.users.entry(user.to_string()).or_insert(UserRecord {
            usage: 0.0,
            as_of: now,
            factor,
            total: 0.0,
        });
        // Decay up to `now`, then add.
        let dt = now.saturating_sub(rec.as_of) as f64;
        if dt > 0.0 && self.config.halflife > 0.0 {
            rec.usage *= 0.5_f64.powf(dt / self.config.halflife);
        }
        rec.as_of = rec.as_of.max(now);
        rec.usage += seconds.max(0.0);
        rec.total += seconds.max(0.0);
    }

    /// Set a user's administrator-assigned priority factor (≥ 1 in Condor
    /// practice; any positive value accepted).
    pub fn set_factor(&mut self, user: &str, factor: f64) {
        let rec = self.users.entry(user.to_string()).or_insert(UserRecord {
            usage: 0.0,
            as_of: 0,
            factor: self.config.default_factor,
            total: 0.0,
        });
        rec.factor = factor.max(f64::MIN_POSITIVE);
    }

    /// A user's effective priority value at `now`. **Lower is better.**
    pub fn effective_priority(&self, user: &str, now: Timestamp) -> f64 {
        match self.users.get(user) {
            Some(rec) => rec.factor * self.decayed(rec, now).max(self.config.min_usage),
            None => self.config.default_factor * self.config.min_usage,
        }
    }

    /// A user's decayed usage (resource-seconds) at `now`.
    pub fn usage(&self, user: &str, now: Timestamp) -> f64 {
        self.users
            .get(user)
            .map(|r| self.decayed(r, now))
            .unwrap_or(0.0)
    }

    /// A user's lifetime (undecayed) usage.
    pub fn lifetime_usage(&self, user: &str) -> f64 {
        self.users.get(user).map(|r| r.total).unwrap_or(0.0)
    }

    /// Order users best-priority-first (ascending priority value, ties
    /// broken by name for determinism).
    pub fn order_users<'a>(
        &self,
        users: impl IntoIterator<Item = &'a str>,
        now: Timestamp,
    ) -> Vec<String> {
        let mut v: Vec<(f64, &str)> = users
            .into_iter()
            .map(|u| (self.effective_priority(u, now), u))
            .collect();
        v.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(b.1))
        });
        v.into_iter().map(|(_, u)| u.to_string()).collect()
    }

    /// Users known to the tracker.
    pub fn known_users(&self) -> impl Iterator<Item = &str> {
        self.users.keys().map(|s| s.as_str())
    }

    /// Publish the accounting state as classads — Condor's accountant does
    /// exactly this, so administrative tools can browse priorities with
    /// the same one-way query machinery used for everything else. One ad
    /// per user, `Type = "Accounting"`, sorted by user name.
    pub fn to_ads(&self, now: Timestamp) -> Vec<classad::ClassAd> {
        let mut names: Vec<&String> = self.users.keys().collect();
        names.sort();
        names
            .into_iter()
            .map(|user| {
                let rec = &self.users[user];
                let mut ad = classad::ClassAd::new();
                ad.set_str("Name", &format!("Accounting.{user}"));
                ad.set_str("Type", "Accounting");
                ad.set_str("User", user);
                ad.set_real("EffectivePriority", self.effective_priority(user, now));
                ad.set_real("DecayedUsage", self.decayed(rec, now));
                ad.set_real("LifetimeUsage", rec.total);
                ad.set_real("PriorityFactor", rec.factor);
                ad.set_int("LastUpdate", rec.as_of as i64);
                ad.set("Constraint", classad::Expr::bool(true));
                ad
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> PriorityTracker {
        PriorityTracker::new(PriorityConfig::default())
    }

    #[test]
    fn unknown_user_has_floor_priority() {
        let t = tracker();
        assert_eq!(t.effective_priority("nobody", 0), 0.5);
        assert_eq!(t.usage("nobody", 0), 0.0);
    }

    #[test]
    fn charge_accumulates() {
        let mut t = tracker();
        t.charge("alice", 100.0, 0);
        t.charge("alice", 50.0, 0);
        assert_eq!(t.usage("alice", 0), 150.0);
        assert_eq!(t.lifetime_usage("alice"), 150.0);
    }

    #[test]
    fn usage_halves_after_halflife() {
        let mut t = tracker();
        t.charge("alice", 1000.0, 0);
        let one_halflife = t.config().halflife as Timestamp;
        let u = t.usage("alice", one_halflife);
        assert!((u - 500.0).abs() < 1e-6, "{u}");
        let u = t.usage("alice", 2 * one_halflife);
        assert!((u - 250.0).abs() < 1e-6, "{u}");
    }

    #[test]
    fn decay_applied_before_new_charge() {
        let mut t = tracker();
        let hl = t.config().halflife as Timestamp;
        t.charge("alice", 1000.0, 0);
        t.charge("alice", 100.0, hl);
        let u = t.usage("alice", hl);
        assert!((u - 600.0).abs() < 1e-6, "{u}");
        // Lifetime usage never decays.
        assert_eq!(t.lifetime_usage("alice"), 1100.0);
    }

    #[test]
    fn factor_scales_priority() {
        let mut t = tracker();
        t.charge("alice", 100.0, 0);
        t.charge("vip", 100.0, 0);
        t.set_factor("vip", 0.1);
        assert!(t.effective_priority("vip", 0) < t.effective_priority("alice", 0));
        t.set_factor("vip", 10.0);
        assert!(t.effective_priority("vip", 0) > t.effective_priority("alice", 0));
    }

    #[test]
    fn ordering_prefers_light_users() {
        let mut t = tracker();
        t.charge("heavy", 10_000.0, 0);
        t.charge("light", 10.0, 0);
        let order = t.order_users(["heavy", "light", "new"], 0);
        assert_eq!(order, vec!["new", "light", "heavy"]);
    }

    #[test]
    fn ordering_ties_broken_by_name() {
        let t = tracker();
        let order = t.order_users(["zeta", "alpha"], 0);
        assert_eq!(order, vec!["alpha", "zeta"]);
    }

    #[test]
    fn heavy_user_recovers_over_time() {
        let mut t = tracker();
        t.charge("heavy", 10_000.0, 0);
        t.charge("light", 10.0, 0);
        let far = 20 * t.config().halflife as Timestamp;
        // After many half-lives both decay to the floor and tie; order
        // falls back to names, but priority values converge.
        let ph = t.effective_priority("heavy", far);
        let pl = t.effective_priority("light", far);
        assert!((ph - pl).abs() < 1e-6, "{ph} vs {pl}");
    }

    #[test]
    fn negative_charges_ignored() {
        let mut t = tracker();
        t.charge("alice", -50.0, 0);
        assert_eq!(t.usage("alice", 0), 0.0);
    }

    #[test]
    fn accounting_ads_publish_state() {
        let mut t = tracker();
        t.charge("alice", 100.0, 0);
        t.charge("bob", 200.0, 0);
        t.set_factor("bob", 2.0);
        let ads = t.to_ads(0);
        assert_eq!(ads.len(), 2);
        let policy = classad::EvalPolicy::default();
        assert_eq!(ads[0].get_string("User"), Some("alice"));
        assert_eq!(
            ads[0].eval_attr("DecayedUsage", &policy).as_f64(),
            Some(100.0)
        );
        assert_eq!(
            ads[1].eval_attr("PriorityFactor", &policy).as_f64(),
            Some(2.0)
        );
        assert_eq!(
            ads[1].eval_attr("EffectivePriority", &policy).as_f64(),
            Some(400.0),
            "factor 2 x usage 200"
        );
        // The ads are queryable with the ordinary machinery.
        let conv = classad::MatchConventions::default();
        let probe = classad::parse_classad(
            r#"[ Name = "q"; Constraint = other.Type == "Accounting"
                 && other.EffectivePriority > 150 ]"#,
        )
        .unwrap();
        let hits: Vec<&str> = ads
            .iter()
            .filter(|ad| classad::constraint_holds(&probe, ad, &policy, &conv))
            .filter_map(|ad| ad.get_string("User"))
            .collect();
        assert_eq!(hits, vec!["bob"]);
    }

    #[test]
    fn zero_halflife_disables_decay() {
        let mut t = PriorityTracker::new(PriorityConfig {
            halflife: 0.0,
            ..Default::default()
        });
        t.charge("alice", 100.0, 0);
        assert_eq!(t.usage("alice", 1_000_000), 100.0);
    }
}
