//! Property-based tests for the matchmaking framework: negotiation
//! invariants, ad-store model checking, and wire-format robustness.

use classad::{symmetric_match, ClassAd, EvalPolicy, MatchConventions};
use matchmaker::framing::{encode_framed, FrameDecoder};
use matchmaker::prelude::*;
use matchmaker::protocol::Message;
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct MachineSpec {
    mips: i64,
    memory: i64,
    arch: bool, // true = INTEL, false = SPARC
    claimed: Option<f64>,
}

fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    (
        10i64..200,
        prop_oneof![Just(32i64), Just(64), Just(128)],
        any::<bool>(),
        prop_oneof![
            3 => Just(None),
            1 => (0.0f64..5.0).prop_map(Some)
        ],
    )
        .prop_map(|(mips, memory, arch, claimed)| MachineSpec {
            mips,
            memory,
            arch,
            claimed,
        })
}

#[derive(Debug, Clone)]
struct JobSpec {
    owner: u8,
    memory: i64,
    needs_intel: bool,
    prio: i64,
}

fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        0u8..4,
        prop_oneof![Just(16i64), Just(48), Just(96)],
        any::<bool>(),
        0i64..10,
    )
        .prop_map(|(owner, memory, needs_intel, prio)| JobSpec {
            owner,
            memory,
            needs_intel,
            prio,
        })
}

fn machine_ad(i: usize, m: &MachineSpec) -> ClassAd {
    let claimed_part = match m.claimed {
        Some(rank) => format!(r#"State = "Claimed"; RemoteOwner = "prev"; CurrentRank = {rank};"#),
        None => r#"State = "Unclaimed";"#.to_string(),
    };
    classad::parse_classad(&format!(
        r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Memory = {memory};
             Arch = "{arch}"; {claimed_part}
             Constraint = other.Type == "Job" && other.Memory <= Memory;
             Rank = other.JobPrio ]"#,
        mips = m.mips,
        memory = m.memory,
        arch = if m.arch { "INTEL" } else { "SPARC" },
    ))
    .unwrap()
}

fn job_ad(i: usize, j: &JobSpec) -> ClassAd {
    let arch_clause = if j.needs_intel {
        r#" && other.Arch == "INTEL""#
    } else {
        ""
    };
    classad::parse_classad(&format!(
        r#"[ Name = "j{i}"; Type = "Job"; Owner = "user{}"; Memory = {};
             JobPrio = {};
             Constraint = other.Type == "Machine" && other.Memory >= self.Memory{arch_clause};
             Rank = other.Mips ]"#,
        j.owner, j.memory, j.prio,
    ))
    .unwrap()
}

fn build_store(machines: &[MachineSpec], jobs: &[JobSpec]) -> AdStore {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    for (i, m) in machines.iter().enumerate() {
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Provider,
                    ad: machine_ad(i, m),
                    contact: format!("m{i}:1"),
                    ticket: Some(Ticket::from_raw(i as u128)),
                    expires_at: u64::MAX,
                },
                0,
                &proto,
            )
            .unwrap();
    }
    for (i, j) in jobs.iter().enumerate() {
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Customer,
                    ad: job_ad(i, j),
                    contact: format!("ca{}:1", j.owner),
                    ticket: None,
                    expires_at: u64::MAX,
                },
                0,
                &proto,
            )
            .unwrap();
    }
    store
}

// ---------------------------------------------------------------------------
// Negotiation invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn negotiation_invariants(
        machines in proptest::collection::vec(arb_machine(), 0..24),
        jobs in proptest::collection::vec(arb_job(), 0..16),
        preemption in any::<bool>(),
    ) {
        let store = build_store(&machines, &jobs);
        let mut neg = Negotiator::new(NegotiatorConfig { preemption, ..Default::default() });
        let out = neg.negotiate(&store, 0);
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();

        // 1. No offer is granted twice.
        let mut offers_seen = std::collections::HashSet::new();
        for m in &out.matches {
            prop_assert!(offers_seen.insert(m.offer_name.clone()), "offer {} granted twice", m.offer_name);
        }
        // 2. No request is granted twice.
        let mut reqs_seen = std::collections::HashSet::new();
        for m in &out.matches {
            prop_assert!(reqs_seen.insert(m.request_name.clone()));
        }
        // 3. Every match satisfies both constraints.
        for m in &out.matches {
            prop_assert!(
                symmetric_match(&m.request_ad, &m.offer_ad, &policy, &conv),
                "granted pair does not match: {} x {}", m.request_name, m.offer_name
            );
        }
        // 4. Preemptions only with preemption enabled, and only of claimed
        //    offers the offer itself ranks lower.
        for m in &out.matches {
            if m.preempts.is_some() {
                prop_assert!(preemption);
                let state = m.offer_ad.eval_attr("State", &policy);
                prop_assert_eq!(state.as_str(), Some("Claimed"));
                let current = m.offer_ad.eval_attr("CurrentRank", &policy).as_f64().unwrap();
                prop_assert!(m.offer_rank > current);
            }
        }
        // 5. Bookkeeping adds up.
        prop_assert_eq!(out.stats.matches, out.matches.len());
        prop_assert_eq!(out.stats.matches + out.stats.unmatched_requests, jobs.len());
        prop_assert_eq!(out.stats.requests_considered, jobs.len());
        prop_assert_eq!(out.stats.offers_considered, machines.len());
    }

    #[test]
    fn negotiation_is_deterministic(
        machines in proptest::collection::vec(arb_machine(), 0..12),
        jobs in proptest::collection::vec(arb_job(), 0..8),
    ) {
        let store = build_store(&machines, &jobs);
        let pairs = |out: &matchmaker::negotiate::CycleOutcome| -> Vec<(String, String)> {
            out.matches.iter().map(|m| (m.request_name.clone(), m.offer_name.clone())).collect()
        };
        let a = Negotiator::default().negotiate(&store, 0);
        let b = Negotiator::default().negotiate(&store, 0);
        prop_assert_eq!(pairs(&a), pairs(&b));
        // And the parallel scan agrees with serial.
        let mut par = Negotiator::new(NegotiatorConfig { threads: 3, ..Default::default() });
        let c = par.negotiate(&store, 0);
        prop_assert_eq!(pairs(&a), pairs(&c));
    }

    #[test]
    fn autocluster_is_equivalent_to_full_scan(
        machines in proptest::collection::vec(arb_machine(), 0..24),
        jobs in proptest::collection::vec(arb_job(), 0..20),
        preemption in any::<bool>(),
        margin in prop_oneof![Just(0.0f64), Just(1.5)],
    ) {
        // The clustered fast path must reproduce the oracle's grant
        // sequence byte for byte — same requests, same offers, same ranks,
        // same preemption victims — across claimed machines (preemptible
        // and not) and eligibility filters (arch/memory constraints).
        let store = build_store(&machines, &jobs);
        let config = NegotiatorConfig {
            preemption,
            preemption_rank_margin: margin,
            ..Default::default()
        };
        let mut fast = Negotiator::new(NegotiatorConfig { autocluster: true, ..config.clone() });
        let mut oracle =
            Negotiator::new(NegotiatorConfig { autocluster: false, ..config });
        let a = fast.negotiate(&store, 0);
        let b = oracle.negotiate(&store, 0);

        let records = |out: &matchmaker::negotiate::CycleOutcome| {
            out.matches
                .iter()
                .map(|m| (
                    m.request_name.clone(),
                    m.owner.clone(),
                    m.offer_name.clone(),
                    m.ticket,
                    m.request_rank.to_bits(),
                    m.offer_rank.to_bits(),
                    m.preempts.clone(),
                ))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(records(&a), records(&b));
        // Everything but the cache counters agrees.
        prop_assert_eq!(a.stats.matches, b.stats.matches);
        prop_assert_eq!(a.stats.preemptions, b.stats.preemptions);
        prop_assert_eq!(a.stats.unmatched_requests, b.stats.unmatched_requests);
        prop_assert_eq!(a.stats.users_served, b.stats.users_served);
        prop_assert_eq!(a.stats.rounds, b.stats.rounds);
        // And the fast path never scans more than the oracle: each request
        // is a build or a hit, while the oracle pays at least one scan per
        // request (plus preemption-exclusion rescans).
        prop_assert!(a.stats.full_scans <= b.stats.full_scans);
        prop_assert!(a.stats.full_scans + a.stats.matchlist_hits <= b.stats.full_scans);
    }

    // -----------------------------------------------------------------------
    // Ad store model check
    // -----------------------------------------------------------------------

    #[test]
    fn ad_store_matches_model(ops in proptest::collection::vec(
        (0u8..3, 0usize..8, 1u64..100), 0..60
    )) {
        // Model: a map name -> expires_at. Ops: 0 = advertise, 1 = withdraw,
        // 2 = expire sweep at the op's timestamp.
        let proto = AdvertisingProtocol::default();
        let mut store = AdStore::new();
        let mut model: HashMap<String, u64> = HashMap::new();
        let mut clock = 0u64;
        for (op, idx, dt) in ops {
            match op {
                0 => {
                    let name = format!("e{idx}");
                    let expires = clock + dt;
                    let ad = classad::parse_classad(&format!(
                        r#"[ Name = "{name}"; Constraint = true ]"#
                    )).unwrap();
                    let r = store.advertise(Advertisement {
                        kind: EntityKind::Provider,
                        ad,
                        contact: "c:1".into(),
                        ticket: None,
                        expires_at: expires,
                    }, clock, &proto);
                    prop_assert!(r.is_ok());
                    model.insert(name, expires);
                }
                1 => {
                    let name = format!("e{idx}");
                    let was_in_model = model.remove(&name).is_some();
                    let was_in_store = store.withdraw(EntityKind::Provider, &name);
                    prop_assert_eq!(was_in_model, was_in_store);
                }
                _ => {
                    clock += dt;
                    store.expire(clock);
                    model.retain(|_, &mut exp| exp > clock);
                }
            }
            // Live sets agree after every op.
            let mut live_store: Vec<String> = store
                .snapshot(EntityKind::Provider, clock)
                .into_iter()
                .map(|s| s.name)
                .collect();
            live_store.sort();
            let mut live_model: Vec<String> = model
                .iter()
                .filter(|(_, &exp)| exp > clock)
                .map(|(n, _)| n.clone())
                .collect();
            live_model.sort();
            prop_assert_eq!(live_store, live_model);
        }
    }

    // -----------------------------------------------------------------------
    // Wire format
    // -----------------------------------------------------------------------

    #[test]
    fn messages_survive_arbitrary_fragmentation(
        machines in proptest::collection::vec(arb_machine(), 1..5),
        cuts in proptest::collection::vec(1usize..64, 0..20),
    ) {
        let msgs: Vec<Message> = machines
            .iter()
            .enumerate()
            .map(|(i, m)| Message::Advertise(Advertisement {
                kind: EntityKind::Provider,
                ad: machine_ad(i, m),
                contact: format!("m{i}:1"),
                ticket: Some(Ticket::from_raw(i as u128)),
                expires_at: 42,
            }))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        // Split the stream at pseudo-random cut widths.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let fallback = [7usize];
        let mut cut_iter =
            if cuts.is_empty() { fallback.iter().cycle() } else { cuts.iter().cycle() };
        while pos < wire.len() {
            let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
            dec.push(&wire[pos..pos + step]);
            pos += step;
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn every_single_split_point_reassembles_identically(
        machines in proptest::collection::vec(arb_machine(), 1..4),
    ) {
        // Exhaustive over split positions: a TCP stream can hand the
        // decoder the bytes in two reads cut *anywhere* — including inside
        // the length prefix and at the exact frame boundary — and the
        // reassembled messages must be byte-for-byte identical every time.
        let msgs: Vec<Message> = machines
            .iter()
            .enumerate()
            .map(|(i, m)| Message::Advertise(Advertisement {
                kind: EntityKind::Provider,
                ad: machine_ad(i, m),
                contact: format!("m{i}:1"),
                ticket: Some(Ticket::from_raw(i as u128)),
                expires_at: 42,
            }))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        for cut in 0..=wire.len() {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for half in [&wire[..cut], &wire[cut..]] {
                dec.push(half);
                while let Some(m) = dec.next_message().unwrap() {
                    got.push(m);
                }
            }
            prop_assert_eq!(&got, &msgs, "stream split at byte {} diverged", cut);
            prop_assert_eq!(dec.buffered(), 0, "split at {} left residue", cut);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        dec.push(&data);
        // Errors are fine; panics are not.
        while let Ok(Some(_)) = dec.next_message() {}
    }

    #[test]
    fn message_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(bytes::Bytes::from(data));
    }
}

// ---------------------------------------------------------------------------
// Incremental negotiation vs full-scan oracle, under delta sequences
// ---------------------------------------------------------------------------

/// A mutation applied to the ad store between negotiation cycles.
#[derive(Debug, Clone)]
enum Delta {
    /// A new machine joins the pool.
    AddMachine(MachineSpec),
    /// An existing machine re-advertises (possibly with changed attributes;
    /// when the spec happens to be identical this is a pure lease renewal).
    UpdateMachine(usize, MachineSpec),
    /// A machine is claimed and its offer withdrawn.
    ClaimMachine(usize),
    /// A new job is submitted.
    AddJob(JobSpec),
    /// Time passes; when `sweep` is set the store's expire pass runs, else
    /// lapsed leases are only filtered at negotiation time (exercising the
    /// shard caches' min-expiry invalidation).
    AdvanceClock(u64, bool),
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    prop_oneof![
        3 => arb_machine().prop_map(Delta::AddMachine),
        2 => (any::<usize>(), arb_machine())
            .prop_map(|(i, m)| Delta::UpdateMachine(i, m)),
        1 => any::<usize>().prop_map(Delta::ClaimMachine),
        1 => arb_job().prop_map(Delta::AddJob),
        2 => (1u64..120, any::<bool>())
            .prop_map(|(dt, sweep)| Delta::AdvanceClock(dt, sweep)),
    ]
}

const MACHINE_LEASE: u64 = 100;
const JOB_LEASE: u64 = 250;

fn advertise_machine_everywhere(
    stores: &mut [AdStore],
    proto: &AdvertisingProtocol,
    id: usize,
    m: &MachineSpec,
    clock: u64,
) {
    for store in stores.iter_mut() {
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Provider,
                    ad: machine_ad(id, m),
                    contact: format!("m{id}:1"),
                    ticket: Some(Ticket::from_raw(id as u128)),
                    expires_at: clock + MACHINE_LEASE,
                },
                clock,
                proto,
            )
            .unwrap();
    }
}

fn advertise_job_everywhere(
    stores: &mut [AdStore],
    proto: &AdvertisingProtocol,
    id: usize,
    j: &JobSpec,
    clock: u64,
) {
    for store in stores.iter_mut() {
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Customer,
                    ad: job_ad(id, j),
                    contact: format!("ca{}:1", j.owner),
                    ticket: None,
                    expires_at: clock + JOB_LEASE,
                },
                clock,
                proto,
            )
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole's correctness contract: a persistent incremental
    /// negotiator fed an arbitrary sequence of ad add / update / expire /
    /// claim deltas produces exactly the same grant sequence as a
    /// from-scratch full-scan negotiator at every cycle — at shard counts
    /// 1, 2, and 8, and whether shard-cache rebuilds run serial or
    /// parallel.
    #[test]
    fn incremental_negotiation_matches_full_scan_oracle(
        initial in proptest::collection::vec(arb_machine(), 0..10),
        jobs in proptest::collection::vec(arb_job(), 0..8),
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_delta(), 1..5), 1..6),
        preemption in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(3)],
    ) {
        let proto = AdvertisingProtocol::default();
        let shard_counts = [1usize, 2, 8];
        let mut stores: Vec<AdStore> = shard_counts
            .iter()
            .map(|&n| AdStore::with_shards(n))
            .collect();
        let mut incrementals: Vec<Negotiator> = shard_counts
            .iter()
            .map(|_| Negotiator::new(NegotiatorConfig {
                preemption,
                threads,
                autocluster: true,
                incremental: true,
                ..Default::default()
            }))
            .collect();

        let mut clock = 0u64;
        let mut machine_ids: Vec<usize> = Vec::new();
        let mut next_machine = 0usize;
        let mut next_job = 0usize;

        for m in &initial {
            advertise_machine_everywhere(&mut stores, &proto, next_machine, m, clock);
            machine_ids.push(next_machine);
            next_machine += 1;
        }
        for j in &jobs {
            advertise_job_everywhere(&mut stores, &proto, next_job, j, clock);
            next_job += 1;
        }

        let records = |out: &matchmaker::negotiate::CycleOutcome| {
            out.matches
                .iter()
                .map(|m| (
                    m.request_name.clone(),
                    m.owner.clone(),
                    m.offer_name.clone(),
                    m.ticket,
                    m.request_rank.to_bits(),
                    m.offer_rank.to_bits(),
                    m.preempts.clone(),
                ))
                .collect::<Vec<_>>()
        };

        for batch in &batches {
            for delta in batch {
                match delta {
                    Delta::AddMachine(m) => {
                        advertise_machine_everywhere(
                            &mut stores, &proto, next_machine, m, clock);
                        machine_ids.push(next_machine);
                        next_machine += 1;
                    }
                    Delta::UpdateMachine(i, m) => {
                        if !machine_ids.is_empty() {
                            let id = machine_ids[i % machine_ids.len()];
                            advertise_machine_everywhere(
                                &mut stores, &proto, id, m, clock);
                        }
                    }
                    Delta::ClaimMachine(i) => {
                        if !machine_ids.is_empty() {
                            let id = machine_ids[i % machine_ids.len()];
                            let name = format!("m{id}");
                            for store in &mut stores {
                                store.withdraw(EntityKind::Provider, &name);
                            }
                        }
                    }
                    Delta::AddJob(j) => {
                        advertise_job_everywhere(
                            &mut stores, &proto, next_job, j, clock);
                        next_job += 1;
                    }
                    Delta::AdvanceClock(dt, sweep) => {
                        clock += dt;
                        if *sweep {
                            for store in &mut stores {
                                store.expire(clock);
                            }
                        }
                    }
                }
            }

            // The oracle re-derives the cycle from scratch, scanning
            // everything, every time.
            let want = records(&Negotiator::new(NegotiatorConfig {
                preemption,
                autocluster: false,
                incremental: false,
                ..Default::default()
            }).negotiate(&stores[0], clock));

            for (k, neg) in incrementals.iter_mut().enumerate() {
                let out = neg.negotiate(&stores[k], clock);
                prop_assert_eq!(
                    records(&out), want.clone(),
                    "shards={} diverged from full-scan oracle", shard_counts[k]
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Flocking: representative-ad selection
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flocking hook's forwarding unit, checked against an external
    /// oracle. With `flocking` on, every autocluster a cycle leaves
    /// unmatched is reduced to one representative ad, and forwarding just
    /// that ad to a peer pool is sound only if
    ///
    /// 1. selection is deterministic — same store, same representatives,
    ///    across repeated runs and across the serial / parallel /
    ///    incremental negotiation paths;
    /// 2. the representative is the cluster's *first unmatched member in
    ///    request order*, and member counts cover the cycle's unmatched
    ///    total exactly (recomputed here from `request_signature`, the
    ///    same equivalence relation the negotiator clusters by);
    /// 3. the representative's constraint is implied by every member of
    ///    its cluster — each of its conjuncts appears among the member's
    ///    conjuncts, and every attribute in its constraint's dependency
    ///    closure has the same definition in the member — so a peer's
    ///    verdict on the representative holds for the whole cluster.
    #[test]
    fn flock_representative_selection_is_deterministic_and_sound(
        machines in proptest::collection::vec(arb_machine(), 0..12),
        jobs in proptest::collection::vec(arb_job(), 0..16),
    ) {
        use classad::analyze::conjuncts_of;
        use classad::deps::{dependency_closure, self_refs};
        use matchmaker::autocluster::{offer_external_refs, request_signature};
        use std::collections::{BTreeSet, HashMap as Map};

        let store = build_store(&machines, &jobs);
        let config = NegotiatorConfig { flocking: true, ..Default::default() };
        let out = Negotiator::new(config.clone()).negotiate(&store, 0);

        let reps = |o: &matchmaker::negotiate::CycleOutcome| -> Vec<(usize, String, usize)> {
            o.unmatched_clusters
                .iter()
                .map(|c| (c.cluster, c.rep_name.clone(), c.members))
                .collect()
        };

        // 1. Determinism, including across negotiation paths.
        let again = Negotiator::new(config.clone()).negotiate(&store, 0);
        prop_assert_eq!(reps(&out), reps(&again));
        let parallel = Negotiator::new(NegotiatorConfig { threads: 3, ..config.clone() })
            .negotiate(&store, 0);
        prop_assert_eq!(reps(&out), reps(&parallel));
        let full_scan = Negotiator::new(NegotiatorConfig { incremental: false, ..config })
            .negotiate(&store, 0);
        prop_assert_eq!(reps(&out), reps(&full_scan));

        // 2. Recompute the clustering externally and derive the expected
        //    representative set: group unmatched requests by signature in
        //    request (seq) order; each group's first member represents it.
        let conv = MatchConventions::default();
        let offers: Vec<std::sync::Arc<ClassAd>> = store
            .snapshot(EntityKind::Provider, 0)
            .into_iter()
            .map(|s| s.ad)
            .collect();
        let external = offer_external_refs(&conv, &offers);
        // Request order is seq order — the same sort the negotiator
        // applies before clustering (the snapshot itself is shard order).
        let mut requests = store.snapshot(EntityKind::Customer, 0);
        requests.sort_by_key(|r| r.seq);
        let matched: std::collections::HashSet<String> =
            out.matches.iter().map(|m| m.request_name.clone()).collect();
        let mut sig_ids: Map<String, usize> = Map::new();
        let mut expected: Vec<(usize, String, usize)> = Vec::new();
        let mut members_of: Map<usize, Vec<std::sync::Arc<ClassAd>>> = Map::new();
        for r in &requests {
            let sig = request_signature(&conv, &r.ad, &external);
            let next = sig_ids.len();
            let cid = *sig_ids.entry(sig).or_insert(next);
            if matched.contains(&r.name) {
                continue;
            }
            match expected.iter_mut().find(|(c, _, _)| *c == cid) {
                Some((_, _, count)) => *count += 1,
                None => expected.push((cid, r.name.clone(), 1)),
            }
            members_of.entry(cid).or_default().push(r.ad.clone());
        }
        expected.sort_by_key(|(cid, _, _)| *cid);
        prop_assert_eq!(reps(&out), expected);
        let total: usize = out.unmatched_clusters.iter().map(|c| c.members).sum();
        prop_assert_eq!(total, out.stats.unmatched_requests);

        // 3. Implication: forwarding the representative speaks for every
        //    member. Conjunct containment gives syntactic implication;
        //    identical dependency-closure definitions make the peer's
        //    evaluation of the representative transfer to each member.
        for cluster in &out.unmatched_clusters {
            let rep = &cluster.rep_ad;
            let rep_constraint = rep.get("Constraint").expect("generated jobs have constraints");
            let rep_conjuncts: BTreeSet<String> = conjuncts_of(rep_constraint)
                .iter()
                .map(|e| e.to_string())
                .collect();
            let mut seeds = BTreeSet::new();
            self_refs(rep_constraint, &mut seeds);
            let closure = dependency_closure(rep, seeds);
            for member in &members_of[&cluster.cluster] {
                let member_constraint = member.get("Constraint").unwrap();
                let member_conjuncts: BTreeSet<String> = conjuncts_of(member_constraint)
                    .iter()
                    .map(|e| e.to_string())
                    .collect();
                prop_assert!(
                    rep_conjuncts.is_subset(&member_conjuncts),
                    "member lacks a representative conjunct: {:?} vs {:?}",
                    rep_conjuncts,
                    member_conjuncts
                );
                for attr in &closure {
                    prop_assert_eq!(
                        rep.get(attr.as_ref()).map(|e| e.to_string()),
                        member.get(attr.as_ref()).map(|e| e.to_string()),
                        "closure attribute {} diverges within the cluster",
                        attr
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rank tie-breaking is shard-count-independent
// ---------------------------------------------------------------------------

/// With every rank equal, the match outcome is decided purely by the
/// tie-break rule: the oldest ad (lowest store sequence number) wins.
/// That ordering must not depend on how the pool happens to be sharded or
/// on which negotiation path runs.
#[test]
fn rank_ties_break_by_ad_age_regardless_of_shard_count() {
    let proto = AdvertisingProtocol::default();
    let mut baseline: Option<Vec<(String, String)>> = None;
    for shards in [1usize, 2, 8] {
        let mut store = AdStore::with_shards(shards);
        // Twelve indistinguishable machines: jobs rank them all equally
        // (same Mips) and each machine ranks every job equally.
        for i in 0..12 {
            let ad = classad::parse_classad(&format!(
                r#"[ Name = "m{i}"; Type = "Machine"; Mips = 100; Memory = 128;
                     State = "Unclaimed";
                     Constraint = other.Type == "Job" && other.Memory <= Memory;
                     Rank = 1 ]"#
            ))
            .unwrap();
            store
                .advertise(
                    Advertisement {
                        kind: EntityKind::Provider,
                        ad,
                        contact: format!("m{i}:1"),
                        ticket: Some(Ticket::from_raw(i as u128)),
                        expires_at: u64::MAX,
                    },
                    0,
                    &proto,
                )
                .unwrap();
        }
        for i in 0..4 {
            let ad = classad::parse_classad(&format!(
                r#"[ Name = "j{i}"; Type = "Job"; Owner = "alice"; Memory = 64;
                     JobPrio = 1;
                     Constraint = other.Type == "Machine" && other.Memory >= self.Memory;
                     Rank = other.Mips ]"#
            ))
            .unwrap();
            store
                .advertise(
                    Advertisement {
                        kind: EntityKind::Customer,
                        ad,
                        contact: "ca:1".into(),
                        ticket: None,
                        expires_at: u64::MAX,
                    },
                    0,
                    &proto,
                )
                .unwrap();
        }
        for (autocluster, incremental) in [(false, false), (true, false), (true, true)] {
            let mut neg = Negotiator::new(NegotiatorConfig {
                autocluster,
                incremental,
                ..Default::default()
            });
            let out = neg.negotiate(&store, 0);
            let pairs: Vec<(String, String)> = out
                .matches
                .iter()
                .map(|m| (m.request_name.clone(), m.offer_name.clone()))
                .collect();
            // Oldest ad wins every tie: j0 takes m0, j1 takes m1, ...
            let want: Vec<(String, String)> =
                (0..4).map(|i| (format!("j{i}"), format!("m{i}"))).collect();
            assert_eq!(
                pairs, want,
                "shards={shards} autocluster={autocluster} incremental={incremental}"
            );
            match &baseline {
                None => baseline = Some(pairs),
                Some(b) => assert_eq!(&pairs, b, "tie-break order changed with shards={shards}"),
            }
        }
    }
}
