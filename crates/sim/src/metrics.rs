//! Metrics collection: the quantities a high-throughput system is judged
//! by (paper §1: "trillions of instructions per year", not instantaneous
//! MIPS).

use crate::engine::SimTime;
use crate::trace::TraceLog;
use matchmaker::protocol::ClaimRejection;
use serde::Serialize;
use std::collections::HashMap;

/// Per-job completion record.
#[derive(Debug, Clone, Serialize)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Owning user.
    pub owner: String,
    /// Submission time.
    pub submitted_at: SimTime,
    /// First time the job started running, if it ever ran.
    pub first_start: Option<SimTime>,
    /// Completion time.
    pub completed_at: SimTime,
    /// Service demand (reference-speed ms).
    pub work_ms: u64,
    /// Times vacated before completing.
    pub vacations: u32,
    /// Work thrown away by non-checkpointed restarts (reference ms).
    pub wasted_ms: u64,
}

/// Counter set accumulated during a simulation run.
#[derive(Debug, Default, Clone, Serialize)]
pub struct Metrics {
    /// Jobs submitted.
    pub jobs_submitted: u64,
    /// Jobs completed (with records in `completed`).
    pub jobs_completed: u64,
    /// Completion records.
    pub completed: Vec<JobRecord>,
    /// Matches handed out by the negotiator.
    pub matches: u64,
    /// Negotiation cycles run.
    pub cycles: u64,
    /// Total requests considered across cycles.
    pub requests_considered: u64,
    /// Requests that found no offer, across cycles.
    pub unmatched_requests: u64,
    /// Request equivalence classes formed by autoclustering, across cycles.
    pub clusters_formed: u64,
    /// Requests served from a cluster's cached match list, across cycles.
    pub matchlist_hits: u64,
    /// Full offer-pool scans performed by the negotiator, across cycles.
    pub full_scans: u64,
    /// Claim requests sent by customers.
    pub claim_attempts: u64,
    /// Claims accepted by providers.
    pub claims_accepted: u64,
    /// Claim rejections by cause.
    pub claims_rejected: HashMap<String, u64>,
    /// Jobs vacated because the workstation owner returned.
    pub vacated_by_owner: u64,
    /// Jobs vacated by a higher-ranked customer (priority preemption).
    pub preempted_by_rank: u64,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages the network dropped.
    pub messages_dropped: u64,
    /// Total machine-claimed milliseconds (occupancy).
    pub busy_ms: u64,
    /// Completed useful work (reference-speed ms).
    pub goodput_ms: u64,
    /// Work wasted by restarts (reference-speed ms).
    pub badput_ms: u64,
    /// Per-user completed-work accounting (reference ms).
    pub per_user_goodput: HashMap<String, u64>,
    /// Gang (co-allocation) requests granted by the gang matcher.
    pub gangs_granted: u64,
    /// Gang negotiation attempts that found no complete assignment.
    pub gangs_unmatched: u64,
    /// Gangs aborted at claim time (some port's claim was rejected; the
    /// already-claimed ports were released — co-allocation is atomic).
    pub gangs_aborted: u64,
    /// Optional protocol-event trace (see [`crate::trace`]).
    pub trace: TraceLog,
}

impl Metrics {
    /// Record a claim rejection.
    pub fn claim_rejected(&mut self, why: ClaimRejection) {
        *self.claims_rejected.entry(why.to_string()).or_insert(0) += 1;
    }

    /// Total rejected claims.
    pub fn claims_rejected_total(&self) -> u64 {
        self.claims_rejected.values().sum()
    }

    /// Record a completed job.
    pub fn job_completed(&mut self, rec: JobRecord) {
        self.jobs_completed += 1;
        self.goodput_ms += rec.work_ms;
        self.badput_ms += rec.wasted_ms;
        *self.per_user_goodput.entry(rec.owner.clone()).or_insert(0) += rec.work_ms;
        self.completed.push(rec);
    }

    /// Export the counters as a `condor_obs` metrics snapshot under the
    /// shared schema ([`condor_obs::schema`]): the simulator reports the
    /// same metric names the live pool publishes, so analysis tooling
    /// reads both through one vocabulary. Sim-only quantities (goodput,
    /// vacations, gangs) keep their own `snake_case` names alongside.
    pub fn to_obs_snapshot(&self) -> condor_obs::MetricsSnapshot {
        use condor_obs::schema;
        let mut s = condor_obs::MetricsSnapshot::default();
        let mut c = |name: &str, v: u64| {
            s.counters.insert(name.to_string(), v);
        };
        c(schema::JOBS_SUBMITTED, self.jobs_submitted);
        c(schema::JOBS_COMPLETED, self.jobs_completed);
        c(schema::MATCHES, self.matches);
        c(schema::CYCLES, self.cycles);
        c(schema::REQUESTS_CONSIDERED, self.requests_considered);
        c(schema::UNMATCHED_REQUESTS, self.unmatched_requests);
        c(schema::CLUSTERS_FORMED, self.clusters_formed);
        c(schema::MATCHLIST_HITS, self.matchlist_hits);
        c(schema::FULL_SCANS, self.full_scans);
        c(schema::CLAIM_ATTEMPTS, self.claim_attempts);
        c(schema::CLAIMS_ACCEPTED, self.claims_accepted);
        c(schema::CLAIMS_REJECTED, self.claims_rejected_total());
        c("vacated_by_owner", self.vacated_by_owner);
        c("preempted_by_rank", self.preempted_by_rank);
        c("messages_sent", self.messages_sent);
        c("messages_dropped", self.messages_dropped);
        c("busy_ms", self.busy_ms);
        c("goodput_ms", self.goodput_ms);
        c("badput_ms", self.badput_ms);
        c("gangs_granted", self.gangs_granted);
        c("gangs_unmatched", self.gangs_unmatched);
        c("gangs_aborted", self.gangs_aborted);
        s
    }

    /// The run's stats classad (`MyType == "SimulatorStats"`,
    /// `DaemonAd = true`): the simulator's answer to the live daemons'
    /// self-ads, rendered from [`Metrics::to_obs_snapshot`]. `name` labels
    /// the run; `elapsed` is the simulated time covered.
    pub fn stats_ad(&self, name: &str, elapsed: SimTime) -> classad::ClassAd {
        let mut ad = condor_obs::self_ad(
            name,
            condor_obs::schema::SIMULATOR_STATS,
            elapsed / 1000,
            &self.to_obs_snapshot(),
        );
        ad.set_int("ElapsedMs", elapsed as i64);
        ad
    }

    /// Derive the headline summary for a run that covered `elapsed` ms on
    /// `machines` machines.
    pub fn summary(&self, elapsed: SimTime, machines: usize) -> Summary {
        let n = self.completed.len().max(1) as f64;
        let mean_wait = self
            .completed
            .iter()
            .map(|r| {
                r.first_start
                    .unwrap_or(r.completed_at)
                    .saturating_sub(r.submitted_at)
            })
            .sum::<u64>() as f64
            / n;
        let mean_turnaround = self
            .completed
            .iter()
            .map(|r| r.completed_at.saturating_sub(r.submitted_at))
            .sum::<u64>() as f64
            / n;
        let capacity_ms = (elapsed as u128 * machines as u128) as f64;
        Summary {
            jobs_submitted: self.jobs_submitted,
            jobs_completed: self.jobs_completed,
            throughput_per_hour: if elapsed > 0 {
                self.jobs_completed as f64 * 3_600_000.0 / elapsed as f64
            } else {
                0.0
            },
            mean_wait_ms: mean_wait,
            mean_turnaround_ms: mean_turnaround,
            utilization: if capacity_ms > 0.0 {
                self.busy_ms as f64 / capacity_ms
            } else {
                0.0
            },
            goodput_fraction: if self.goodput_ms + self.badput_ms > 0 {
                self.goodput_ms as f64 / (self.goodput_ms + self.badput_ms) as f64
            } else {
                1.0
            },
            claim_failure_rate: if self.claim_attempts > 0 {
                self.claims_rejected_total() as f64 / self.claim_attempts as f64
            } else {
                0.0
            },
            preemptions: self.vacated_by_owner + self.preempted_by_rank,
        }
    }
}

/// Headline numbers derived from [`Metrics`].
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Jobs submitted.
    pub jobs_submitted: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Completed jobs per hour of simulated time.
    pub throughput_per_hour: f64,
    /// Mean queue wait (submission → first start), ms.
    pub mean_wait_ms: f64,
    /// Mean turnaround (submission → completion), ms.
    pub mean_turnaround_ms: f64,
    /// Fraction of machine-time claimed.
    pub utilization: f64,
    /// goodput / (goodput + badput).
    pub goodput_fraction: f64,
    /// Fraction of claim attempts rejected.
    pub claim_failure_rate: f64,
    /// Total vacate/preemption events.
    pub preemptions: u64,
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        owner: &str,
        sub: SimTime,
        start: SimTime,
        done: SimTime,
        work: u64,
    ) -> JobRecord {
        JobRecord {
            id,
            owner: owner.into(),
            submitted_at: sub,
            first_start: Some(start),
            completed_at: done,
            work_ms: work,
            vacations: 0,
            wasted_ms: 0,
        }
    }

    #[test]
    fn completion_updates_aggregates() {
        let mut m = Metrics::default();
        m.jobs_submitted = 2;
        m.job_completed(rec(1, "alice", 0, 100, 1100, 1000));
        m.job_completed(rec(2, "bob", 0, 300, 2300, 2000));
        assert_eq!(m.jobs_completed, 2);
        assert_eq!(m.goodput_ms, 3000);
        assert_eq!(m.per_user_goodput["alice"], 1000);
        let s = m.summary(10_000, 2);
        assert_eq!(s.jobs_completed, 2);
        assert!((s.mean_wait_ms - 200.0).abs() < 1e-9);
        assert!((s.mean_turnaround_ms - 1700.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_fraction_accounts_waste() {
        let mut m = Metrics::default();
        let mut r = rec(1, "a", 0, 0, 100, 900);
        r.wasted_ms = 100;
        m.job_completed(r);
        let s = m.summary(1000, 1);
        assert!((s.goodput_fraction - 0.9).abs() < 1e-9);
    }

    #[test]
    fn claim_rejection_counters() {
        let mut m = Metrics::default();
        m.claim_attempts = 4;
        m.claim_rejected(ClaimRejection::BadTicket);
        m.claim_rejected(ClaimRejection::ConstraintFailed);
        m.claim_rejected(ClaimRejection::ConstraintFailed);
        assert_eq!(m.claims_rejected_total(), 3);
        let s = m.summary(1, 1);
        assert!((s.claim_failure_rate - 0.75).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_throughput() {
        let mut m = Metrics::default();
        m.busy_ms = 5_000;
        for i in 0..6 {
            m.job_completed(rec(i, "a", 0, 0, 100, 10));
        }
        let s = m.summary(3_600_000, 10);
        assert!((s.throughput_per_hour - 6.0).abs() < 1e-9);
        assert!((s.utilization - 5_000.0 / 36_000_000.0).abs() < 1e-12);
    }

    #[test]
    fn obs_export_uses_the_shared_schema() {
        let mut m = Metrics::default();
        m.jobs_submitted = 5;
        m.cycles = 3;
        m.matches = 4;
        m.claim_attempts = 4;
        m.claims_accepted = 3;
        m.claim_rejected(ClaimRejection::BadTicket);
        let snap = m.to_obs_snapshot();
        assert_eq!(snap.counter(condor_obs::schema::CYCLES), 3);
        assert_eq!(snap.counter(condor_obs::schema::CLAIMS_ACCEPTED), 3);
        assert_eq!(snap.counter(condor_obs::schema::CLAIMS_REJECTED), 1);
        // The stats ad renders, is marked, and round-trips the schema tag.
        let ad = m.stats_ad("sim-run", 10_000);
        assert!(condor_obs::is_daemon_ad(&ad));
        assert_eq!(
            ad.get_string("MyType"),
            Some(condor_obs::schema::SIMULATOR_STATS)
        );
        assert_eq!(ad.get_int("Cycles"), Some(3));
        assert_eq!(ad.get_int("JobsSubmitted"), Some(5));
        assert_eq!(ad.get_int("ElapsedMs"), Some(10_000));
    }

    #[test]
    fn empty_metrics_summary_is_sane() {
        let m = Metrics::default();
        let s = m.summary(0, 0);
        assert_eq!(s.jobs_completed, 0);
        assert_eq!(s.throughput_per_hour, 0.0);
        assert_eq!(s.claim_failure_rate, 0.0);
        assert_eq!(s.goodput_fraction, 1.0);
    }
}
