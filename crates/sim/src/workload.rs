//! Synthetic workload generation: machine fleets with owner-activity
//! dynamics, and per-user job streams.
//!
//! The paper's evaluation substrate was the live UW–Madison Condor pool —
//! hundreds of distributively owned workstations whose availability is
//! driven by their owners' keyboards. We substitute seeded stochastic
//! models: owner presence alternates between exponentially distributed
//! active/away periods (optionally modulated by a day/night cycle), and
//! each user submits a stream of jobs with exponential interarrival and
//! service times. All sampling is deterministic per seed.

use crate::engine::SimTime;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sample an exponential duration with the given mean (ms), clamped to at
/// least 1 ms.
pub fn sample_exp(rng: &mut SmallRng, mean_ms: f64) -> SimTime {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let d = -mean_ms * u.ln();
    d.clamp(1.0, 1e15) as SimTime
}

/// Owner keyboard/console activity model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OwnerActivity {
    /// Mean length of an owner-present period, ms.
    pub mean_active_ms: f64,
    /// Mean length of an owner-away period, ms.
    pub mean_away_ms: f64,
    /// Probability a machine starts with its owner present.
    pub initially_present_prob: f64,
    /// Day/night cycle length (0 disables diurnal modulation).
    pub day_length_ms: u64,
    /// During the second half of each day ("night"), away periods are
    /// multiplied by this factor (> 1 means owners stay away longer at
    /// night, the classic Condor harvest window).
    pub night_away_factor: f64,
}

impl Default for OwnerActivity {
    fn default() -> Self {
        OwnerActivity {
            mean_active_ms: 20.0 * 60.0 * 1000.0,
            mean_away_ms: 40.0 * 60.0 * 1000.0,
            initially_present_prob: 0.5,
            day_length_ms: 0,
            night_away_factor: 3.0,
        }
    }
}

impl OwnerActivity {
    /// `true` if `now` falls in the "night" half of the day cycle.
    pub fn is_night(&self, now: SimTime) -> bool {
        if self.day_length_ms == 0 {
            return false;
        }
        (now % self.day_length_ms) >= self.day_length_ms / 2
    }

    /// Sample how long the owner stays in the current state from `now`.
    pub fn sample_period(&self, rng: &mut SmallRng, present: bool, now: SimTime) -> SimTime {
        if present {
            sample_exp(rng, self.mean_active_ms)
        } else {
            let mean = if self.is_night(now) {
                self.mean_away_ms * self.night_away_factor.max(0.0)
            } else {
                self.mean_away_ms
            };
            sample_exp(rng, mean.max(1.0))
        }
    }
}

/// A class of machines in the fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineTemplate {
    /// Architecture string advertised (e.g. `"INTEL"`).
    pub arch: String,
    /// Operating system advertised (e.g. `"SOLARIS251"`).
    pub opsys: String,
    /// Inclusive MIPS range sampled uniformly.
    pub mips: (i64, i64),
    /// Memory sizes (MB) sampled uniformly from this list.
    pub memory_choices: Vec<i64>,
    /// Inclusive disk range (KB) sampled uniformly.
    pub disk: (i64, i64),
    /// Relative weight when mixing templates.
    pub weight: f64,
}

impl MachineTemplate {
    /// The paper's Figure 1 machine class.
    pub fn intel_solaris() -> Self {
        MachineTemplate {
            arch: "INTEL".into(),
            opsys: "SOLARIS251".into(),
            mips: (60, 140),
            memory_choices: vec![32, 64, 128],
            disk: (100_000, 500_000),
            weight: 1.0,
        }
    }

    /// A second class for heterogeneity experiments.
    pub fn sparc_solaris() -> Self {
        MachineTemplate {
            arch: "SPARC".into(),
            opsys: "SOLARIS251".into(),
            mips: (40, 100),
            memory_choices: vec![64, 128, 256],
            disk: (200_000, 800_000),
            weight: 1.0,
        }
    }
}

/// A concrete machine produced by the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine (and ad) name.
    pub name: String,
    /// Architecture.
    pub arch: String,
    /// Operating system.
    pub opsys: String,
    /// Speed, in the paper's `Mips` convention; 100 is "reference speed".
    pub mips: i64,
    /// Memory, MB.
    pub memory: i64,
    /// Disk, KB.
    pub disk: i64,
    /// Owner activity model.
    pub activity: OwnerActivity,
}

/// Fleet-level generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSpec {
    /// How many machines to generate.
    pub count: usize,
    /// Machine classes, mixed by weight.
    pub templates: Vec<MachineTemplate>,
    /// Owner activity model applied to every machine.
    pub activity: OwnerActivity,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            count: 16,
            templates: vec![MachineTemplate::intel_solaris()],
            activity: OwnerActivity::default(),
        }
    }
}

impl FleetSpec {
    /// Generate the fleet deterministically from `rng`.
    pub fn generate(&self, rng: &mut SmallRng) -> Vec<MachineSpec> {
        assert!(
            !self.templates.is_empty(),
            "fleet needs at least one template"
        );
        let total_weight: f64 = self.templates.iter().map(|t| t.weight.max(0.0)).sum();
        (0..self.count)
            .map(|i| {
                let mut pick = rng.gen_range(0.0..total_weight.max(f64::MIN_POSITIVE));
                let mut tmpl = &self.templates[0];
                for t in &self.templates {
                    if pick < t.weight.max(0.0) {
                        tmpl = t;
                        break;
                    }
                    pick -= t.weight.max(0.0);
                }
                MachineSpec {
                    name: format!("node{i:04}.pool.example"),
                    arch: tmpl.arch.clone(),
                    opsys: tmpl.opsys.clone(),
                    mips: rng.gen_range(tmpl.mips.0..=tmpl.mips.1.max(tmpl.mips.0)),
                    memory: tmpl.memory_choices[rng.gen_range(0..tmpl.memory_choices.len())],
                    disk: rng.gen_range(tmpl.disk.0..=tmpl.disk.1.max(tmpl.disk.0)),
                    activity: self.activity.clone(),
                }
            })
            .collect()
    }
}

/// One user's job-stream configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserSpec {
    /// User name (the `Owner` attribute of their job ads).
    pub name: String,
    /// Number of jobs this user submits.
    pub job_count: usize,
    /// Mean interarrival time between submissions, ms (0 = all at t=0).
    pub mean_interarrival_ms: f64,
    /// Mean service demand, reference-speed ms.
    pub mean_duration_ms: f64,
    /// Memory requirement choices (MB).
    pub memory_choices: Vec<i64>,
    /// Probability a job constrains `Arch` to a specific value.
    pub arch_constraint_prob: f64,
    /// The architecture required when constrained.
    pub required_arch: String,
    /// Probability a job checkpoints.
    pub checkpoint_prob: f64,
    /// Rank expression for the user's jobs.
    pub rank: String,
}

impl UserSpec {
    /// A reasonable default stream for user `name`.
    pub fn standard(name: &str, job_count: usize) -> Self {
        UserSpec {
            name: name.to_string(),
            job_count,
            mean_interarrival_ms: 30_000.0,
            mean_duration_ms: 10.0 * 60_000.0,
            memory_choices: vec![16, 31, 64],
            arch_constraint_prob: 0.5,
            required_arch: "INTEL".into(),
            checkpoint_prob: 0.8,
            rank: "other.Mips".into(),
        }
    }
}

/// A generated job arrival (relative to the user's agent start).
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Arrival (submission) time.
    pub at: SimTime,
    /// Service demand at reference speed, ms.
    pub work_ms: u64,
    /// Memory requirement, MB.
    pub memory: i64,
    /// Extra constraint source (possibly empty).
    pub extra_constraint: String,
    /// Whether the job checkpoints.
    pub want_checkpoint: bool,
    /// Rank source.
    pub rank: String,
}

impl UserSpec {
    /// Generate this user's arrival sequence deterministically.
    pub fn generate(&self, rng: &mut SmallRng) -> Vec<JobArrival> {
        let mut at: SimTime = 0;
        (0..self.job_count)
            .map(|_| {
                if self.mean_interarrival_ms > 0.0 {
                    at = at.saturating_add(sample_exp(rng, self.mean_interarrival_ms));
                }
                let constrained = rng.gen_bool(self.arch_constraint_prob.clamp(0.0, 1.0));
                JobArrival {
                    at,
                    work_ms: sample_exp(rng, self.mean_duration_ms).max(1000),
                    memory: self.memory_choices[rng.gen_range(0..self.memory_choices.len())],
                    extra_constraint: if constrained {
                        format!("other.Arch == \"{}\"", self.required_arch)
                    } else {
                        String::new()
                    },
                    want_checkpoint: rng.gen_bool(self.checkpoint_prob.clamp(0.0, 1.0)),
                    rank: self.rank.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exp_sampling_mean_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 5000.0;
        let sum: u64 = (0..n).map(|_| sample_exp(&mut rng, mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - mean).abs() < mean * 0.05, "{observed}");
    }

    #[test]
    fn fleet_generation_deterministic() {
        let spec = FleetSpec {
            count: 10,
            ..Default::default()
        };
        let a = spec.generate(&mut SmallRng::seed_from_u64(42));
        let b = spec.generate(&mut SmallRng::seed_from_u64(42));
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.mips, y.mips);
            assert_eq!(x.memory, y.memory);
        }
    }

    #[test]
    fn fleet_respects_template_ranges() {
        let spec = FleetSpec {
            count: 50,
            ..Default::default()
        };
        let fleet = spec.generate(&mut SmallRng::seed_from_u64(7));
        for m in &fleet {
            assert!((60..=140).contains(&m.mips), "{}", m.mips);
            assert!([32, 64, 128].contains(&m.memory));
            assert_eq!(m.arch, "INTEL");
        }
    }

    #[test]
    fn mixed_templates_produce_both_kinds() {
        let spec = FleetSpec {
            count: 100,
            templates: vec![
                MachineTemplate::intel_solaris(),
                MachineTemplate::sparc_solaris(),
            ],
            activity: OwnerActivity::default(),
        };
        let fleet = spec.generate(&mut SmallRng::seed_from_u64(3));
        let intel = fleet.iter().filter(|m| m.arch == "INTEL").count();
        assert!((20..=80).contains(&intel), "{intel}");
    }

    #[test]
    fn job_arrivals_are_ordered_and_sized() {
        let spec = UserSpec::standard("alice", 20);
        let jobs = spec.generate(&mut SmallRng::seed_from_u64(5));
        assert_eq!(jobs.len(), 20);
        let mut prev = 0;
        for j in &jobs {
            assert!(j.at >= prev);
            prev = j.at;
            assert!(j.work_ms >= 1000);
            assert!([16, 31, 64].contains(&j.memory));
        }
    }

    #[test]
    fn zero_interarrival_means_batch_at_zero() {
        let spec = UserSpec {
            mean_interarrival_ms: 0.0,
            ..UserSpec::standard("u", 5)
        };
        let jobs = spec.generate(&mut SmallRng::seed_from_u64(5));
        assert!(jobs.iter().all(|j| j.at == 0));
    }

    #[test]
    fn diurnal_night_detection() {
        let act = OwnerActivity {
            day_length_ms: 1000,
            ..Default::default()
        };
        assert!(!act.is_night(0));
        assert!(!act.is_night(499));
        assert!(act.is_night(500));
        assert!(act.is_night(999));
        assert!(!act.is_night(1000));
        let no_diurnal = OwnerActivity {
            day_length_ms: 0,
            ..Default::default()
        };
        assert!(!no_diurnal.is_night(123456));
    }

    #[test]
    fn night_away_periods_longer_on_average() {
        let act = OwnerActivity {
            day_length_ms: 1_000_000,
            night_away_factor: 5.0,
            mean_away_ms: 1000.0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let day: u64 = (0..5000)
            .map(|_| act.sample_period(&mut rng, false, 0))
            .sum();
        let night: u64 = (0..5000)
            .map(|_| act.sample_period(&mut rng, false, 600_000))
            .sum();
        assert!(night > day * 3, "night={night} day={day}");
    }
}
