//! A gang customer agent: submits co-allocation requests (compute node +
//! software license) and runs the multi-port claiming protocol.
//!
//! The interesting failure mode is *partial claim failure*: the gang
//! matcher worked from possibly-stale ads, so one port's claim can be
//! rejected after another port was already claimed. Co-allocation is
//! atomic, so the agent releases the claimed ports and retries the whole
//! gang at the next advertisement — exactly the weak-consistency recovery
//! the paper prescribes, extended to aggregates.

use crate::ctx::Ctx;
use crate::engine::SimTime;
use crate::metrics::JobRecord;
use crate::types::{Event, GangPortInfo, GangTimer, NodeId, SimMsg};
use classad::ClassAd;
use matchmaker::protocol::{Advertisement, ClaimRequest, EntityKind, Message};
use std::collections::{HashMap, VecDeque};

/// Where a gang currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum GangState {
    /// Waiting for the gang matcher.
    Idle,
    /// Claims in flight for all ports.
    Claiming {
        /// Ports awaiting a reply.
        pending: Vec<GangPortInfo>,
        /// Ports already claimed (to release if the gang aborts).
        claimed: Vec<GangPortInfo>,
    },
    /// All ports claimed; the compute port is executing.
    Running {
        /// Non-compute ports to release on completion.
        auxiliary: Vec<GangPortInfo>,
    },
    /// Finished.
    Completed,
}

/// One gang request in the agent's queue.
#[derive(Debug, Clone)]
pub struct GangJob {
    /// Unique id.
    pub id: u64,
    /// Ad name.
    pub name: String,
    /// Service demand at reference speed, ms.
    pub work_ms: u64,
    /// Memory requirement for the compute port, MB.
    pub memory: i64,
    /// Submission time.
    pub submitted_at: SimTime,
    /// First successful start.
    pub first_start: Option<SimTime>,
    /// Current state.
    pub state: GangState,
    /// Claim-time aborts experienced.
    pub aborts: u32,
}

/// A customer agent submitting two-port gangs (machine + license).
#[derive(Debug)]
pub struct GangCustomerAgent {
    /// This node's id.
    pub id: NodeId,
    /// The manager node.
    pub manager: NodeId,
    /// The user this agent represents.
    pub user: String,
    /// Contact address.
    pub contact: String,
    /// Advertisement period, ms.
    pub advertise_period_ms: u64,
    /// License product the gangs require.
    pub product: String,
    /// The gang queue.
    pub gangs: Vec<GangJob>,
    arrivals: VecDeque<(SimTime, u64, i64)>, // (at, work_ms, memory)
    id_base: u64,
    next_local: u64,
    /// Ports whose claims were in flight when their gang aborted: if the
    /// late reply turns out to be an accept, the seat must be released or
    /// it leaks (keyed by provider ad name).
    orphan_claims: HashMap<String, GangPortInfo>,
}

impl GangCustomerAgent {
    /// Create an agent with a pre-generated arrival list of
    /// `(time, work_ms, memory)` gangs.
    pub fn new(
        id: NodeId,
        manager: NodeId,
        user: &str,
        product: &str,
        arrivals: Vec<(SimTime, u64, i64)>,
        advertise_period_ms: u64,
        id_base: u64,
    ) -> Self {
        GangCustomerAgent {
            id,
            manager,
            user: user.to_string(),
            contact: format!("{user}-gangca:1"),
            advertise_period_ms,
            product: product.to_string(),
            gangs: Vec::new(),
            arrivals: arrivals.into(),
            id_base,
            next_local: 0,
            orphan_claims: HashMap::new(),
        }
    }

    /// Gangs not yet completed.
    pub fn incomplete(&self) -> usize {
        self.gangs
            .iter()
            .filter(|g| g.state != GangState::Completed)
            .count()
    }

    /// The gang request ad (envelope + ports) for a queued gang.
    pub fn gang_ad(&self, g: &GangJob) -> ClassAd {
        let src = format!(
            r#"[
                Name = "{name}";
                Type = "Gang";
                Owner = "{owner}";
                JobId = {id};
                Memory = {memory};
                RemainingWork = {work};
                WantCheckpoint = 0;
                Constraint = true;
                Ports = {{
                    [ Label = "compute";
                      Constraint = other.Type == "Machine" && other.Memory >= {memory};
                      Rank = other.Mips ],
                    [ Label = "license";
                      Constraint = other.Type == "License" && other.Product == "{product}" ]
                }};
            ]"#,
            name = g.name,
            owner = self.user,
            id = g.id,
            memory = g.memory,
            work = g.work_ms,
            product = self.product,
        );
        classad::parse_classad(&src)
            .unwrap_or_else(|e| panic!("internal: gang ad failed to parse: {e}\n{src}"))
    }

    /// Initialize timers.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((at, _, _)) = self.arrivals.front() {
            let delay = at.saturating_sub(ctx.now);
            ctx.schedule(
                delay,
                Event::GangCustomer {
                    node: self.id,
                    tag: GangTimer::Arrival,
                },
            );
        }
        ctx.schedule(
            self.advertise_period_ms,
            Event::GangCustomer {
                node: self.id,
                tag: GangTimer::Advertise,
            },
        );
    }

    fn advertise_idle(&mut self, ctx: &mut Ctx<'_>) {
        let lease = ctx.now + self.advertise_period_ms * 2 + self.advertise_period_ms / 2;
        let ads: Vec<Advertisement> = self
            .gangs
            .iter()
            .filter(|g| g.state == GangState::Idle)
            .map(|g| Advertisement {
                kind: EntityKind::Customer,
                ad: self.gang_ad(g),
                contact: self.contact.clone(),
                ticket: None,
                expires_at: lease,
            })
            .collect();
        for adv in ads {
            ctx.send_to_node(self.manager, SimMsg::Proto(Message::Advertise(adv)));
        }
    }

    /// Handle a timer event.
    pub fn on_timer(&mut self, tag: GangTimer, ctx: &mut Ctx<'_>) {
        match tag {
            GangTimer::Arrival => {
                while let Some(&(at, work, memory)) = self.arrivals.front() {
                    if at > ctx.now {
                        break;
                    }
                    self.arrivals.pop_front();
                    let local = self.next_local;
                    self.next_local += 1;
                    ctx.metrics.jobs_submitted += 1;
                    self.gangs.push(GangJob {
                        id: self.id_base + local,
                        name: format!("{}.gang.{local}", self.user),
                        work_ms: work,
                        memory,
                        submitted_at: ctx.now,
                        first_start: None,
                        state: GangState::Idle,
                        aborts: 0,
                    });
                }
                self.advertise_idle(ctx);
                if let Some((at, _, _)) = self.arrivals.front() {
                    let delay = at.saturating_sub(ctx.now).max(1);
                    ctx.schedule(
                        delay,
                        Event::GangCustomer {
                            node: self.id,
                            tag: GangTimer::Arrival,
                        },
                    );
                }
            }
            GangTimer::Advertise => {
                self.advertise_idle(ctx);
                ctx.schedule(
                    self.advertise_period_ms,
                    Event::GangCustomer {
                        node: self.id,
                        tag: GangTimer::Advertise,
                    },
                );
            }
        }
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, msg: SimMsg, ctx: &mut Ctx<'_>) {
        match msg {
            SimMsg::GangNotify { gang_name, ports } => self.on_grant(gang_name, ports, ctx),
            SimMsg::Proto(Message::ClaimReply(resp)) => self.on_claim_reply(resp, ctx),
            SimMsg::JobFinished { job_id } => self.on_finished(job_id, ctx),
            SimMsg::Vacated { job_id, .. } => self.on_vacated(job_id, ctx),
            _ => {}
        }
    }

    fn on_grant(&mut self, gang_name: String, ports: Vec<GangPortInfo>, ctx: &mut Ctx<'_>) {
        // Build the claim payload before borrowing the gang mutably.
        let Some(idx) = self.gangs.iter().position(|g| g.name == gang_name) else {
            return;
        };
        if self.gangs[idx].state != GangState::Idle {
            return; // stale grant
        }
        let customer_ad = {
            let mut ad = self.gang_ad(&self.gangs[idx]);
            ad.remove("Ports");
            ad
        };
        for port in &ports {
            ctx.metrics.claim_attempts += 1;
            ctx.send_to_contact(
                &port.contact,
                SimMsg::Proto(Message::Claim(ClaimRequest {
                    ticket: port.ticket,
                    customer_ad: customer_ad.clone(),
                    customer_contact: self.contact.clone(),
                })),
            );
        }
        self.gangs[idx].state = GangState::Claiming {
            pending: ports,
            claimed: Vec::new(),
        };
    }

    fn on_claim_reply(&mut self, resp: matchmaker::protocol::ClaimResponse, ctx: &mut Ctx<'_>) {
        let provider = resp
            .provider_ad
            .get_string("Name")
            .unwrap_or_default()
            .to_string();
        let now = ctx.now;
        // A late reply for a gang that already aborted: if the provider
        // accepted, release the seat immediately, or it leaks.
        if let Some(port) = self.orphan_claims.remove(&provider) {
            if resp.accepted {
                ctx.send_to_contact(
                    &port.contact,
                    SimMsg::Proto(Message::Release {
                        ticket: port.ticket,
                    }),
                );
            }
            return;
        }
        // Find the gang with this provider pending.
        let Some(gang) = self.gangs.iter_mut().find(|g| {
            matches!(&g.state, GangState::Claiming { pending, .. }
                     if pending.iter().any(|p| p.offer_name == provider))
        }) else {
            return;
        };
        let GangState::Claiming { pending, claimed } = &mut gang.state else {
            unreachable!()
        };
        let pos = pending
            .iter()
            .position(|p| p.offer_name == provider)
            .unwrap();
        let port = pending.remove(pos);
        if resp.accepted {
            claimed.push(port);
            if pending.is_empty() {
                // All ports claimed: the compute port is now executing.
                gang.first_start.get_or_insert(now);
                let auxiliary: Vec<GangPortInfo> = claimed
                    .iter()
                    .filter(|p| p.offer_type != "Machine")
                    .cloned()
                    .collect();
                gang.state = GangState::Running { auxiliary };
            }
        } else {
            // Atomicity: release everything already claimed, remember the
            // claims still in flight (their late accepts must be released
            // too), and retry the whole gang later.
            gang.aborts += 1;
            ctx.metrics.gangs_aborted += 1;
            let to_release: Vec<GangPortInfo> = std::mem::take(claimed);
            let in_flight: Vec<GangPortInfo> = std::mem::take(pending);
            gang.state = GangState::Idle;
            for p in to_release {
                ctx.send_to_contact(
                    &p.contact,
                    SimMsg::Proto(Message::Release { ticket: p.ticket }),
                );
            }
            for p in in_flight {
                self.orphan_claims.insert(p.offer_name.clone(), p);
            }
        }
    }

    fn on_finished(&mut self, job_id: u64, ctx: &mut Ctx<'_>) {
        let now = ctx.now;
        let Some(gang) = self.gangs.iter_mut().find(|g| g.id == job_id) else {
            return;
        };
        let aux = match &gang.state {
            GangState::Running { auxiliary } => auxiliary.clone(),
            _ => Vec::new(),
        };
        gang.state = GangState::Completed;
        ctx.metrics.job_completed(JobRecord {
            id: gang.id,
            owner: self.user.clone(),
            submitted_at: gang.submitted_at,
            first_start: gang.first_start,
            completed_at: now,
            work_ms: gang.work_ms,
            vacations: gang.aborts,
            wasted_ms: 0,
        });
        // Release the auxiliary resources (e.g. the license seat).
        for p in aux {
            ctx.send_to_contact(
                &p.contact,
                SimMsg::Proto(Message::Release { ticket: p.ticket }),
            );
        }
    }

    fn on_vacated(&mut self, job_id: u64, ctx: &mut Ctx<'_>) {
        // The compute port was vacated (owner returned): release the
        // auxiliary ports and retry the whole gang.
        let Some(gang) = self.gangs.iter_mut().find(|g| g.id == job_id) else {
            return;
        };
        let aux = match &gang.state {
            GangState::Running { auxiliary } => auxiliary.clone(),
            _ => Vec::new(),
        };
        gang.aborts += 1;
        gang.state = GangState::Idle;
        for p in aux {
            ctx.send_to_contact(
                &p.contact,
                SimMsg::Proto(Message::Release { ticket: p.ticket }),
            );
        }
        self.advertise_idle(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventQueue;
    use crate::metrics::Metrics;
    use crate::network::NetworkModel;
    use matchmaker::ticket::Ticket;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct H {
        queue: EventQueue<Event>,
        rng: SmallRng,
        metrics: Metrics,
        directory: HashMap<String, NodeId>,
        network: NetworkModel,
    }

    impl H {
        fn new() -> Self {
            let mut directory = HashMap::new();
            directory.insert("m:9614".to_string(), 5);
            directory.insert("lic:27000".to_string(), 6);
            H {
                queue: EventQueue::new(),
                rng: SmallRng::seed_from_u64(3),
                metrics: Metrics::default(),
                directory,
                network: NetworkModel::ideal(),
            }
        }
        fn ctx(&mut self) -> Ctx<'_> {
            Ctx {
                now: self.queue.now(),
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                directory: &self.directory,
                queue: &mut self.queue,
                network: &self.network,
            }
        }
    }

    fn agent_with_gang(h: &mut H) -> GangCustomerAgent {
        let mut ga =
            GangCustomerAgent::new(1, 0, "raman", "matlab", vec![(0, 60_000, 31)], 60_000, 5000);
        let mut ctx = h.ctx();
        ga.start(&mut ctx);
        ga.on_timer(GangTimer::Arrival, &mut ctx);
        ga
    }

    fn ports() -> Vec<GangPortInfo> {
        vec![
            GangPortInfo {
                offer_name: "m".into(),
                offer_type: "Machine".into(),
                contact: "m:9614".into(),
                ticket: Ticket::from_raw(1),
            },
            GangPortInfo {
                offer_name: "lic".into(),
                offer_type: "License".into(),
                contact: "lic:27000".into(),
                ticket: Ticket::from_raw(2),
            },
        ]
    }

    fn reply(provider: &str, accepted: bool) -> SimMsg {
        SimMsg::Proto(Message::ClaimReply(matchmaker::protocol::ClaimResponse {
            accepted,
            rejection: if accepted {
                None
            } else {
                Some(matchmaker::protocol::ClaimRejection::ConstraintFailed)
            },
            provider_ad: classad::parse_classad(&format!(
                r#"[ Name = "{provider}"; Type = "{}" ]"#,
                if provider == "m" {
                    "Machine"
                } else {
                    "License"
                }
            ))
            .unwrap(),
        }))
    }

    #[test]
    fn gang_ad_is_well_formed() {
        let mut h = H::new();
        let ga = agent_with_gang(&mut h);
        let ad = ga.gang_ad(&ga.gangs[0]);
        assert_eq!(ad.get_string("Type"), Some("Gang"));
        let gang = gangmatch::coalloc::GangRequest::from_ad(&ad).unwrap();
        assert_eq!(gang.ports.len(), 2);
        assert_eq!(h.metrics.jobs_submitted, 1);
    }

    #[test]
    fn grant_claims_every_port() {
        let mut h = H::new();
        let mut ga = agent_with_gang(&mut h);
        let name = ga.gangs[0].name.clone();
        let mut ctx = h.ctx();
        ga.on_message(
            SimMsg::GangNotify {
                gang_name: name,
                ports: ports(),
            },
            &mut ctx,
        );
        assert_eq!(h.metrics.claim_attempts, 2);
        assert!(matches!(ga.gangs[0].state, GangState::Claiming { .. }));
    }

    #[test]
    fn all_accepts_move_to_running() {
        let mut h = H::new();
        let mut ga = agent_with_gang(&mut h);
        let name = ga.gangs[0].name.clone();
        {
            let mut ctx = h.ctx();
            ga.on_message(
                SimMsg::GangNotify {
                    gang_name: name,
                    ports: ports(),
                },
                &mut ctx,
            );
            ga.on_message(reply("lic", true), &mut ctx);
            ga.on_message(reply("m", true), &mut ctx);
        }
        match &ga.gangs[0].state {
            GangState::Running { auxiliary } => {
                assert_eq!(auxiliary.len(), 1);
                assert_eq!(auxiliary[0].offer_name, "lic");
            }
            s => panic!("{s:?}"),
        }
        assert!(ga.gangs[0].first_start.is_some());
    }

    #[test]
    fn partial_rejection_aborts_atomically() {
        let mut h = H::new();
        let mut ga = agent_with_gang(&mut h);
        let name = ga.gangs[0].name.clone();
        {
            let mut ctx = h.ctx();
            ga.on_message(
                SimMsg::GangNotify {
                    gang_name: name,
                    ports: ports(),
                },
                &mut ctx,
            );
            // License accepted first, then the machine refuses.
            ga.on_message(reply("lic", true), &mut ctx);
            ga.on_message(reply("m", false), &mut ctx);
        }
        assert_eq!(
            ga.gangs[0].state,
            GangState::Idle,
            "gang retries from scratch"
        );
        assert_eq!(ga.gangs[0].aborts, 1);
        assert_eq!(h.metrics.gangs_aborted, 1);
        // A Release was queued for the license seat.
        let mut release_seen = false;
        while let Some((_, ev)) = h.queue.pop() {
            if let Event::Deliver {
                to: 6,
                msg: SimMsg::Proto(Message::Release { .. }),
            } = ev
            {
                release_seen = true;
            }
        }
        assert!(release_seen, "already-claimed port must be released");
    }

    #[test]
    fn completion_releases_auxiliary_and_records() {
        let mut h = H::new();
        let mut ga = agent_with_gang(&mut h);
        let name = ga.gangs[0].name.clone();
        let id = ga.gangs[0].id;
        {
            let mut ctx = h.ctx();
            ga.on_message(
                SimMsg::GangNotify {
                    gang_name: name,
                    ports: ports(),
                },
                &mut ctx,
            );
            ga.on_message(reply("m", true), &mut ctx);
            ga.on_message(reply("lic", true), &mut ctx);
            ga.on_message(SimMsg::JobFinished { job_id: id }, &mut ctx);
        }
        assert_eq!(ga.gangs[0].state, GangState::Completed);
        assert_eq!(h.metrics.jobs_completed, 1);
        assert_eq!(ga.incomplete(), 0);
    }

    #[test]
    fn late_accept_after_abort_is_released() {
        // Machine rejects while the license reply is still in flight; the
        // license's late ACCEPT must be answered with a Release.
        let mut h = H::new();
        let mut ga = agent_with_gang(&mut h);
        let name = ga.gangs[0].name.clone();
        {
            let mut ctx = h.ctx();
            ga.on_message(
                SimMsg::GangNotify {
                    gang_name: name,
                    ports: ports(),
                },
                &mut ctx,
            );
            ga.on_message(reply("m", false), &mut ctx); // abort, license pending
        }
        assert_eq!(ga.gangs[0].state, GangState::Idle);
        {
            let mut ctx = h.ctx();
            ga.on_message(reply("lic", true), &mut ctx); // late accept
        }
        let mut release_to_license = false;
        while let Some((_, ev)) = h.queue.pop() {
            if let Event::Deliver {
                to: 6,
                msg: SimMsg::Proto(Message::Release { .. }),
            } = ev
            {
                release_to_license = true;
            }
        }
        assert!(
            release_to_license,
            "late-accepted orphan seat must be released"
        );
        // And the orphan entry is consumed (no double release on replays).
        let mut ctx = h.ctx();
        ga.on_message(reply("lic", true), &mut ctx);
        assert_eq!(h.queue.pending(), 0);
    }

    #[test]
    fn vacate_releases_and_retries() {
        let mut h = H::new();
        let mut ga = agent_with_gang(&mut h);
        let name = ga.gangs[0].name.clone();
        let id = ga.gangs[0].id;
        {
            let mut ctx = h.ctx();
            ga.on_message(
                SimMsg::GangNotify {
                    gang_name: name,
                    ports: ports(),
                },
                &mut ctx,
            );
            ga.on_message(reply("m", true), &mut ctx);
            ga.on_message(reply("lic", true), &mut ctx);
            ga.on_message(
                SimMsg::Vacated {
                    job_id: id,
                    done_ms: 100,
                },
                &mut ctx,
            );
        }
        assert_eq!(ga.gangs[0].state, GangState::Idle);
        assert_eq!(ga.gangs[0].aborts, 1);
    }
}
