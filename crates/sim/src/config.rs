//! Scenarios as classads: experiment configuration written in the same
//! language the system matches on.
//!
//! "All entities are represented with classads" (paper §4) — including,
//! here, experiment configurations. [`scenario_to_ad`] renders a
//! [`Scenario`] as a nested classad and [`scenario_from_ad`] parses one
//! back, so experiment files are plain `.classad` text:
//!
//! ```classad
//! [
//!     Seed = 42;
//!     Fleet = [ Count = 16; ... ];
//!     Users = { [ Name = "alice"; Jobs = 20; ... ] };
//!     DurationMs = 28800000;
//! ]
//! ```
//!
//! Missing attributes fall back to the [`Scenario`] defaults, so a config
//! only states what it changes.

use crate::network::NetworkModel;
use crate::scenario::{GangLoadSpec, NegotiatorSettings, PolicyConfig, Scenario};
use crate::workload::{FleetSpec, MachineTemplate, OwnerActivity, UserSpec};
use classad::ast::Expr;
use classad::eval::value_to_expr;
use classad::{ClassAd, EvalPolicy, Value};
use std::fmt;

/// Errors converting a classad into a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending attribute.
    pub path: String,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error at `{}`: {}", self.path, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(path: &str, message: impl Into<String>) -> ConfigError {
    ConfigError {
        path: path.to_string(),
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Reading helpers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    ad: &'a ClassAd,
    path: String,
    policy: EvalPolicy,
}

impl<'a> Reader<'a> {
    fn new(ad: &'a ClassAd, path: &str) -> Self {
        Reader {
            ad,
            path: path.to_string(),
            policy: EvalPolicy::default(),
        }
    }

    fn at(&self, name: &str) -> String {
        if self.path.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.path)
        }
    }

    fn value(&self, name: &str) -> Option<Value> {
        if self.ad.contains(name) {
            Some(self.ad.eval_attr(name, &self.policy))
        } else {
            None
        }
    }

    fn u64(&self, name: &str, default: u64) -> Result<u64, ConfigError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .as_int()
                .filter(|i| *i >= 0)
                .map(|i| i as u64)
                .ok_or_else(|| {
                    err(
                        &self.at(name),
                        format!("expected a non-negative integer, got {v}"),
                    )
                }),
        }
    }

    fn usize(&self, name: &str, default: usize) -> Result<usize, ConfigError> {
        Ok(self.u64(name, default as u64)? as usize)
    }

    fn i64(&self, name: &str, default: i64) -> Result<i64, ConfigError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .as_int()
                .ok_or_else(|| err(&self.at(name), format!("expected an integer, got {v}"))),
        }
    }

    fn f64(&self, name: &str, default: f64) -> Result<f64, ConfigError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| err(&self.at(name), format!("expected a number, got {v}"))),
        }
    }

    fn bool(&self, name: &str, default: bool) -> Result<bool, ConfigError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| err(&self.at(name), format!("expected a boolean, got {v}"))),
        }
    }

    fn string(&self, name: &str, default: &str) -> Result<String, ConfigError> {
        match self.value(name) {
            None => Ok(default.to_string()),
            Some(v) => match v.as_str() {
                Some(s) => Ok(s.to_string()),
                None => Err(err(&self.at(name), format!("expected a string, got {v}"))),
            },
        }
    }

    fn sub_ads(&self, name: &str) -> Result<Vec<ClassAd>, ConfigError> {
        match self.value(name) {
            None => Ok(Vec::new()),
            Some(Value::List(items)) => items
                .iter()
                .enumerate()
                .map(|(i, item)| match item {
                    Value::Ad(ad) => Ok((**ad).clone()),
                    other => Err(err(
                        &format!("{}[{i}]", self.at(name)),
                        format!("expected a classad, got {other}"),
                    )),
                })
                .collect(),
            Some(Value::Ad(ad)) => Ok(vec![(*ad).clone()]),
            Some(other) => Err(err(
                &self.at(name),
                format!("expected a list of classads, got {other}"),
            )),
        }
    }

    fn sub_ad(&self, name: &str) -> Result<Option<ClassAd>, ConfigError> {
        match self.value(name) {
            None => Ok(None),
            Some(Value::Ad(ad)) => Ok(Some((*ad).clone())),
            Some(other) => Err(err(
                &self.at(name),
                format!("expected a classad, got {other}"),
            )),
        }
    }

    fn string_list(&self, name: &str) -> Result<Vec<String>, ConfigError> {
        match self.value(name) {
            None => Ok(Vec::new()),
            Some(Value::List(items)) => items
                .iter()
                .enumerate()
                .map(|(i, item)| match item.as_str() {
                    Some(s) => Ok(s.to_string()),
                    None => Err(err(
                        &format!("{}[{i}]", self.at(name)),
                        format!("expected a string, got {item}"),
                    )),
                })
                .collect(),
            Some(other) => Err(err(
                &self.at(name),
                format!("expected a list of strings, got {other}"),
            )),
        }
    }

    fn i64_list(&self, name: &str, default: &[i64]) -> Result<Vec<i64>, ConfigError> {
        match self.value(name) {
            None => Ok(default.to_vec()),
            Some(Value::List(items)) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    item.as_int().ok_or_else(|| {
                        err(
                            &format!("{}[{i}]", self.at(name)),
                            format!("expected an integer, got {item}"),
                        )
                    })
                })
                .collect(),
            Some(other) => Err(err(
                &self.at(name),
                format!("expected a list of integers, got {other}"),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario -> ClassAd
// ---------------------------------------------------------------------------

fn record(fields: Vec<(&str, Expr)>) -> Expr {
    Expr::Record(fields.into_iter().map(|(n, e)| (n.into(), e)).collect())
}

fn str_list(items: &[String]) -> Expr {
    Expr::List(items.iter().map(|s| Expr::str(s)).collect())
}

fn int_list(items: &[i64]) -> Expr {
    Expr::List(items.iter().map(|&i| Expr::int(i)).collect())
}

fn activity_record(a: &OwnerActivity) -> Expr {
    record(vec![
        ("MeanActiveMs", Expr::real(a.mean_active_ms)),
        ("MeanAwayMs", Expr::real(a.mean_away_ms)),
        ("InitiallyPresentProb", Expr::real(a.initially_present_prob)),
        ("DayLengthMs", Expr::int(a.day_length_ms as i64)),
        ("NightAwayFactor", Expr::real(a.night_away_factor)),
    ])
}

fn policy_record(p: &PolicyConfig) -> Expr {
    match p {
        PolicyConfig::Always => record(vec![("Kind", Expr::str("Always"))]),
        PolicyConfig::OwnerIdle {
            min_keyboard_idle_s,
        } => record(vec![
            ("Kind", Expr::str("OwnerIdle")),
            ("MinKeyboardIdleS", Expr::int(*min_keyboard_idle_s)),
        ]),
        PolicyConfig::Figure1 {
            research,
            friends,
            untrusted,
        } => record(vec![
            ("Kind", Expr::str("Figure1")),
            ("Research", str_list(research)),
            ("Friends", str_list(friends)),
            ("Untrusted", str_list(untrusted)),
        ]),
    }
}

/// Render a scenario as a classad.
pub fn scenario_to_ad(s: &Scenario) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set_int("Seed", s.seed as i64);
    ad.set(
        "Fleet",
        record(vec![
            ("Count", Expr::int(s.fleet.count as i64)),
            (
                "Templates",
                Expr::List(
                    s.fleet
                        .templates
                        .iter()
                        .map(|t| {
                            record(vec![
                                ("Arch", Expr::str(&t.arch)),
                                ("OpSys", Expr::str(&t.opsys)),
                                ("MipsMin", Expr::int(t.mips.0)),
                                ("MipsMax", Expr::int(t.mips.1)),
                                ("MemoryChoices", int_list(&t.memory_choices)),
                                ("DiskMin", Expr::int(t.disk.0)),
                                ("DiskMax", Expr::int(t.disk.1)),
                                ("Weight", Expr::real(t.weight)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("Activity", activity_record(&s.fleet.activity)),
        ]),
    );
    ad.set("Policy", policy_record(&s.policy));
    ad.set(
        "Users",
        Expr::List(
            s.users
                .iter()
                .map(|u| {
                    record(vec![
                        ("Name", Expr::str(&u.name)),
                        ("Jobs", Expr::int(u.job_count as i64)),
                        ("MeanInterarrivalMs", Expr::real(u.mean_interarrival_ms)),
                        ("MeanDurationMs", Expr::real(u.mean_duration_ms)),
                        ("MemoryChoices", int_list(&u.memory_choices)),
                        ("ArchConstraintProb", Expr::real(u.arch_constraint_prob)),
                        ("RequiredArch", Expr::str(&u.required_arch)),
                        ("CheckpointProb", Expr::real(u.checkpoint_prob)),
                        ("Rank", Expr::str(&u.rank)),
                    ])
                })
                .collect(),
        ),
    );
    ad.set(
        "GangUsers",
        Expr::List(
            s.gang_users
                .iter()
                .map(|g| {
                    record(vec![
                        ("User", Expr::str(&g.user)),
                        ("Count", Expr::int(g.count as i64)),
                        ("MeanInterarrivalMs", Expr::real(g.mean_interarrival_ms)),
                        ("MeanDurationMs", Expr::real(g.mean_duration_ms)),
                        ("Memory", Expr::int(g.memory)),
                    ])
                })
                .collect(),
        ),
    );
    ad.set_int("Licenses", s.licenses as i64);
    ad.set_str("LicenseProduct", &s.license_product);
    ad.set(
        "Network",
        record(vec![
            ("BaseLatencyMs", Expr::int(s.network.base_latency_ms as i64)),
            ("JitterMs", Expr::int(s.network.jitter_ms as i64)),
            ("DropProb", Expr::real(s.network.drop_prob)),
        ]),
    );
    ad.set_int("AdvertisePeriodMs", s.advertise_period_ms as i64);
    ad.set_int("NegotiationPeriodMs", s.negotiation_period_ms as i64);
    ad.set_bool("PushAdsOnChange", s.push_ads_on_change);
    let mut neg = vec![
        ("Threads", Expr::int(s.negotiator.threads as i64)),
        ("Preemption", Expr::bool(s.negotiator.preemption)),
        ("ChargePerMatch", Expr::real(s.negotiator.charge_per_match)),
        ("Autocluster", Expr::bool(s.negotiator.autocluster)),
    ];
    if let Some(h) = s.negotiator.priority_halflife_ms {
        neg.push(("PriorityHalflifeMs", Expr::real(h)));
    }
    ad.set("Negotiator", record(neg));
    ad.set_int("DurationMs", s.duration_ms as i64);
    ad
}

// ---------------------------------------------------------------------------
// ClassAd -> Scenario
// ---------------------------------------------------------------------------

/// Parse a scenario from a classad; missing attributes keep the defaults.
pub fn scenario_from_ad(ad: &ClassAd) -> Result<Scenario, ConfigError> {
    let defaults = Scenario::default();
    let r = Reader::new(ad, "");

    let fleet = match r.sub_ad("Fleet")? {
        None => defaults.fleet.clone(),
        Some(fad) => {
            let fr = Reader::new(&fad, "Fleet");
            let templates = {
                let tads = fr.sub_ads("Templates")?;
                if tads.is_empty() {
                    FleetSpec::default().templates
                } else {
                    tads.iter()
                        .enumerate()
                        .map(|(i, tad)| {
                            let tr = Reader::new(tad, &format!("Fleet.Templates[{i}]"));
                            let d = MachineTemplate::intel_solaris();
                            Ok(MachineTemplate {
                                arch: tr.string("Arch", &d.arch)?,
                                opsys: tr.string("OpSys", &d.opsys)?,
                                mips: (tr.i64("MipsMin", d.mips.0)?, tr.i64("MipsMax", d.mips.1)?),
                                memory_choices: tr.i64_list("MemoryChoices", &d.memory_choices)?,
                                disk: (tr.i64("DiskMin", d.disk.0)?, tr.i64("DiskMax", d.disk.1)?),
                                weight: tr.f64("Weight", d.weight)?,
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            let activity = match fr.sub_ad("Activity")? {
                None => OwnerActivity::default(),
                Some(aad) => {
                    let ar = Reader::new(&aad, "Fleet.Activity");
                    let d = OwnerActivity::default();
                    OwnerActivity {
                        mean_active_ms: ar.f64("MeanActiveMs", d.mean_active_ms)?,
                        mean_away_ms: ar.f64("MeanAwayMs", d.mean_away_ms)?,
                        initially_present_prob: ar
                            .f64("InitiallyPresentProb", d.initially_present_prob)?,
                        day_length_ms: ar.u64("DayLengthMs", d.day_length_ms)?,
                        night_away_factor: ar.f64("NightAwayFactor", d.night_away_factor)?,
                    }
                }
            };
            FleetSpec {
                count: fr.usize("Count", defaults.fleet.count)?,
                templates,
                activity,
            }
        }
    };

    let policy = match r.sub_ad("Policy")? {
        None => defaults.policy.clone(),
        Some(pad) => {
            let pr = Reader::new(&pad, "Policy");
            match pr.string("Kind", "OwnerIdle")?.as_str() {
                "Always" => PolicyConfig::Always,
                "OwnerIdle" => PolicyConfig::OwnerIdle {
                    min_keyboard_idle_s: pr.i64("MinKeyboardIdleS", 300)?,
                },
                "Figure1" => PolicyConfig::Figure1 {
                    research: pr.string_list("Research")?,
                    friends: pr.string_list("Friends")?,
                    untrusted: pr.string_list("Untrusted")?,
                },
                other => return Err(err("Policy.Kind", format!("unknown policy `{other}`"))),
            }
        }
    };

    let users = r
        .sub_ads("Users")?
        .iter()
        .enumerate()
        .map(|(i, uad)| {
            let ur = Reader::new(uad, &format!("Users[{i}]"));
            let d = UserSpec::standard("user", 0);
            Ok(UserSpec {
                name: ur.string("Name", &format!("user{i}"))?,
                job_count: ur.usize("Jobs", 10)?,
                mean_interarrival_ms: ur.f64("MeanInterarrivalMs", d.mean_interarrival_ms)?,
                mean_duration_ms: ur.f64("MeanDurationMs", d.mean_duration_ms)?,
                memory_choices: ur.i64_list("MemoryChoices", &d.memory_choices)?,
                arch_constraint_prob: ur.f64("ArchConstraintProb", d.arch_constraint_prob)?,
                required_arch: ur.string("RequiredArch", &d.required_arch)?,
                checkpoint_prob: ur.f64("CheckpointProb", d.checkpoint_prob)?,
                rank: ur.string("Rank", &d.rank)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let gang_users = r
        .sub_ads("GangUsers")?
        .iter()
        .enumerate()
        .map(|(i, gad)| {
            let gr = Reader::new(gad, &format!("GangUsers[{i}]"));
            Ok(GangLoadSpec {
                user: gr.string("User", &format!("ganguser{i}"))?,
                count: gr.usize("Count", 1)?,
                mean_interarrival_ms: gr.f64("MeanInterarrivalMs", 0.0)?,
                mean_duration_ms: gr.f64("MeanDurationMs", 600_000.0)?,
                memory: gr.i64("Memory", 31)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    let network = match r.sub_ad("Network")? {
        None => defaults.network.clone(),
        Some(nad) => {
            let nr = Reader::new(&nad, "Network");
            let d = NetworkModel::default();
            NetworkModel {
                base_latency_ms: nr.u64("BaseLatencyMs", d.base_latency_ms)?,
                jitter_ms: nr.u64("JitterMs", d.jitter_ms)?,
                drop_prob: nr.f64("DropProb", d.drop_prob)?,
            }
        }
    };

    let negotiator = match r.sub_ad("Negotiator")? {
        None => defaults.negotiator.clone(),
        Some(nad) => {
            let nr = Reader::new(&nad, "Negotiator");
            let d = NegotiatorSettings::default();
            NegotiatorSettings {
                threads: nr.usize("Threads", d.threads)?,
                preemption: nr.bool("Preemption", d.preemption)?,
                charge_per_match: nr.f64("ChargePerMatch", d.charge_per_match)?,
                priority_halflife_ms: if nad.contains("PriorityHalflifeMs") {
                    Some(nr.f64("PriorityHalflifeMs", 0.0)?)
                } else {
                    None
                },
                autocluster: nr.bool("Autocluster", d.autocluster)?,
            }
        }
    };

    Ok(Scenario {
        seed: r.i64("Seed", defaults.seed as i64)? as u64,
        fleet,
        policy,
        users: if users.is_empty() && !ad.contains("Users") {
            defaults.users
        } else {
            users
        },
        gang_users,
        licenses: r.usize("Licenses", defaults.licenses)?,
        license_product: r.string("LicenseProduct", &defaults.license_product)?,
        network,
        advertise_period_ms: r.u64("AdvertisePeriodMs", defaults.advertise_period_ms)?,
        negotiation_period_ms: r.u64("NegotiationPeriodMs", defaults.negotiation_period_ms)?,
        push_ads_on_change: r.bool("PushAdsOnChange", defaults.push_ads_on_change)?,
        negotiator,
        duration_ms: r.u64("DurationMs", defaults.duration_ms)?,
    })
}

/// Parse a scenario from classad source text.
pub fn scenario_from_str(src: &str) -> Result<Scenario, ConfigError> {
    let ad = classad::parse_classad(src)
        .map_err(|e| err("<input>", format!("classad parse error: {e}")))?;
    scenario_from_ad(&ad)
}

// Keep `value_to_expr` linked for potential re-export users.
#[allow(dead_code)]
fn _touch(v: &Value) -> Expr {
    value_to_expr(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            seed: 99,
            fleet: FleetSpec {
                count: 7,
                templates: vec![
                    MachineTemplate::intel_solaris(),
                    MachineTemplate::sparc_solaris(),
                ],
                activity: OwnerActivity {
                    day_length_ms: 1000,
                    ..Default::default()
                },
            },
            policy: PolicyConfig::Figure1 {
                research: vec!["raman".into()],
                friends: vec!["tannenba".into(), "wright".into()],
                untrusted: vec!["riffraff".into()],
            },
            users: vec![UserSpec::standard("alice", 3)],
            gang_users: vec![GangLoadSpec {
                user: "bob".into(),
                count: 2,
                mean_interarrival_ms: 10.0,
                mean_duration_ms: 20.0,
                memory: 64,
            }],
            licenses: 2,
            license_product: "matlab".into(),
            network: NetworkModel {
                base_latency_ms: 9,
                jitter_ms: 1,
                drop_prob: 0.25,
            },
            advertise_period_ms: 111,
            negotiation_period_ms: 222,
            push_ads_on_change: false,
            negotiator: NegotiatorSettings {
                threads: 2,
                preemption: false,
                charge_per_match: 3.5,
                priority_halflife_ms: Some(4.5),
                autocluster: false,
            },
            duration_ms: 333,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        let ad = scenario_to_ad(&s);
        let back = scenario_from_ad(&ad).unwrap();
        // Compare through the classad rendering (Scenario lacks PartialEq).
        assert_eq!(ad, scenario_to_ad(&back));
        assert_eq!(back.seed, 99);
        assert_eq!(back.fleet.count, 7);
        assert_eq!(back.fleet.templates.len(), 2);
        assert!(matches!(back.policy, PolicyConfig::Figure1 { .. }));
        assert_eq!(back.gang_users.len(), 1);
        assert_eq!(back.negotiator.priority_halflife_ms, Some(4.5));
        assert!(!back.push_ads_on_change);
    }

    #[test]
    fn roundtrip_survives_text_form() {
        let s = sample();
        let text = scenario_to_ad(&s).pretty();
        let back = scenario_from_str(&text).unwrap();
        assert_eq!(scenario_to_ad(&s), scenario_to_ad(&back));
    }

    #[test]
    fn empty_ad_gives_defaults() {
        let back = scenario_from_str("[]").unwrap();
        let d = Scenario::default();
        assert_eq!(back.seed, d.seed);
        assert_eq!(back.fleet.count, d.fleet.count);
        assert_eq!(back.users.len(), d.users.len());
        assert_eq!(back.duration_ms, d.duration_ms);
    }

    #[test]
    fn partial_override() {
        let back = scenario_from_str(
            r#"[ Seed = 5; Fleet = [ Count = 3 ];
                 Users = { [ Name = "x"; Jobs = 1 ] };
                 DurationMs = 1000 ]"#,
        )
        .unwrap();
        assert_eq!(back.seed, 5);
        assert_eq!(back.fleet.count, 3);
        assert_eq!(back.users.len(), 1);
        assert_eq!(back.users[0].name, "x");
        assert_eq!(back.duration_ms, 1000);
        // Unspecified parts keep defaults.
        assert!(!back.fleet.templates.is_empty());
    }

    #[test]
    fn computed_attributes_work() {
        // Config values can be expressions: the classad evaluator runs.
        let back = scenario_from_str("[ DurationMs = 8 * 3600 * 1000; Seed = 40 + 2 ]").unwrap();
        assert_eq!(back.duration_ms, 8 * 3600 * 1000);
        assert_eq!(back.seed, 42);
    }

    #[test]
    fn type_errors_are_reported_with_paths() {
        let e = scenario_from_str(r#"[ Fleet = [ Count = "three" ] ]"#).unwrap_err();
        assert_eq!(e.path, "Fleet.Count");
        let e = scenario_from_str(r#"[ Policy = [ Kind = "Nonsense" ] ]"#).unwrap_err();
        assert!(e.to_string().contains("unknown policy"));
        let e = scenario_from_str(r#"[ Users = 5 ]"#).unwrap_err();
        assert_eq!(e.path, "Users");
    }

    #[test]
    fn loaded_scenario_actually_runs() {
        let back = scenario_from_str(
            r#"[ Seed = 7;
                 Fleet = [ Count = 4 ];
                 Policy = [ Kind = "Always" ];
                 Users = { [ Name = "alice"; Jobs = 2;
                             MeanDurationMs = 60000.0;
                             ArchConstraintProb = 0.0 ] };
                 DurationMs = 3600000 ]"#,
        )
        .unwrap();
        let (summary, _) = back.run();
        assert_eq!(summary.jobs_completed, 2);
    }
}
