//! A simple message-latency/loss model for the simulated pool network.

use crate::engine::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Network model: per-message latency = `base_latency_ms` + uniform jitter
/// in `[0, jitter_ms]`; each message is independently dropped with
/// probability `drop_prob`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Fixed one-way latency floor, ms.
    pub base_latency_ms: u64,
    /// Maximum additional uniform jitter, ms.
    pub jitter_ms: u64,
    /// Probability a message is silently lost.
    pub drop_prob: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            base_latency_ms: 2,
            jitter_ms: 3,
            drop_prob: 0.0,
        }
    }
}

impl NetworkModel {
    /// An ideal network: zero latency, no loss.
    pub fn ideal() -> Self {
        NetworkModel {
            base_latency_ms: 0,
            jitter_ms: 0,
            drop_prob: 0.0,
        }
    }

    /// Sample the fate of one message: `Some(latency)` to deliver after
    /// `latency` ms, `None` if dropped.
    pub fn sample(&self, rng: &mut impl Rng) -> Option<SimTime> {
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob.clamp(0.0, 1.0)) {
            return None;
        }
        let jitter = if self.jitter_ms > 0 {
            rng.gen_range(0..=self.jitter_ms)
        } else {
            0
        };
        Some(self.base_latency_ms + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_network_is_instant_and_lossless() {
        let net = NetworkModel::ideal();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(net.sample(&mut rng), Some(0));
        }
    }

    #[test]
    fn latency_within_bounds() {
        let net = NetworkModel {
            base_latency_ms: 10,
            jitter_ms: 5,
            drop_prob: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let l = net.sample(&mut rng).unwrap();
            assert!((10..=15).contains(&l), "{l}");
        }
    }

    #[test]
    fn drop_probability_roughly_respected() {
        let net = NetworkModel {
            base_latency_ms: 0,
            jitter_ms: 0,
            drop_prob: 0.25,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let dropped = (0..10_000)
            .filter(|_| net.sample(&mut rng).is_none())
            .count();
        assert!((2000..3000).contains(&dropped), "{dropped}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let net = NetworkModel::default();
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| net.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| net.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
