//! Event tracing: an optional, bounded log of protocol-level events for
//! post-run analysis and debugging, exportable as JSON lines.
//!
//! Tracing is off by default (high-volume runs shouldn't pay for it);
//! enable it with [`TraceLog::enable`] before the simulation starts.

use crate::engine::SimTime;
use serde::Serialize;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// The negotiator matched a request to an offer.
    Match {
        /// Request ad name.
        request: String,
        /// Offer ad name.
        offer: String,
        /// Request's rank of the offer.
        rank: f64,
    },
    /// A provider accepted a claim.
    ClaimAccepted {
        /// Provider name.
        provider: String,
        /// Job id.
        job: u64,
    },
    /// A provider rejected a claim.
    ClaimRejected {
        /// Provider name.
        provider: String,
        /// Rejection cause (display form).
        why: String,
    },
    /// A job finished on a provider.
    JobFinished {
        /// Provider name.
        provider: String,
        /// Job id.
        job: u64,
    },
    /// A running job was vacated.
    Vacated {
        /// Provider name.
        provider: String,
        /// Job id.
        job: u64,
        /// Owner returned (vs preempted by rank).
        by_owner: bool,
    },
    /// A workstation owner arrived or departed.
    OwnerToggle {
        /// Machine name.
        machine: String,
        /// Present after the toggle?
        present: bool,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Virtual time (ms).
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded event log.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TraceLog {
    enabled: bool,
    capacity: usize,
    /// Events recorded (oldest first); stops growing at capacity.
    pub records: Vec<TraceRecord>,
    /// Events dropped after the log filled.
    pub dropped: u64,
}

impl TraceLog {
    /// Enable tracing with a record capacity.
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity;
        self.records.reserve(capacity.min(4096));
    }

    /// Is tracing on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled; counts drops when full).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { at, event });
    }

    /// Export as JSON lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&record_json(r));
            out.push('\n');
        }
        out
    }

    /// Events of a given predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| pred(&r.event))
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn record_json(r: &TraceRecord) -> String {
    let body = match &r.event {
        TraceEvent::Match {
            request,
            offer,
            rank,
        } => format!(
            "\"type\":\"match\",\"request\":{},\"offer\":{},\"rank\":{rank}",
            json_str(request),
            json_str(offer)
        ),
        TraceEvent::ClaimAccepted { provider, job } => format!(
            "\"type\":\"claim_accepted\",\"provider\":{},\"job\":{job}",
            json_str(provider)
        ),
        TraceEvent::ClaimRejected { provider, why } => format!(
            "\"type\":\"claim_rejected\",\"provider\":{},\"why\":{}",
            json_str(provider),
            json_str(why)
        ),
        TraceEvent::JobFinished { provider, job } => format!(
            "\"type\":\"job_finished\",\"provider\":{},\"job\":{job}",
            json_str(provider)
        ),
        TraceEvent::Vacated {
            provider,
            job,
            by_owner,
        } => format!(
            "\"type\":\"vacated\",\"provider\":{},\"job\":{job},\"by_owner\":{by_owner}",
            json_str(provider)
        ),
        TraceEvent::OwnerToggle { machine, present } => format!(
            "\"type\":\"owner_toggle\",\"machine\":{},\"present\":{present}",
            json_str(machine)
        ),
    };
    format!("{{\"at\":{},{body}}}", r.at)
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} event(s), {} dropped",
            self.records.len(),
            self.dropped
        )?;
        for r in &self.records {
            writeln!(f, "  [{:>10} ms] {:?}", r.at, r.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::default();
        log.record(
            1,
            TraceEvent::JobFinished {
                provider: "m".into(),
                job: 1,
            },
        );
        assert!(log.records.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn capacity_bounds_growth() {
        let mut log = TraceLog::default();
        log.enable(2);
        for i in 0..5 {
            log.record(
                i,
                TraceEvent::JobFinished {
                    provider: "m".into(),
                    job: i,
                },
            );
        }
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.dropped, 3);
        assert_eq!(log.records[0].at, 0);
    }

    #[test]
    fn jsonl_export_shape() {
        let mut log = TraceLog::default();
        log.enable(10);
        log.record(
            5,
            TraceEvent::Match {
                request: "j\"1".into(),
                offer: "m1".into(),
                rank: 2.5,
            },
        );
        log.record(
            9,
            TraceEvent::ClaimRejected {
                provider: "m1".into(),
                why: "busy".into(),
            },
        );
        let out = log.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"at\":5,\"type\":\"match\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\\\""), "escaped quote: {}", lines[0]);
        assert!(lines[1].contains("claim_rejected"));
        // Valid JSON: reuse the classad JSON parser as an oracle.
        for l in lines {
            classad::json::from_json(l).expect("trace lines are valid JSON objects");
        }
    }

    #[test]
    fn filter_selects_event_kinds() {
        let mut log = TraceLog::default();
        log.enable(10);
        log.record(
            1,
            TraceEvent::OwnerToggle {
                machine: "m".into(),
                present: true,
            },
        );
        log.record(
            2,
            TraceEvent::JobFinished {
                provider: "m".into(),
                job: 7,
            },
        );
        log.record(
            3,
            TraceEvent::OwnerToggle {
                machine: "m".into(),
                present: false,
            },
        );
        let toggles: Vec<_> = log
            .filter(|e| matches!(e, TraceEvent::OwnerToggle { .. }))
            .collect();
        assert_eq!(toggles.len(), 2);
    }

    #[test]
    fn display_renders() {
        let mut log = TraceLog::default();
        log.enable(10);
        log.record(
            1,
            TraceEvent::JobFinished {
                provider: "m".into(),
                job: 7,
            },
        );
        let s = log.to_string();
        assert!(s.contains("1 event(s)"));
        assert!(s.contains("JobFinished"));
    }
}
