//! The simulation driver: wires machines, customer agents, and the pool
//! manager onto the event queue and pumps events.

use crate::ctx::Ctx;
use crate::customer::CustomerAgent;
use crate::engine::{EventQueue, SimTime};
use crate::gangca::GangCustomerAgent;
use crate::license::LicenseAgent;
use crate::machine::MachineAgent;
use crate::manager::ManagerNode;
use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::types::{Event, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// A node in the simulated pool.
///
/// Variants differ widely in size (a ManagerNode embeds an ad store); the
/// vector of nodes is small and long-lived, so boxing would only add
/// indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Node {
    /// A workstation with its Resource-owner Agent.
    Machine(MachineAgent),
    /// A user's Customer Agent.
    Customer(CustomerAgent),
    /// The pool manager (matchmaker).
    Manager(ManagerNode),
    /// A license-seat provider.
    License(LicenseAgent),
    /// A gang (co-allocation) customer agent.
    GangCustomer(GangCustomerAgent),
    /// Placeholder while a node is being dispatched.
    Vacant,
}

/// A running simulation.
#[derive(Debug)]
pub struct Simulation {
    queue: EventQueue<Event>,
    nodes: Vec<Node>,
    directory: HashMap<String, NodeId>,
    network: NetworkModel,
    rng: SmallRng,
    metrics: Metrics,
    manager_id: NodeId,
    total_jobs: u64,
}

impl Simulation {
    /// Assemble a simulation from already-constructed nodes. Use
    /// [`crate::scenario::Scenario::build`] for the common case.
    pub fn assemble(
        manager: ManagerNode,
        machines: Vec<MachineAgent>,
        customers: Vec<CustomerAgent>,
        network: NetworkModel,
        rng: SmallRng,
        total_jobs: u64,
        initially_present: Vec<bool>,
    ) -> Simulation {
        Simulation::assemble_full(
            manager,
            machines,
            customers,
            Vec::new(),
            Vec::new(),
            network,
            rng,
            total_jobs,
            initially_present,
        )
    }

    /// Assemble a simulation including license providers and gang
    /// customers.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_full(
        manager: ManagerNode,
        machines: Vec<MachineAgent>,
        customers: Vec<CustomerAgent>,
        licenses: Vec<LicenseAgent>,
        gang_customers: Vec<GangCustomerAgent>,
        network: NetworkModel,
        rng: SmallRng,
        total_jobs: u64,
        initially_present: Vec<bool>,
    ) -> Simulation {
        let manager_id = manager.id;
        let mut directory = HashMap::new();
        let mut nodes: Vec<Node> = Vec::with_capacity(
            1 + machines.len() + customers.len() + licenses.len() + gang_customers.len(),
        );
        nodes.push(Node::Manager(manager));
        for m in machines {
            directory.insert(m.contact.clone(), m.id);
            nodes.push(Node::Machine(m));
        }
        for c in customers {
            directory.insert(c.contact.clone(), c.id);
            nodes.push(Node::Customer(c));
        }
        for l in licenses {
            directory.insert(l.contact.clone(), l.id);
            nodes.push(Node::License(l));
        }
        for g in gang_customers {
            directory.insert(g.contact.clone(), g.id);
            nodes.push(Node::GangCustomer(g));
        }
        let mut sim = Simulation {
            queue: EventQueue::new(),
            nodes,
            directory,
            network,
            rng,
            metrics: Metrics::default(),
            manager_id,
            total_jobs,
        };
        sim.start_all(initially_present);
        sim
    }

    fn start_all(&mut self, initially_present: Vec<bool>) {
        let n = self.nodes.len();
        let mut machine_idx = 0;
        for id in 0..n {
            let mut node = std::mem::replace(&mut self.nodes[id], Node::Vacant);
            {
                let mut ctx = Ctx {
                    now: self.queue.now(),
                    rng: &mut self.rng,
                    metrics: &mut self.metrics,
                    directory: &self.directory,
                    queue: &mut self.queue,
                    network: &self.network,
                };
                match &mut node {
                    Node::Manager(m) => m.start(&mut ctx),
                    Node::Machine(m) => {
                        let present = initially_present.get(machine_idx).copied().unwrap_or(false);
                        machine_idx += 1;
                        m.start(present, &mut ctx);
                    }
                    Node::Customer(c) => c.start(&mut ctx),
                    Node::License(l) => l.start(&mut ctx),
                    Node::GangCustomer(g) => g.start(&mut ctx),
                    Node::Vacant => {}
                }
            }
            self.nodes[id] = node;
        }
    }

    /// Current virtual time (ms).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Enable protocol-event tracing (call before running; see
    /// [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.metrics.trace.enable(capacity);
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// The pool-manager node.
    pub fn manager(&self) -> &ManagerNode {
        match &self.nodes[self.manager_id] {
            Node::Manager(m) => m,
            _ => unreachable!("manager id mismatch"),
        }
    }

    /// Iterate the machine agents.
    pub fn machines(&self) -> impl Iterator<Item = &MachineAgent> {
        self.nodes.iter().filter_map(|n| match n {
            Node::Machine(m) => Some(m),
            _ => None,
        })
    }

    /// Iterate the customer agents.
    pub fn customers(&self) -> impl Iterator<Item = &CustomerAgent> {
        self.nodes.iter().filter_map(|n| match n {
            Node::Customer(c) => Some(c),
            _ => None,
        })
    }

    /// Total incomplete gangs across all gang customer agents.
    pub fn nodes_gang_incomplete(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::GangCustomer(g) => Some(g.incomplete()),
                _ => None,
            })
            .sum()
    }

    /// Number of license seats currently claimed.
    pub fn licenses_claimed(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::License(l) if l.is_claimed()))
            .count()
    }

    /// Have all expected jobs completed?
    pub fn drained(&self) -> bool {
        self.total_jobs > 0 && self.metrics.jobs_completed >= self.total_jobs
    }

    fn step(&mut self) -> bool {
        let Some((_, ev)) = self.queue.pop() else {
            return false;
        };
        let (id, work) = match ev {
            Event::Deliver { to, msg } => (to, Work::Msg(msg)),
            Event::Machine { node, tag } => (node, Work::MachineTimer(tag)),
            Event::Customer { node, tag } => (node, Work::CustomerTimer(tag)),
            Event::Manager { node, tag } => (node, Work::ManagerTimer(tag)),
            Event::License { node, tag } => (node, Work::LicenseTimer(tag)),
            Event::GangCustomer { node, tag } => (node, Work::GangTimer(tag)),
        };
        if id >= self.nodes.len() {
            return true; // dangling address: drop
        }
        let mut node = std::mem::replace(&mut self.nodes[id], Node::Vacant);
        {
            let mut ctx = Ctx {
                now: self.queue.now(),
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                directory: &self.directory,
                queue: &mut self.queue,
                network: &self.network,
            };
            match (&mut node, work) {
                (Node::Machine(m), Work::Msg(msg)) => m.on_message(msg, &mut ctx),
                (Node::Machine(m), Work::MachineTimer(t)) => m.on_timer(t, &mut ctx),
                (Node::Customer(c), Work::Msg(msg)) => c.on_message(msg, &mut ctx),
                (Node::Customer(c), Work::CustomerTimer(t)) => c.on_timer(t, &mut ctx),
                (Node::Manager(m), Work::Msg(msg)) => m.on_message(msg, &mut ctx),
                (Node::Manager(m), Work::ManagerTimer(t)) => m.on_timer(t, &mut ctx),
                (Node::License(l), Work::Msg(msg)) => l.on_message(msg, &mut ctx),
                (Node::License(l), Work::LicenseTimer(t)) => l.on_timer(t, &mut ctx),
                (Node::GangCustomer(g), Work::Msg(msg)) => g.on_message(msg, &mut ctx),
                (Node::GangCustomer(g), Work::GangTimer(t)) => g.on_timer(t, &mut ctx),
                // Mis-addressed timers/messages are dropped.
                _ => {}
            }
        }
        self.nodes[id] = node;
        true
    }

    /// Run until the virtual clock would pass `until` (exclusive), the
    /// queue drains, or all jobs complete. Returns the number of events
    /// processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let start = self.queue.processed();
        while let Some(t) = self.queue.peek_time() {
            if t > until || self.drained() {
                break;
            }
            self.step();
        }
        self.queue.processed() - start
    }

    /// Run until all jobs complete or `max_time` is reached. Returns
    /// `true` if drained.
    pub fn run_until_drained(&mut self, max_time: SimTime) -> bool {
        self.run_until(max_time);
        self.drained()
    }

    /// Keep processing events up to `until` even after all jobs have
    /// completed — lets in-flight teardown traffic (releases, usage
    /// reports) deliver after [`Simulation::run_until`] stopped at the
    /// drain point.
    pub fn flush_until(&mut self, until: SimTime) -> u64 {
        let start = self.queue.processed();
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.queue.processed() - start
    }

    /// Borrow the RNG (e.g. for ad-hoc perturbations in tests).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Sample a uniform value in `[0, n)` from the simulation RNG.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n.max(1))
    }
}

enum Work {
    Msg(crate::types::SimMsg),
    MachineTimer(crate::types::MachineTimer),
    CustomerTimer(crate::types::CustomerTimer),
    ManagerTimer(crate::types::ManagerTimer),
    LicenseTimer(crate::types::LicenseTimer),
    GangTimer(crate::types::GangTimer),
}
