//! Shared simulation types: node addressing, messages, jobs, and events.

use crate::engine::SimTime;
use matchmaker::protocol::Message;

/// Index of a node (agent) in the simulation.
pub type NodeId = usize;

/// A message traveling over the simulated network.
///
/// The matchmaking traffic is carried verbatim as the real protocol
/// [`Message`]s (so every wire path in the `matchmaker` crate is exercised
/// by the simulator); the two extra variants model the working relationship
/// *after* a claim is established, which the paper leaves to the entities
/// themselves.
#[derive(Debug, Clone)]
pub enum SimMsg {
    /// A matchmaking-protocol message.
    Proto(Message),
    /// Provider → customer: the running job finished.
    JobFinished {
        /// Job identifier.
        job_id: u64,
    },
    /// Provider → customer: the job was vacated before completion
    /// (owner reclaimed the workstation, or a higher-ranked customer
    /// preempted the claim). `done_ms` is work completed this attempt, at
    /// reference speed.
    Vacated {
        /// Job identifier.
        job_id: u64,
        /// Work completed during this attempt (reference-speed ms).
        done_ms: u64,
    },
    /// Provider → manager: usage accounting on claim release, feeding the
    /// fair-share priorities.
    UsageReport {
        /// The user whose job consumed the resource.
        user: String,
        /// Wall-clock ms of resource occupancy.
        used_ms: u64,
    },
    /// Manager → gang customer: every port of a gang request was matched
    /// (step 3 of Figure 3, once per port). The customer must now claim
    /// each port; the co-allocation only holds if every claim succeeds.
    GangNotify {
        /// The gang request's ad name.
        gang_name: String,
        /// Matched ports, in port order.
        ports: Vec<GangPortInfo>,
    },
}

/// Claiming details for one matched gang port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GangPortInfo {
    /// The granted provider's ad name.
    pub offer_name: String,
    /// Provider type (`"Machine"`, `"License"`, ...).
    pub offer_type: String,
    /// Provider contact address.
    pub contact: String,
    /// The provider's authorization ticket.
    pub ticket: matchmaker::ticket::Ticket,
}

/// Timer tags for machine (RA) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineTimer {
    /// Periodic advertisement refresh.
    Advertise,
    /// The workstation owner arrives or departs.
    OwnerToggle,
    /// The running job completes (valid only for the matching claim
    /// generation — stale timers from vacated claims are ignored).
    JobDone {
        /// Claim generation this timer belongs to.
        generation: u64,
    },
}

/// Timer tags for customer-agent (CA) nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomerTimer {
    /// Periodic advertisement of idle jobs.
    Advertise,
    /// The next job arrives in this agent's queue.
    JobArrival,
}

/// Timer tags for license-provider nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LicenseTimer {
    /// Periodic advertisement refresh.
    Advertise,
}

/// Timer tags for gang customer agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GangTimer {
    /// Periodic advertisement of idle gangs.
    Advertise,
    /// The next gang arrives in the queue.
    Arrival,
}

/// Timer tags for the pool-manager node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerTimer {
    /// Run a negotiation cycle.
    Negotiate,
    /// Sweep expired ads.
    Expire,
}

/// A simulation event.
#[derive(Debug, Clone)]
pub enum Event {
    /// Deliver a message to a node.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: SimMsg,
    },
    /// A machine timer fires.
    Machine {
        /// The machine node.
        node: NodeId,
        /// Which timer.
        tag: MachineTimer,
    },
    /// A customer-agent timer fires.
    Customer {
        /// The customer node.
        node: NodeId,
        /// Which timer.
        tag: CustomerTimer,
    },
    /// A manager timer fires.
    Manager {
        /// The manager node.
        node: NodeId,
        /// Which timer.
        tag: ManagerTimer,
    },
    /// A license-agent timer fires.
    License {
        /// The license node.
        node: NodeId,
        /// Which timer.
        tag: LicenseTimer,
    },
    /// A gang-customer timer fires.
    GangCustomer {
        /// The gang customer node.
        node: NodeId,
        /// Which timer.
        tag: GangTimer,
    },
}

/// Where a job currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting to be matched (advertised each cycle).
    Idle,
    /// A match notification arrived; a claim is in flight.
    Claiming {
        /// The provider being claimed.
        provider: String,
    },
    /// Running on a provider.
    Running {
        /// The provider executing the job.
        provider: String,
        /// When this attempt started.
        since: SimTime,
    },
    /// Finished.
    Completed {
        /// Completion time.
        at: SimTime,
    },
}

/// A job in a customer agent's queue.
#[derive(Debug, Clone)]
pub struct Job {
    /// Unique id across the simulation.
    pub id: u64,
    /// Ad name, e.g. `"alice.3"`.
    pub name: String,
    /// Owning user.
    pub owner: String,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Total service demand, in reference-speed milliseconds (the paper's
    /// machines advertise `Mips`; a machine with `Mips = 2 × reference`
    /// executes the job twice as fast).
    pub total_work_ms: u64,
    /// Work still to do (reference-speed ms).
    pub remaining_ms: u64,
    /// Memory requirement (MB), advertised and used in constraints.
    pub memory: i64,
    /// Whether the job checkpoints: a vacated checkpointing job keeps its
    /// progress, a non-checkpointing one restarts from zero (Condor's
    /// classic distinction).
    pub want_checkpoint: bool,
    /// Extra constraint source appended to the standard requirements
    /// (e.g. `other.Arch == "INTEL"`), or empty.
    pub extra_constraint: String,
    /// Rank expression source (customer preference over machines).
    pub rank: String,
    /// Current state.
    pub state: JobState,
    /// Number of times this job was vacated.
    pub vacations: u32,
    /// Work wasted by restarts (reference-speed ms).
    pub wasted_ms: u64,
    /// When the job first started running, if ever.
    pub first_start: Option<SimTime>,
}

impl Job {
    /// Render the job as a classad at time `now`.
    pub fn to_ad(&self) -> classad::ClassAd {
        let mut constraint = format!(
            "other.Type == \"Machine\" && other.Memory >= {}",
            self.memory
        );
        if !self.extra_constraint.is_empty() {
            constraint.push_str(" && ");
            constraint.push_str(&self.extra_constraint);
        }
        let src = format!(
            r#"[
                Name = "{name}";
                Type = "Job";
                JobId = {id};
                Owner = "{owner}";
                QDate = {qdate};
                Memory = {memory};
                RemainingWork = {remaining};
                WantCheckpoint = {ckpt};
                Rank = {rank};
                Constraint = {constraint};
            ]"#,
            name = self.name,
            id = self.id,
            owner = self.owner,
            qdate = self.submitted_at,
            memory = self.memory,
            remaining = self.remaining_ms,
            ckpt = if self.want_checkpoint { 1 } else { 0 },
            rank = if self.rank.is_empty() {
                "0"
            } else {
                &self.rank
            },
            constraint = constraint,
        );
        classad::parse_classad(&src)
            .unwrap_or_else(|e| panic!("internal: generated job ad failed to parse: {e}\n{src}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: 7,
            name: "alice.7".into(),
            owner: "alice".into(),
            submitted_at: 123,
            total_work_ms: 60_000,
            remaining_ms: 45_000,
            memory: 31,
            want_checkpoint: true,
            extra_constraint: r#"other.Arch == "INTEL""#.into(),
            rank: "other.Mips".into(),
            state: JobState::Idle,
            vacations: 0,
            wasted_ms: 0,
            first_start: None,
        }
    }

    #[test]
    fn job_ad_renders_and_carries_fields() {
        let ad = job().to_ad();
        assert_eq!(ad.get_string("Name"), Some("alice.7"));
        assert_eq!(ad.get_int("JobId"), Some(7));
        assert_eq!(ad.get_int("Memory"), Some(31));
        assert_eq!(ad.get_int("RemainingWork"), Some(45_000));
        assert!(ad.contains("Constraint"));
        assert!(ad.contains("Rank"));
    }

    #[test]
    fn job_ad_constraint_embeds_memory_and_extra() {
        let ad = job().to_ad();
        let c = ad.get("Constraint").unwrap().to_string();
        assert!(c.contains("other.Memory >= 31"), "{c}");
        assert!(c.contains("other.Arch == \"INTEL\""), "{c}");
    }

    #[test]
    fn job_ad_matches_suitable_machine() {
        let machine = classad::parse_classad(
            r#"[ Name = "m"; Type = "Machine"; Arch = "INTEL"; Memory = 64;
                 Mips = 100; Constraint = other.Type == "Job" ]"#,
        )
        .unwrap();
        let jad = job().to_ad();
        let policy = classad::EvalPolicy::default();
        let conv = classad::MatchConventions::default();
        assert!(classad::symmetric_match(&jad, &machine, &policy, &conv));
        assert_eq!(classad::rank_of(&jad, &machine, &policy, &conv), 100.0);
    }

    #[test]
    fn empty_rank_defaults_to_zero() {
        let mut j = job();
        j.rank = String::new();
        j.extra_constraint = String::new();
        let ad = j.to_ad();
        assert_eq!(ad.get_int("Rank"), Some(0));
    }
}
