//! The context handed to agent handlers: virtual clock, RNG stream,
//! message transmission through the network model, and timer scheduling.

use crate::engine::{EventQueue, SimTime};
use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::types::{Event, NodeId, SimMsg};
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// Mutable view of the simulation an agent gets while handling an event.
pub struct Ctx<'a> {
    /// Current virtual time (ms).
    pub now: SimTime,
    /// The simulation-wide RNG stream.
    pub rng: &'a mut SmallRng,
    /// Metrics sink.
    pub metrics: &'a mut Metrics,
    /// Contact-address → node directory (simulated name service).
    pub directory: &'a HashMap<String, NodeId>,
    /// The event queue.
    pub queue: &'a mut EventQueue<Event>,
    /// The network model applied to sends.
    pub network: &'a NetworkModel,
}

impl Ctx<'_> {
    /// Is this message carried best-effort (periodic soft-state traffic,
    /// subject to loss) or over a connection (claim/teardown RPCs)?
    ///
    /// The paper's architecture tolerates losing *advertisements and
    /// notifications* — soft state regenerates on the next period. The
    /// direct working relationship between matched entities (claim
    /// handshake, completion/vacate notices) runs over a connection, as in
    /// Condor; the network model applies latency to both but loss only to
    /// the best-effort class.
    fn best_effort(msg: &SimMsg) -> bool {
        matches!(
            msg,
            SimMsg::Proto(matchmaker::protocol::Message::Advertise(_))
                | SimMsg::Proto(matchmaker::protocol::Message::Notify(_))
        )
    }

    /// Send a message to a node through the network model. Returns `false`
    /// if the network dropped it.
    pub fn send_to_node(&mut self, to: NodeId, msg: SimMsg) -> bool {
        self.metrics.messages_sent += 1;
        let droppable = Self::best_effort(&msg);
        match self.network.sample(self.rng) {
            Some(latency) => {
                self.queue.schedule(latency, Event::Deliver { to, msg });
                true
            }
            None if droppable => {
                self.metrics.messages_dropped += 1;
                false
            }
            None => {
                // Reliable class: loss shows up as retransmission delay,
                // not as message loss.
                let latency = self.network.base_latency_ms + self.network.jitter_ms + 1;
                self.queue.schedule(latency * 3, Event::Deliver { to, msg });
                true
            }
        }
    }

    /// Send to a contact address (e.g. `"node0001.pool.example:9614"`).
    /// Unknown addresses count as drops.
    pub fn send_to_contact(&mut self, contact: &str, msg: SimMsg) -> bool {
        match self.directory.get(contact) {
            Some(&node) => self.send_to_node(node, msg),
            None => {
                self.metrics.messages_sent += 1;
                self.metrics.messages_dropped += 1;
                false
            }
        }
    }

    /// Schedule an event `delay` ms from now (timers are local and
    /// reliable — they do not traverse the network).
    pub fn schedule(&mut self, delay: SimTime, ev: Event) {
        self.queue.schedule(delay, ev);
    }
}
