//! A software-license provider agent: the simplest non-machine resource
//! in the pool, demonstrating the paper's claim that "a large number of
//! dissimilar resources (such as workstations, tape drives, network
//! links, application instances, and software licenses)" all fit the same
//! advertise/match/claim cycle.

use crate::ctx::Ctx;
use crate::types::{Event, LicenseTimer, NodeId, SimMsg};
use classad::ClassAd;
use matchmaker::claim::ClaimHandler;
use matchmaker::protocol::{Advertisement, ClaimRequest, EntityKind, Message};
use matchmaker::ticket::TicketIssuer;
use rand::Rng;

/// A single-seat license token served through matchmaking.
#[derive(Debug)]
pub struct LicenseAgent {
    /// This node's id.
    pub id: NodeId,
    /// The manager node to advertise to.
    pub manager: NodeId,
    /// License (ad) name, e.g. `"matlab-lic-0"`.
    pub name: String,
    /// Product string advertised.
    pub product: String,
    /// Contact address (directory key).
    pub contact: String,
    /// Advertisement refresh period, ms.
    pub advertise_period_ms: u64,
    claim: ClaimHandler,
    tickets: TicketIssuer,
}

impl LicenseAgent {
    /// Create a license agent.
    pub fn new(
        id: NodeId,
        manager: NodeId,
        name: &str,
        product: &str,
        advertise_period_ms: u64,
        ticket_seed: u64,
    ) -> Self {
        LicenseAgent {
            id,
            manager,
            name: name.to_string(),
            product: product.to_string(),
            contact: format!("{name}:27000"),
            advertise_period_ms,
            claim: ClaimHandler::new(),
            tickets: TicketIssuer::new(ticket_seed),
        }
    }

    /// Is the seat currently claimed?
    pub fn is_claimed(&self) -> bool {
        self.claim.is_claimed()
    }

    /// The license's current classad.
    pub fn build_ad(&self) -> ClassAd {
        let state = if self.is_claimed() {
            "Claimed"
        } else {
            "Unclaimed"
        };
        classad::parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "License";
                 Product = "{product}"; Seats = 1;
                 State = "{state}";
                 Constraint = other.Type == "Gang" || other.Type == "Job";
                 Rank = 0 ]"#,
            name = self.name,
            product = self.product,
        ))
        .unwrap()
    }

    /// Initialize: schedule the first advertisement (jittered).
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        let jitter = ctx.rng.gen_range(0..self.advertise_period_ms.max(1));
        ctx.schedule(
            jitter,
            Event::License {
                node: self.id,
                tag: LicenseTimer::Advertise,
            },
        );
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_>) {
        // A claimed seat stops advertising availability (single seat, no
        // preemption for licenses): let the old ad's lease lapse.
        if self.is_claimed() {
            return;
        }
        let ticket = self.tickets.issue();
        self.claim.set_ticket(ticket);
        let adv = Advertisement {
            kind: EntityKind::Provider,
            ad: self.build_ad(),
            contact: self.contact.clone(),
            ticket: Some(ticket),
            expires_at: ctx.now + self.advertise_period_ms * 2 + self.advertise_period_ms / 2,
        };
        ctx.send_to_node(self.manager, SimMsg::Proto(Message::Advertise(adv)));
    }

    /// Handle a timer event.
    pub fn on_timer(&mut self, tag: LicenseTimer, ctx: &mut Ctx<'_>) {
        match tag {
            LicenseTimer::Advertise => {
                self.advertise(ctx);
                ctx.schedule(
                    self.advertise_period_ms,
                    Event::License {
                        node: self.id,
                        tag: LicenseTimer::Advertise,
                    },
                );
            }
        }
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, msg: SimMsg, ctx: &mut Ctx<'_>) {
        match msg {
            SimMsg::Proto(Message::Claim(req)) => self.on_claim(req, ctx),
            SimMsg::Proto(Message::Release { .. }) => {
                self.claim.release();
                self.advertise(ctx);
            }
            _ => {}
        }
    }

    fn on_claim(&mut self, req: ClaimRequest, ctx: &mut Ctx<'_>) {
        let current = self.build_ad();
        let reply_to = req.customer_contact.clone();
        // Licenses never preempt: one seat, first valid claim wins.
        let (resp, _) = self.claim.handle_claim(&req, &current, ctx.now, |_| false);
        if resp.accepted {
            ctx.metrics.claims_accepted += 1;
        } else if let Some(why) = resp.rejection {
            ctx.metrics.claim_rejected(why);
        }
        ctx.send_to_contact(&reply_to, SimMsg::Proto(Message::ClaimReply(resp)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventQueue;
    use crate::metrics::Metrics;
    use crate::network::NetworkModel;
    use matchmaker::ticket::Ticket;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct H {
        queue: EventQueue<Event>,
        rng: SmallRng,
        metrics: Metrics,
        directory: HashMap<String, NodeId>,
        network: NetworkModel,
    }

    impl H {
        fn new() -> Self {
            let mut directory = HashMap::new();
            directory.insert("ca:1".to_string(), 9);
            H {
                queue: EventQueue::new(),
                rng: SmallRng::seed_from_u64(3),
                metrics: Metrics::default(),
                directory,
                network: NetworkModel::ideal(),
            }
        }
        fn ctx(&mut self) -> Ctx<'_> {
            Ctx {
                now: self.queue.now(),
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                directory: &self.directory,
                queue: &mut self.queue,
                network: &self.network,
            }
        }
    }

    fn claim_req(ticket: Ticket) -> ClaimRequest {
        ClaimRequest {
            ticket,
            customer_ad: classad::parse_classad(
                r#"[ Name = "g"; Type = "Gang"; Owner = "u"; Constraint = true ]"#,
            )
            .unwrap(),
            customer_contact: "ca:1".into(),
        }
    }

    #[test]
    fn advertises_until_claimed() {
        let mut h = H::new();
        let mut lic = LicenseAgent::new(1, 0, "matlab-lic-0", "matlab", 60_000, 4);
        {
            let mut ctx = h.ctx();
            lic.advertise(&mut ctx);
        }
        assert_eq!(h.metrics.messages_sent, 1);
        // Claim with the outstanding ticket.
        let ticket = {
            // Re-derive the ticket by replaying the issuer.
            let mut t = TicketIssuer::new(4);
            t.issue()
        };
        let mut ctx = h.ctx();
        lic.on_message(SimMsg::Proto(Message::Claim(claim_req(ticket))), &mut ctx);
        assert!(lic.is_claimed());
        // Claimed seat does not re-advertise.
        let sent_before = h.metrics.messages_sent;
        let mut ctx = h.ctx();
        lic.on_timer(LicenseTimer::Advertise, &mut ctx);
        // Only the timer reschedule, no Advertise message.
        assert_eq!(h.metrics.messages_sent, sent_before);
    }

    #[test]
    fn release_frees_the_seat() {
        let mut h = H::new();
        let mut lic = LicenseAgent::new(1, 0, "lic", "matlab", 60_000, 4);
        let ticket = TicketIssuer::new(4).issue();
        {
            let mut ctx = h.ctx();
            lic.advertise(&mut ctx);
            lic.on_message(SimMsg::Proto(Message::Claim(claim_req(ticket))), &mut ctx);
        }
        assert!(lic.is_claimed());
        let mut ctx = h.ctx();
        lic.on_message(SimMsg::Proto(Message::Release { ticket }), &mut ctx);
        assert!(!lic.is_claimed());
    }

    #[test]
    fn ad_matches_gang_envelopes() {
        let lic = LicenseAgent::new(1, 0, "lic", "matlab", 60_000, 4);
        let ad = lic.build_ad();
        let gang = classad::parse_classad(
            r#"[ Name = "g"; Type = "Gang"; Owner = "u"; Constraint = true ]"#,
        )
        .unwrap();
        assert!(classad::symmetric_match(
            &ad,
            &gang,
            &classad::EvalPolicy::default(),
            &classad::MatchConventions::default()
        ));
    }
}
