//! The Resource-owner Agent (RA): represents one workstation and enforces
//! its owner's usage policy (paper §4).
//!
//! "An RA periodically probes the resource to determine its current state,
//! and encapsulates this information in a classad along with the owner's
//! usage policy." The agent advertises, adjudicates claims with the real
//! [`ClaimHandler`] (ticket + constraint re-verification), runs jobs at a
//! speed proportional to its `Mips`, vacates them when the owner returns,
//! and — while claimed — keeps advertising with `State = "Claimed"` and a
//! `CurrentRank`, staying "interested in hearing from higher priority
//! customers".

use crate::ctx::Ctx;
use crate::engine::{SimTime, MS_PER_SEC};
use crate::types::{Event, MachineTimer, NodeId, SimMsg};
use crate::workload::MachineSpec;
use classad::{rank_of, ClassAd, EvalPolicy, MatchConventions, Value};
use matchmaker::claim::ClaimHandler;
use matchmaker::protocol::{Advertisement, ClaimRequest, EntityKind, Message};
use matchmaker::ticket::TicketIssuer;
use rand::Rng;

/// Reference speed: a machine with `Mips == 100` executes one
/// reference-millisecond of work per millisecond.
pub const REFERENCE_MIPS: f64 = 100.0;

/// The owner's usage policy, compiled into the advertised `Constraint` and
/// `Rank` expressions.
#[derive(Debug, Clone)]
pub enum MachinePolicy {
    /// Serve any job whenever the machine exists (dedicated node).
    Always,
    /// Serve jobs only when the owner has been away from the keyboard for
    /// at least this long (the opportunistic desktop policy).
    OwnerIdle {
        /// Required keyboard idle time, in seconds.
        min_keyboard_idle_s: i64,
    },
    /// The paper's Figure 1 policy: `untrusted` users never; `research`
    /// members always (rank 10); `friends` (rank 1) only when the machine
    /// is idle; everyone else only at night.
    Figure1 {
        /// Research-group members.
        research: Vec<String>,
        /// Friends.
        friends: Vec<String>,
        /// Banned users.
        untrusted: Vec<String>,
    },
}

/// Customers a compute node serves: plain jobs and gang (co-allocation)
/// envelopes, both of which carry the execution attributes machines need.
const COMPUTE_CUSTOMER: &str = "(other.Type == \"Job\" || other.Type == \"Gang\")";

impl MachinePolicy {
    fn list(src: &[String]) -> String {
        let items: Vec<String> = src.iter().map(|s| format!("\"{s}\"")).collect();
        format!("{{ {} }}", items.join(", "))
    }

    /// The `Constraint` expression source this policy advertises.
    pub fn constraint_src(&self) -> String {
        match self {
            MachinePolicy::Always => COMPUTE_CUSTOMER.to_string(),
            MachinePolicy::OwnerIdle {
                min_keyboard_idle_s,
            } => format!("{COMPUTE_CUSTOMER} && KeyboardIdle >= {min_keyboard_idle_s}"),
            MachinePolicy::Figure1 { .. } => {
                // Figure 1's policy in its prose-faithful reading: the
                // paper's text says untrusted users are *never* served, so
                // the untrusted test is conjoined outside the rank cascade.
                // (Read with standard `?:` precedence, the figure's own
                // expression would admit untrusted users at night — see
                // EXPERIMENTS.md E1.)
                "(other.Type == \"Job\" || other.Type == \"Gang\") && \
                 !member(other.Owner, Untrusted) && \
                 (Rank >= 10 ? true : \
                  Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 : \
                  DayTime < 8*60*60 || DayTime > 18*60*60)"
                    .to_string()
            }
        }
    }

    /// The `Rank` expression source this policy advertises.
    pub fn rank_src(&self) -> String {
        match self {
            MachinePolicy::Always | MachinePolicy::OwnerIdle { .. } => "0".to_string(),
            MachinePolicy::Figure1 { .. } => {
                "member(other.Owner, ResearchGroup) * 10 + member(other.Owner, Friends)".to_string()
            }
        }
    }

    /// Does the policy care about owner presence (i.e. vacate on return)?
    pub fn owner_sensitive(&self) -> bool {
        !matches!(self, MachinePolicy::Always)
    }
}

#[derive(Debug, Clone)]
struct RunningJob {
    job_id: u64,
    owner: String,
    customer_contact: String,
    /// Reference-speed work remaining when the claim started.
    work_at_start_ms: u64,
    started_at: SimTime,
    /// This machine's execution speed multiplier.
    speed: f64,
    /// The machine's rank of the claimant (advertised as `CurrentRank`).
    rank: f64,
}

/// A simulated workstation with its Resource-owner Agent.
#[derive(Debug)]
pub struct MachineAgent {
    /// This node's id.
    pub id: NodeId,
    /// The manager node to advertise to.
    pub manager: NodeId,
    /// Static machine characteristics.
    pub spec: MachineSpec,
    /// Contact address (directory key).
    pub contact: String,
    /// Owner policy.
    pub policy: MachinePolicy,
    /// Advertisement refresh period, ms.
    pub advertise_period_ms: u64,
    /// Push a fresh ad immediately on state changes (owner toggle, claim,
    /// release). Disabling leaves only the periodic refresh, which widens
    /// the staleness window — the knob behind experiment E9.
    pub push_on_change: bool,

    owner_present: bool,
    /// When the owner last left (keyboard idle anchor).
    owner_left_at: SimTime,
    claim: ClaimHandler,
    tickets: TicketIssuer,
    running: Option<RunningJob>,
    /// Invalidates stale `JobDone` timers after vacate/complete.
    generation: u64,
    /// When the current claim started (for busy-time accounting).
    claim_started: Option<SimTime>,
    eval_policy: EvalPolicy,
    conventions: MatchConventions,
}

impl MachineAgent {
    /// Create an agent for `spec`, initially with the owner away.
    pub fn new(
        id: NodeId,
        manager: NodeId,
        spec: MachineSpec,
        policy: MachinePolicy,
        advertise_period_ms: u64,
        ticket_seed: u64,
    ) -> Self {
        let contact = format!("{}:9614", spec.name);
        MachineAgent {
            id,
            manager,
            spec,
            contact,
            policy,
            advertise_period_ms,
            owner_present: false,
            owner_left_at: 0,
            push_on_change: true,
            claim: ClaimHandler::new(),
            tickets: TicketIssuer::new(ticket_seed),
            running: None,
            generation: 0,
            claim_started: None,
            eval_policy: EvalPolicy::default(),
            conventions: MatchConventions::default(),
        }
    }

    /// Is a job currently running here?
    pub fn is_busy(&self) -> bool {
        self.running.is_some()
    }

    /// Is the owner currently at the console?
    pub fn owner_present(&self) -> bool {
        self.owner_present
    }

    /// Keyboard idle time in **seconds** at `now`.
    pub fn keyboard_idle_s(&self, now: SimTime) -> i64 {
        if self.owner_present {
            0
        } else {
            (now.saturating_sub(self.owner_left_at) / MS_PER_SEC) as i64
        }
    }

    /// Build this machine's current classad.
    pub fn build_ad(&self, now: SimTime) -> ClassAd {
        let state = if self.running.is_some() {
            "Claimed"
        } else if self.owner_present {
            "Owner"
        } else {
            "Unclaimed"
        };
        let load = if self.running.is_some() { 1.0 } else { 0.02 };
        let day_time_s = (now / MS_PER_SEC) % 86_400;
        let mut src = format!(
            r#"[
                Name = "{name}";
                Type = "Machine";
                Arch = "{arch}";
                OpSys = "{opsys}";
                Mips = {mips};
                KFlops = {kflops};
                Memory = {memory};
                Disk = {disk};
                State = "{state}";
                Activity = "{activity}";
                LoadAvg = {load};
                KeyboardIdle = {kbd};
                DayTime = {day};
            "#,
            name = self.spec.name,
            arch = self.spec.arch,
            opsys = self.spec.opsys,
            mips = self.spec.mips,
            kflops = self.spec.mips * 210, // rough FLOPS model, cf. Fig. 1
            memory = self.spec.memory,
            disk = self.spec.disk,
            state = state,
            activity = if self.running.is_some() {
                "Busy"
            } else {
                "Idle"
            },
            load = load,
            kbd = self.keyboard_idle_s(now),
            day = day_time_s,
        );
        if let MachinePolicy::Figure1 {
            research,
            friends,
            untrusted,
        } = &self.policy
        {
            src.push_str(&format!(
                "ResearchGroup = {};\nFriends = {};\nUntrusted = {};\n",
                MachinePolicy::list(research),
                MachinePolicy::list(friends),
                MachinePolicy::list(untrusted),
            ));
        }
        if let Some(run) = &self.running {
            src.push_str(&format!(
                "RemoteOwner = \"{}\";\nCurrentRank = {:.6};\n",
                run.owner, run.rank
            ));
        }
        src.push_str(&format!(
            "Rank = {};\nConstraint = {};\n]",
            self.policy.rank_src(),
            self.policy.constraint_src()
        ));
        classad::parse_classad(&src)
            .unwrap_or_else(|e| panic!("internal: machine ad failed to parse: {e}\n{src}"))
    }

    /// Initialize: set owner presence and schedule the first timers.
    pub fn start(&mut self, initially_present: bool, ctx: &mut Ctx<'_>) {
        self.owner_present = initially_present;
        self.owner_left_at = 0;
        // Stagger first advertisements so the pool doesn't thunder.
        let jitter = ctx.rng.gen_range(0..self.advertise_period_ms.max(1));
        ctx.schedule(
            jitter,
            Event::Machine {
                node: self.id,
                tag: MachineTimer::Advertise,
            },
        );
        let toggle = self
            .spec
            .activity
            .sample_period(ctx.rng, self.owner_present, ctx.now);
        ctx.schedule(
            toggle,
            Event::Machine {
                node: self.id,
                tag: MachineTimer::OwnerToggle,
            },
        );
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_>) {
        let ad = self.build_ad(ctx.now);
        let ticket = self.tickets.issue();
        self.claim.set_ticket(ticket);
        let adv = Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: self.contact.clone(),
            ticket: Some(ticket),
            // Lease slightly over two periods: one missed refresh is
            // tolerated, two are not.
            expires_at: ctx.now + self.advertise_period_ms * 2 + self.advertise_period_ms / 2,
        };
        ctx.send_to_node(self.manager, SimMsg::Proto(Message::Advertise(adv)));
    }

    /// Handle a timer event.
    pub fn on_timer(&mut self, tag: MachineTimer, ctx: &mut Ctx<'_>) {
        match tag {
            MachineTimer::Advertise => {
                self.advertise(ctx);
                ctx.schedule(
                    self.advertise_period_ms,
                    Event::Machine {
                        node: self.id,
                        tag: MachineTimer::Advertise,
                    },
                );
            }
            MachineTimer::OwnerToggle => {
                self.owner_present = !self.owner_present;
                ctx.metrics.trace.record(
                    ctx.now,
                    crate::trace::TraceEvent::OwnerToggle {
                        machine: self.spec.name.clone(),
                        present: self.owner_present,
                    },
                );
                if self.owner_present {
                    if self.policy.owner_sensitive() && self.running.is_some() {
                        ctx.metrics.vacated_by_owner += 1;
                        self.vacate(ctx);
                    }
                } else {
                    self.owner_left_at = ctx.now;
                }
                if self.push_on_change {
                    self.advertise(ctx);
                }
                let next = self
                    .spec
                    .activity
                    .sample_period(ctx.rng, self.owner_present, ctx.now);
                ctx.schedule(
                    next,
                    Event::Machine {
                        node: self.id,
                        tag: MachineTimer::OwnerToggle,
                    },
                );
            }
            MachineTimer::JobDone { generation } => {
                if generation != self.generation {
                    return; // stale timer from a vacated claim
                }
                self.complete(ctx);
            }
        }
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, msg: SimMsg, ctx: &mut Ctx<'_>) {
        match msg {
            SimMsg::Proto(Message::Claim(req)) => self.on_claim(req, ctx),
            SimMsg::Proto(Message::Release { .. }) if self.running.is_some() => {
                // Customer relinquished: account the usage, free the slot.
                self.finish_claim(ctx, None);
                if self.push_on_change {
                    self.advertise(ctx);
                }
            }
            // RAs ignore other traffic (e.g. their own match notification —
            // in this model the customer drives the claim).
            _ => {}
        }
    }

    fn on_claim(&mut self, req: ClaimRequest, ctx: &mut Ctx<'_>) {
        let current_ad = self.build_ad(ctx.now);
        // Preemption policy: displace the current claimant only for a
        // request this machine ranks strictly higher.
        let current_rank = self.running.as_ref().map(|r| r.rank).unwrap_or(0.0);
        let eval_policy = EvalPolicy {
            now: Some((ctx.now / MS_PER_SEC) as i64),
            ..self.eval_policy.clone()
        };
        let conventions = self.conventions.clone();
        let new_rank = rank_of(&current_ad, &req.customer_ad, &eval_policy, &conventions);
        let preemptible = |_req: &ClaimRequest| new_rank > current_rank;

        let (resp, displaced) = self
            .claim
            .handle_claim(&req, &current_ad, ctx.now, preemptible);
        let accepted = resp.accepted;
        let reply_to = req.customer_contact.clone();

        if accepted {
            // If we displaced a running claim, vacate it first.
            if displaced.is_some() {
                ctx.metrics.preempted_by_rank += 1;
                self.vacate(ctx);
                // `vacate` resets claim state; re-establish the new claim.
                self.claim.set_ticket(req.ticket);
                let again = self
                    .claim
                    .handle_claim(&req, &current_ad, ctx.now, |_| true);
                debug_assert!(again.0.accepted);
            }
            // Extract execution parameters from the *current* customer ad.
            let job_id = req
                .customer_ad
                .eval_attr("JobId", &eval_policy)
                .as_int()
                .unwrap_or(0) as u64;
            let remaining = req
                .customer_ad
                .eval_attr("RemainingWork", &eval_policy)
                .as_int()
                .unwrap_or(0)
                .max(0) as u64;
            let owner = match req.customer_ad.eval_attr("Owner", &eval_policy) {
                Value::Str(s) => s.to_string(),
                _ => "<unknown>".to_string(),
            };
            let speed = self.spec.mips as f64 / REFERENCE_MIPS;
            let runtime_ms = ((remaining as f64) / speed.max(1e-9)).ceil() as u64;
            self.generation += 1;
            self.running = Some(RunningJob {
                job_id,
                owner,
                customer_contact: req.customer_contact.clone(),
                work_at_start_ms: remaining,
                started_at: ctx.now,
                speed,
                rank: new_rank,
            });
            self.claim_started = Some(ctx.now);
            ctx.schedule(
                runtime_ms.max(1),
                Event::Machine {
                    node: self.id,
                    tag: MachineTimer::JobDone {
                        generation: self.generation,
                    },
                },
            );
            ctx.metrics.claims_accepted += 1;
            ctx.metrics.trace.record(
                ctx.now,
                crate::trace::TraceEvent::ClaimAccepted {
                    provider: self.spec.name.clone(),
                    job: job_id,
                },
            );
        } else if let Some(why) = resp.rejection {
            ctx.metrics.claim_rejected(why);
            ctx.metrics.trace.record(
                ctx.now,
                crate::trace::TraceEvent::ClaimRejected {
                    provider: self.spec.name.clone(),
                    why: why.to_string(),
                },
            );
        }
        ctx.send_to_contact(&reply_to, SimMsg::Proto(Message::ClaimReply(resp)));
        if self.push_on_change {
            // State changed (or a customer needs fresh info): re-advertise.
            self.advertise(ctx);
        }
    }

    /// The running job finished: notify the customer and free the slot.
    fn complete(&mut self, ctx: &mut Ctx<'_>) {
        let Some(run) = self.running.clone() else {
            return;
        };
        ctx.metrics.trace.record(
            ctx.now,
            crate::trace::TraceEvent::JobFinished {
                provider: self.spec.name.clone(),
                job: run.job_id,
            },
        );
        ctx.send_to_contact(
            &run.customer_contact,
            SimMsg::JobFinished { job_id: run.job_id },
        );
        self.finish_claim(ctx, None);
        if self.push_on_change {
            self.advertise(ctx);
        }
    }

    /// Vacate the running job prematurely, reporting completed work.
    fn vacate(&mut self, ctx: &mut Ctx<'_>) {
        let Some(run) = self.running.clone() else {
            return;
        };
        ctx.metrics.trace.record(
            ctx.now,
            crate::trace::TraceEvent::Vacated {
                provider: self.spec.name.clone(),
                job: run.job_id,
                by_owner: self.owner_present,
            },
        );
        let elapsed = ctx.now.saturating_sub(run.started_at);
        let done_ms = (((elapsed as f64) * run.speed) as u64).min(run.work_at_start_ms);
        ctx.send_to_contact(
            &run.customer_contact,
            SimMsg::Vacated {
                job_id: run.job_id,
                done_ms,
            },
        );
        self.finish_claim(ctx, Some(done_ms));
    }

    /// Common claim-teardown: usage accounting and state reset.
    fn finish_claim(&mut self, ctx: &mut Ctx<'_>, _partial: Option<u64>) {
        if let (Some(run), Some(started)) = (self.running.take(), self.claim_started.take()) {
            let used = ctx.now.saturating_sub(started);
            ctx.metrics.busy_ms += used;
            ctx.send_to_node(
                self.manager,
                SimMsg::UsageReport {
                    user: run.owner,
                    used_ms: used,
                },
            );
        }
        self.generation += 1;
        self.claim.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::OwnerActivity;
    use classad::symmetric_match;

    fn spec() -> MachineSpec {
        MachineSpec {
            name: "leonardo.cs.wisc.edu".into(),
            arch: "INTEL".into(),
            opsys: "SOLARIS251".into(),
            mips: 104,
            memory: 64,
            disk: 323_496,
            activity: OwnerActivity::default(),
        }
    }

    fn agent(policy: MachinePolicy) -> MachineAgent {
        MachineAgent::new(0, 99, spec(), policy, 60_000, 7)
    }

    #[test]
    fn ad_reflects_state() {
        let a = agent(MachinePolicy::Always);
        let ad = a.build_ad(5_000);
        assert_eq!(ad.get_string("State"), Some("Unclaimed"));
        assert_eq!(ad.get_string("Arch"), Some("INTEL"));
        assert_eq!(ad.get_int("Mips"), Some(104));
        assert!(ad.contains("Constraint"));
        assert!(ad.contains("Rank"));
    }

    #[test]
    fn keyboard_idle_tracks_owner() {
        let mut a = agent(MachinePolicy::OwnerIdle {
            min_keyboard_idle_s: 900,
        });
        a.owner_present = true;
        assert_eq!(a.keyboard_idle_s(50_000), 0);
        a.owner_present = false;
        a.owner_left_at = 10_000;
        assert_eq!(a.keyboard_idle_s(50_000), 40);
    }

    #[test]
    fn owner_idle_policy_gates_matching() {
        let mut a = agent(MachinePolicy::OwnerIdle {
            min_keyboard_idle_s: 900,
        });
        let job = classad::parse_classad(
            r#"[ Name = "j"; Type = "Job"; Owner = "u";
                 Constraint = other.Type == "Machine" ]"#,
        )
        .unwrap();
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        // Recently departed owner: idle too short, no match.
        a.owner_present = false;
        a.owner_left_at = 0;
        let ad = a.build_ad(60_000); // 60s idle < 900s
        assert!(!symmetric_match(&ad, &job, &policy, &conv));
        // Long gone: matches.
        let ad = a.build_ad(2_000_000); // 2000s idle
        assert!(symmetric_match(&ad, &job, &policy, &conv));
    }

    #[test]
    fn figure1_policy_round_trips_through_agent() {
        let a = agent(MachinePolicy::Figure1 {
            research: vec![
                "raman".into(),
                "miron".into(),
                "solomon".into(),
                "jbasney".into(),
            ],
            friends: vec!["tannenba".into(), "wright".into()],
            untrusted: vec!["rival".into(), "riffraff".into()],
        });
        let ad = a.build_ad(36_107_000); // 10:01:47 into the day
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        let mk_job = |owner: &str| {
            classad::parse_classad(&format!(
                r#"[ Name = "j"; Type = "Job"; Owner = "{owner}";
                     Constraint = other.Type == "Machine" ]"#
            ))
            .unwrap()
        };
        // Research member always accepted.
        assert!(symmetric_match(&ad, &mk_job("raman"), &policy, &conv));
        // Untrusted never.
        assert!(!symmetric_match(&ad, &mk_job("riffraff"), &policy, &conv));
        // A friend when the machine is idle (keyboard idle since t=0).
        assert!(symmetric_match(&ad, &mk_job("tannenba"), &policy, &conv));
        // A stranger during the workday: rejected.
        assert!(!symmetric_match(&ad, &mk_job("stranger"), &policy, &conv));
        // Machine's rank of a research job is 10.
        assert_eq!(rank_of(&ad, &mk_job("raman"), &policy, &conv), 10.0);
        assert_eq!(rank_of(&ad, &mk_job("tannenba"), &policy, &conv), 1.0);
    }

    #[test]
    fn untrusted_rejected_even_at_night() {
        // The prose-faithful reading: untrusted users are never served,
        // including at night when strangers are.
        let a = agent(MachinePolicy::Figure1 {
            research: vec!["raman".into()],
            friends: vec![],
            untrusted: vec!["riffraff".into()],
        });
        let ad = a.build_ad(23 * 3_600 * 1000);
        let job = classad::parse_classad(
            r#"[ Name = "j"; Type = "Job"; Owner = "riffraff";
                 Constraint = other.Type == "Machine" ]"#,
        )
        .unwrap();
        assert!(!symmetric_match(
            &ad,
            &job,
            &EvalPolicy::default(),
            &MatchConventions::default()
        ));
    }

    #[test]
    fn stranger_accepted_at_night() {
        let a = agent(MachinePolicy::Figure1 {
            research: vec!["raman".into()],
            friends: vec![],
            untrusted: vec![],
        });
        // 23:00 into the day.
        let ad = a.build_ad(23 * 3_600 * 1000);
        let job = classad::parse_classad(
            r#"[ Name = "j"; Type = "Job"; Owner = "stranger";
                 Constraint = other.Type == "Machine" ]"#,
        )
        .unwrap();
        assert!(symmetric_match(
            &ad,
            &job,
            &EvalPolicy::default(),
            &MatchConventions::default()
        ));
    }

    #[test]
    fn claimed_ad_carries_preemption_info() {
        let mut a = agent(MachinePolicy::Always);
        a.running = Some(RunningJob {
            job_id: 1,
            owner: "alice".into(),
            customer_contact: "ca:1".into(),
            work_at_start_ms: 1000,
            started_at: 0,
            speed: 1.0,
            rank: 7.5,
        });
        let ad = a.build_ad(100);
        assert_eq!(ad.get_string("State"), Some("Claimed"));
        assert_eq!(ad.get_string("RemoteOwner"), Some("alice"));
        let policy = EvalPolicy::default();
        assert_eq!(ad.eval_attr("CurrentRank", &policy).as_f64(), Some(7.5));
    }
}
