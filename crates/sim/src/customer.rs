//! The Customer Agent (CA): maintains one user's queue of submitted jobs
//! (paper §4), advertises idle jobs as request classads, and runs the
//! customer side of the claiming protocol.

use crate::ctx::Ctx;

use crate::metrics::JobRecord;
use crate::types::{CustomerTimer, Event, Job, JobState, NodeId, SimMsg};
use crate::workload::JobArrival;
use matchmaker::protocol::{Advertisement, ClaimRequest, EntityKind, Message};
use std::collections::VecDeque;

/// A simulated Customer Agent holding one user's job queue.
#[derive(Debug)]
pub struct CustomerAgent {
    /// This node's id.
    pub id: NodeId,
    /// The manager node to advertise to.
    pub manager: NodeId,
    /// The user this agent represents.
    pub user: String,
    /// Contact address (directory key).
    pub contact: String,
    /// Advertisement period, ms.
    pub advertise_period_ms: u64,
    /// The job queue (all states).
    pub jobs: Vec<Job>,
    arrivals: VecDeque<JobArrival>,
    next_local_id: u64,
    /// Global id base so job ids are unique across agents.
    id_base: u64,
}

impl CustomerAgent {
    /// Create an agent for `user` with a pre-generated arrival sequence.
    pub fn new(
        id: NodeId,
        manager: NodeId,
        user: &str,
        arrivals: Vec<JobArrival>,
        advertise_period_ms: u64,
        id_base: u64,
    ) -> Self {
        CustomerAgent {
            id,
            manager,
            user: user.to_string(),
            contact: format!("{user}-ca:1"),
            advertise_period_ms,
            jobs: Vec::new(),
            arrivals: arrivals.into(),
            next_local_id: 0,
            id_base,
        }
    }

    /// Jobs not yet completed.
    pub fn incomplete_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| !matches!(j.state, JobState::Completed { .. }))
            .count()
    }

    /// All jobs done and no arrivals pending?
    pub fn is_drained(&self) -> bool {
        self.arrivals.is_empty() && self.incomplete_jobs() == 0
    }

    /// Initialize: schedule the first arrival and the advertising timer.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(first) = self.arrivals.front() {
            let delay = first.at.saturating_sub(ctx.now);
            ctx.schedule(
                delay,
                Event::Customer {
                    node: self.id,
                    tag: CustomerTimer::JobArrival,
                },
            );
        }
        ctx.schedule(
            self.advertise_period_ms,
            Event::Customer {
                node: self.id,
                tag: CustomerTimer::Advertise,
            },
        );
    }

    fn submit_due_arrivals(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(a) = self.arrivals.front() {
            if a.at > ctx.now {
                break;
            }
            let a = self.arrivals.pop_front().unwrap();
            let local = self.next_local_id;
            self.next_local_id += 1;
            let job = Job {
                id: self.id_base + local,
                name: format!("{}.{}", self.user, local),
                owner: self.user.clone(),
                submitted_at: ctx.now,
                total_work_ms: a.work_ms,
                remaining_ms: a.work_ms,
                memory: a.memory,
                want_checkpoint: a.want_checkpoint,
                extra_constraint: a.extra_constraint,
                rank: a.rank,
                state: JobState::Idle,
                vacations: 0,
                wasted_ms: 0,
                first_start: None,
            };
            ctx.metrics.jobs_submitted += 1;
            self.jobs.push(job);
        }
        // Advertise new work right away rather than waiting out the period.
        self.advertise_idle(ctx);
        if let Some(next) = self.arrivals.front() {
            let delay = next.at.saturating_sub(ctx.now).max(1);
            ctx.schedule(
                delay,
                Event::Customer {
                    node: self.id,
                    tag: CustomerTimer::JobArrival,
                },
            );
        }
    }

    fn advertise_idle(&mut self, ctx: &mut Ctx<'_>) {
        let lease = ctx.now + self.advertise_period_ms * 2 + self.advertise_period_ms / 2;
        let mut to_send = Vec::new();
        for job in &self.jobs {
            if matches!(job.state, JobState::Idle) {
                to_send.push(Advertisement {
                    kind: EntityKind::Customer,
                    ad: job.to_ad(),
                    contact: self.contact.clone(),
                    ticket: None,
                    expires_at: lease,
                });
            }
        }
        for adv in to_send {
            ctx.send_to_node(self.manager, SimMsg::Proto(Message::Advertise(adv)));
        }
    }

    /// Handle a timer event.
    pub fn on_timer(&mut self, tag: CustomerTimer, ctx: &mut Ctx<'_>) {
        match tag {
            CustomerTimer::JobArrival => self.submit_due_arrivals(ctx),
            CustomerTimer::Advertise => {
                self.advertise_idle(ctx);
                ctx.schedule(
                    self.advertise_period_ms,
                    Event::Customer {
                        node: self.id,
                        tag: CustomerTimer::Advertise,
                    },
                );
            }
        }
    }

    fn job_by_name_mut(&mut self, name: &str) -> Option<&mut Job> {
        self.jobs.iter_mut().find(|j| j.name == name)
    }

    fn job_by_id_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, msg: SimMsg, ctx: &mut Ctx<'_>) {
        match msg {
            SimMsg::Proto(Message::Notify(n)) => {
                // Which job was matched? The matchmaker sends back our ad.
                let Some(name) = n.own_ad.get_string("Name").map(str::to_string) else {
                    return;
                };
                let contact = n.peer_contact.clone();
                let Some(ticket) = n.ticket else { return };
                let Some(job) = self.job_by_name_mut(&name) else {
                    return;
                };
                if !matches!(job.state, JobState::Idle) {
                    return; // stale notification; job moved on
                }
                job.state = JobState::Claiming {
                    provider: contact.clone(),
                };
                // Claim with the job's *current* ad (weak consistency:
                // RemainingWork may differ from the advertised copy).
                let req = ClaimRequest {
                    ticket,
                    customer_ad: job.to_ad(),
                    customer_contact: self.contact.clone(),
                };
                ctx.metrics.claim_attempts += 1;
                ctx.send_to_contact(&contact, SimMsg::Proto(Message::Claim(req)));
            }
            SimMsg::Proto(Message::ClaimReply(resp)) => {
                // Find the job that was claiming. (One claim in flight per
                // provider contact; the reply carries the provider's ad.)
                let provider = resp
                    .provider_ad
                    .get_string("Name")
                    .unwrap_or_default()
                    .to_string();
                let accepted = resp.accepted;
                let now = ctx.now;
                // Contacts are `name:port`; match on the name component
                // exactly ("m1" must not claim-correlate with "m10:9614").
                let provider_prefix = format!("{provider}:");
                let job = self.jobs.iter_mut().find(|j| {
                    matches!(&j.state, JobState::Claiming { provider: p }
                             if *p == provider
                                || p.starts_with(&provider_prefix)
                                || provider.is_empty())
                });
                let Some(job) = job else { return };
                if accepted {
                    job.first_start.get_or_insert(now);
                    let provider_contact = match &job.state {
                        JobState::Claiming { provider } => provider.clone(),
                        _ => unreachable!(),
                    };
                    job.state = JobState::Running {
                        provider: provider_contact,
                        since: now,
                    };
                } else {
                    job.state = JobState::Idle;
                    if let Some(why) = resp.rejection {
                        // The claim handler already counted provider-side;
                        // count customer-observed failures distinctly.
                        let _ = why;
                    }
                }
            }
            SimMsg::JobFinished { job_id } => {
                let now = ctx.now;
                let Some(job) = self.job_by_id_mut(job_id) else {
                    return;
                };
                job.remaining_ms = 0;
                job.state = JobState::Completed { at: now };
                let rec = JobRecord {
                    id: job.id,
                    owner: job.owner.clone(),
                    submitted_at: job.submitted_at,
                    first_start: job.first_start,
                    completed_at: now,
                    work_ms: job.total_work_ms,
                    vacations: job.vacations,
                    wasted_ms: job.wasted_ms,
                };
                ctx.metrics.job_completed(rec);
            }
            SimMsg::Vacated { job_id, done_ms } => {
                let Some(job) = self.job_by_id_mut(job_id) else {
                    return;
                };
                job.vacations += 1;
                if job.want_checkpoint {
                    // Progress is preserved.
                    job.remaining_ms = job.remaining_ms.saturating_sub(done_ms);
                    if job.remaining_ms == 0 {
                        // Edge: vacated exactly at completion; count as a
                        // restartable sliver rather than completing here.
                        job.remaining_ms = 1;
                    }
                } else {
                    // Restart from scratch: everything done is wasted.
                    job.wasted_ms += done_ms;
                    job.remaining_ms = job.total_work_ms;
                }
                job.state = JobState::Idle;
                // Seek a new machine right away.
                self.advertise_idle(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventQueue;
    use crate::metrics::Metrics;
    use crate::network::NetworkModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct Harness {
        queue: EventQueue<Event>,
        rng: SmallRng,
        metrics: Metrics,
        directory: HashMap<String, NodeId>,
        network: NetworkModel,
    }

    impl Harness {
        fn new() -> Self {
            let mut directory = HashMap::new();
            directory.insert("m:9614".to_string(), 5);
            Harness {
                queue: EventQueue::new(),
                rng: SmallRng::seed_from_u64(1),
                metrics: Metrics::default(),
                directory,
                network: NetworkModel::ideal(),
            }
        }

        fn ctx(&mut self) -> Ctx<'_> {
            Ctx {
                now: self.queue.now(),
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                directory: &self.directory,
                queue: &mut self.queue,
                network: &self.network,
            }
        }
    }

    fn arrival(work: u64) -> JobArrival {
        JobArrival {
            at: 0,
            work_ms: work,
            memory: 31,
            extra_constraint: String::new(),
            want_checkpoint: true,
            rank: "other.Mips".into(),
        }
    }

    fn agent_with_one_job(h: &mut Harness) -> CustomerAgent {
        let mut ca = CustomerAgent::new(1, 0, "alice", vec![arrival(10_000)], 60_000, 1000);
        let mut ctx = h.ctx();
        ca.start(&mut ctx);
        ca.on_timer(CustomerTimer::JobArrival, &mut ctx);
        ca
    }

    fn notify_for(ca: &CustomerAgent) -> SimMsg {
        SimMsg::Proto(Message::Notify(matchmaker::protocol::MatchNotification {
            own_ad: ca.jobs[0].to_ad(),
            peer_ad: classad::parse_classad(r#"[ Name = "m"; Type = "Machine" ]"#).unwrap(),
            peer_contact: "m:9614".into(),
            ticket: Some(matchmaker::ticket::Ticket::from_raw(9)),
        }))
    }

    #[test]
    fn arrival_submits_and_advertises() {
        let mut h = Harness::new();
        let ca = agent_with_one_job(&mut h);
        assert_eq!(ca.jobs.len(), 1);
        assert_eq!(ca.jobs[0].name, "alice.0");
        assert_eq!(h.metrics.jobs_submitted, 1);
        assert!(h.metrics.messages_sent >= 1, "idle job must be advertised");
        assert!(!ca.is_drained());
    }

    #[test]
    fn notification_triggers_claim() {
        let mut h = Harness::new();
        let mut ca = agent_with_one_job(&mut h);
        let n = notify_for(&ca);
        let mut ctx = h.ctx();
        ca.on_message(n, &mut ctx);
        assert!(matches!(ca.jobs[0].state, JobState::Claiming { .. }));
        assert_eq!(h.metrics.claim_attempts, 1);
    }

    #[test]
    fn stale_notification_ignored_when_running() {
        let mut h = Harness::new();
        let mut ca = agent_with_one_job(&mut h);
        ca.jobs[0].state = JobState::Running {
            provider: "x".into(),
            since: 0,
        };
        let n = notify_for(&ca);
        let mut ctx = h.ctx();
        ca.on_message(n, &mut ctx);
        assert_eq!(h.metrics.claim_attempts, 0);
        assert!(matches!(ca.jobs[0].state, JobState::Running { .. }));
    }

    #[test]
    fn accepted_reply_starts_job() {
        let mut h = Harness::new();
        let mut ca = agent_with_one_job(&mut h);
        ca.jobs[0].state = JobState::Claiming {
            provider: "m:9614".into(),
        };
        let reply = SimMsg::Proto(Message::ClaimReply(matchmaker::protocol::ClaimResponse {
            accepted: true,
            rejection: None,
            provider_ad: classad::parse_classad(r#"[ Name = "m" ]"#).unwrap(),
        }));
        let mut ctx = h.ctx();
        ca.on_message(reply, &mut ctx);
        assert!(matches!(ca.jobs[0].state, JobState::Running { .. }));
        assert!(ca.jobs[0].first_start.is_some());
    }

    #[test]
    fn rejected_reply_returns_job_to_idle() {
        let mut h = Harness::new();
        let mut ca = agent_with_one_job(&mut h);
        ca.jobs[0].state = JobState::Claiming {
            provider: "m:9614".into(),
        };
        let reply = SimMsg::Proto(Message::ClaimReply(matchmaker::protocol::ClaimResponse {
            accepted: false,
            rejection: Some(matchmaker::protocol::ClaimRejection::ConstraintFailed),
            provider_ad: classad::parse_classad(r#"[ Name = "m" ]"#).unwrap(),
        }));
        let mut ctx = h.ctx();
        ca.on_message(reply, &mut ctx);
        assert_eq!(ca.jobs[0].state, JobState::Idle);
    }

    #[test]
    fn claim_reply_correlates_on_exact_provider_name() {
        // Two claims in flight: to m1 and to m10. A reply from "m1" must
        // resolve the m1 claim, not prefix-match m10's contact.
        let mut h = Harness::new();
        let mut ca = CustomerAgent::new(
            1,
            0,
            "alice",
            vec![arrival(10_000), arrival(10_000)],
            60_000,
            1000,
        );
        {
            let mut ctx = h.ctx();
            ca.start(&mut ctx);
            ca.on_timer(CustomerTimer::JobArrival, &mut ctx);
        }
        ca.jobs[0].state = JobState::Claiming {
            provider: "m10:9614".into(),
        };
        ca.jobs[1].state = JobState::Claiming {
            provider: "m1:9614".into(),
        };
        let reply = SimMsg::Proto(Message::ClaimReply(matchmaker::protocol::ClaimResponse {
            accepted: true,
            rejection: None,
            provider_ad: classad::parse_classad(r#"[ Name = "m1"; Type = "Machine" ]"#).unwrap(),
        }));
        let mut ctx = h.ctx();
        ca.on_message(reply, &mut ctx);
        assert!(
            matches!(ca.jobs[1].state, JobState::Running { .. }),
            "m1's reply must start the m1 job"
        );
        assert!(
            matches!(ca.jobs[0].state, JobState::Claiming { .. }),
            "m10's claim is still pending"
        );
    }

    #[test]
    fn finish_records_completion() {
        let mut h = Harness::new();
        let mut ca = agent_with_one_job(&mut h);
        let id = ca.jobs[0].id;
        ca.jobs[0].state = JobState::Running {
            provider: "m:9614".into(),
            since: 0,
        };
        ca.jobs[0].first_start = Some(0);
        let mut ctx = h.ctx();
        ca.on_message(SimMsg::JobFinished { job_id: id }, &mut ctx);
        assert!(matches!(ca.jobs[0].state, JobState::Completed { .. }));
        assert_eq!(h.metrics.jobs_completed, 1);
        assert!(ca.is_drained());
    }

    #[test]
    fn vacate_with_checkpoint_keeps_progress() {
        let mut h = Harness::new();
        let mut ca = agent_with_one_job(&mut h);
        let id = ca.jobs[0].id;
        ca.jobs[0].state = JobState::Running {
            provider: "m:9614".into(),
            since: 0,
        };
        let mut ctx = h.ctx();
        ca.on_message(
            SimMsg::Vacated {
                job_id: id,
                done_ms: 4_000,
            },
            &mut ctx,
        );
        assert_eq!(ca.jobs[0].remaining_ms, 6_000);
        assert_eq!(ca.jobs[0].wasted_ms, 0);
        assert_eq!(ca.jobs[0].vacations, 1);
        assert_eq!(ca.jobs[0].state, JobState::Idle);
    }

    #[test]
    fn vacate_without_checkpoint_restarts() {
        let mut h = Harness::new();
        let mut ca = CustomerAgent::new(
            1,
            0,
            "bob",
            vec![JobArrival {
                want_checkpoint: false,
                ..arrival(10_000)
            }],
            60_000,
            0,
        );
        {
            let mut ctx = h.ctx();
            ca.start(&mut ctx);
            ca.on_timer(CustomerTimer::JobArrival, &mut ctx);
        }
        let id = ca.jobs[0].id;
        ca.jobs[0].state = JobState::Running {
            provider: "m:9614".into(),
            since: 0,
        };
        let mut ctx = h.ctx();
        ca.on_message(
            SimMsg::Vacated {
                job_id: id,
                done_ms: 4_000,
            },
            &mut ctx,
        );
        assert_eq!(ca.jobs[0].remaining_ms, 10_000, "restart from scratch");
        assert_eq!(ca.jobs[0].wasted_ms, 4_000);
    }

    #[test]
    fn job_ids_offset_by_base() {
        let mut h = Harness::new();
        let ca = agent_with_one_job(&mut h);
        assert_eq!(ca.jobs[0].id, 1000);
    }
}
