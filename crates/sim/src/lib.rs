//! # condor-sim — a discrete-event simulator of a Condor-like HTC pool
//!
//! The paper's evaluation substrate was the production Condor pool at
//! UW–Madison. This crate substitutes a deterministic discrete-event
//! simulation whose agents speak the *real* protocol from the
//! `matchmaker` crate: Resource-owner Agents advertise machine classads
//! (with owner policies up to and including the paper's Figure 1 policy,
//! verbatim), Customer Agents advertise job classads, the pool manager
//! runs real negotiation cycles, and claims are adjudicated by the real
//! ticket-and-reverify claiming protocol. Nothing in `matchmaker` is
//! mocked; the simulation only supplies time, network, and workload.
//!
//! ```
//! use condor_sim::scenario::{PolicyConfig, Scenario};
//! use condor_sim::workload::{FleetSpec, UserSpec};
//!
//! let scenario = Scenario {
//!     seed: 7,
//!     fleet: FleetSpec { count: 4, ..Default::default() },
//!     policy: PolicyConfig::Always,
//!     users: vec![UserSpec {
//!         arch_constraint_prob: 0.0,
//!         ..UserSpec::standard("alice", 3)
//!     }],
//!     duration_ms: 3_600_000,
//!     ..Default::default()
//! };
//! let (summary, _sim) = scenario.run();
//! assert_eq!(summary.jobs_completed, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod ctx;
pub mod customer;
pub mod engine;
pub mod gangca;
pub mod license;
pub mod machine;
pub mod manager;
pub mod metrics;
pub mod network;
pub mod scenario;
pub mod sim;
pub mod trace;
pub mod types;
pub mod workload;

pub use config::{scenario_from_ad, scenario_from_str, scenario_to_ad, ConfigError};
pub use engine::{EventQueue, SimTime, MS_PER_SEC};
pub use gangca::{GangCustomerAgent, GangJob, GangState};
pub use license::LicenseAgent;
pub use machine::{MachineAgent, MachinePolicy, REFERENCE_MIPS};
pub use metrics::{JobRecord, Metrics, Summary};
pub use network::NetworkModel;
pub use scenario::{NegotiatorSettings, PolicyConfig, Scenario};
pub use sim::{Node, Simulation};
pub use trace::{TraceEvent, TraceLog, TraceRecord};
pub use types::{Event, Job, JobState, NodeId, SimMsg};
pub use workload::{FleetSpec, JobArrival, MachineSpec, MachineTemplate, OwnerActivity, UserSpec};
