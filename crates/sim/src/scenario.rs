//! Scenario configuration: a serde-serializable description of a whole
//! experiment, and the factory that turns it into a running [`Simulation`].

use crate::customer::CustomerAgent;
use crate::engine::SimTime;
use crate::gangca::GangCustomerAgent;
use crate::license::LicenseAgent;
use crate::machine::{MachineAgent, MachinePolicy};
use crate::manager::ManagerNode;
use crate::metrics::Summary;
use crate::network::NetworkModel;
use crate::sim::Simulation;
use crate::workload::{FleetSpec, UserSpec};
use matchmaker::negotiate::NegotiatorConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Serializable machine-policy configuration (mirrors
/// [`MachinePolicy`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// Dedicated nodes: always willing.
    Always,
    /// Desktop harvesting: owner must be away this many seconds.
    OwnerIdle {
        /// Minimum keyboard idle, seconds.
        min_keyboard_idle_s: i64,
    },
    /// The paper's Figure 1 policy.
    Figure1 {
        /// Research-group members.
        research: Vec<String>,
        /// Friends.
        friends: Vec<String>,
        /// Banned users.
        untrusted: Vec<String>,
    },
}

impl PolicyConfig {
    /// Convert to the runtime policy.
    pub fn to_policy(&self) -> MachinePolicy {
        match self {
            PolicyConfig::Always => MachinePolicy::Always,
            PolicyConfig::OwnerIdle {
                min_keyboard_idle_s,
            } => MachinePolicy::OwnerIdle {
                min_keyboard_idle_s: *min_keyboard_idle_s,
            },
            PolicyConfig::Figure1 {
                research,
                friends,
                untrusted,
            } => MachinePolicy::Figure1 {
                research: research.clone(),
                friends: friends.clone(),
                untrusted: untrusted.clone(),
            },
        }
    }
}

/// Negotiator tunables in serializable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NegotiatorSettings {
    /// Match-scan worker threads.
    pub threads: usize,
    /// Allow priority preemption of claimed resources.
    pub preemption: bool,
    /// Advance usage charge per match (resource-seconds).
    pub charge_per_match: f64,
    /// Usage-decay half-life for fair-share priorities, in **ms** (the
    /// simulator clocks the tracker in milliseconds). `None` keeps the
    /// tracker default.
    pub priority_halflife_ms: Option<f64>,
    /// Autocluster requests and share per-cluster match lists within a
    /// cycle (the negotiation fast path; `false` forces full scans).
    pub autocluster: bool,
}

impl Default for NegotiatorSettings {
    fn default() -> Self {
        NegotiatorSettings {
            threads: 1,
            preemption: true,
            charge_per_match: 0.0,
            priority_halflife_ms: None,
            autocluster: true,
        }
    }
}

/// One user's stream of gang (co-allocation) requests: each gang needs a
/// compute node plus a license seat, atomically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GangLoadSpec {
    /// The submitting user.
    pub user: String,
    /// Number of gangs.
    pub count: usize,
    /// Mean interarrival time, ms (0 = all at t=0).
    pub mean_interarrival_ms: f64,
    /// Mean service demand (reference-speed ms).
    pub mean_duration_ms: f64,
    /// Compute-port memory requirement, MB.
    pub memory: i64,
}

/// A complete experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Machine fleet.
    pub fleet: FleetSpec,
    /// Machine owner policy.
    pub policy: PolicyConfig,
    /// Job streams, one per user.
    pub users: Vec<UserSpec>,
    /// Gang (co-allocation) request streams.
    pub gang_users: Vec<GangLoadSpec>,
    /// Number of single-seat license providers in the pool.
    pub licenses: usize,
    /// Product string the licenses (and gang requests) use.
    pub license_product: String,
    /// Network model.
    pub network: NetworkModel,
    /// RA/CA advertisement refresh period, ms.
    pub advertise_period_ms: u64,
    /// Pool-manager negotiation cycle period, ms.
    pub negotiation_period_ms: u64,
    /// Machines push fresh ads immediately on state changes (default
    /// `true`); `false` leaves only periodic refresh, widening staleness.
    pub push_ads_on_change: bool,
    /// Negotiator settings.
    pub negotiator: NegotiatorSettings,
    /// Simulated duration budget, ms.
    pub duration_ms: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            seed: 0xC011D0B,
            fleet: FleetSpec::default(),
            policy: PolicyConfig::OwnerIdle {
                min_keyboard_idle_s: 300,
            },
            users: vec![
                UserSpec::standard("alice", 20),
                UserSpec::standard("bob", 20),
            ],
            gang_users: Vec::new(),
            licenses: 0,
            license_product: "matlab".to_string(),
            network: NetworkModel::default(),
            advertise_period_ms: 60_000,
            negotiation_period_ms: 60_000,
            push_ads_on_change: true,
            negotiator: NegotiatorSettings::default(),
            duration_ms: 8 * 3_600 * 1000,
        }
    }
}

impl Scenario {
    /// Total jobs the scenario will submit (plain + gang).
    pub fn total_jobs(&self) -> u64 {
        self.users.iter().map(|u| u.job_count as u64).sum::<u64>()
            + self.gang_users.iter().map(|g| g.count as u64).sum::<u64>()
    }

    /// Build the simulation (deterministic in `self.seed`).
    pub fn build(&self) -> Simulation {
        let mut seed_rng = SmallRng::seed_from_u64(self.seed);
        let fleet = self.fleet.generate(&mut seed_rng);
        let policy = self.policy.to_policy();

        let mut manager = ManagerNode::new(
            0,
            NegotiatorConfig {
                threads: self.negotiator.threads,
                preemption: self.negotiator.preemption,
                preemption_rank_margin: 0.0,
                charge_per_match: self.negotiator.charge_per_match,
                autocluster: self.negotiator.autocluster,
                attribution: false,
                ..NegotiatorConfig::default()
            },
            self.negotiation_period_ms,
        );
        if let Some(halflife) = self.negotiator.priority_halflife_ms {
            manager.negotiator.priorities =
                matchmaker::priority::PriorityTracker::new(matchmaker::priority::PriorityConfig {
                    halflife,
                    ..Default::default()
                });
        }

        let mut machines = Vec::with_capacity(fleet.len());
        let mut initially_present = Vec::with_capacity(fleet.len());
        for (i, spec) in fleet.into_iter().enumerate() {
            initially_present
                .push(seed_rng.gen_bool(spec.activity.initially_present_prob.clamp(0.0, 1.0)));
            let mut agent = MachineAgent::new(
                1 + i,
                0,
                spec,
                policy.clone(),
                self.advertise_period_ms,
                seed_rng.gen(),
            );
            agent.push_on_change = self.push_ads_on_change;
            machines.push(agent);
        }

        let mut customers = Vec::with_capacity(self.users.len());
        let base_id = 1 + machines.len();
        for (i, user) in self.users.iter().enumerate() {
            let arrivals = user.generate(&mut seed_rng);
            customers.push(CustomerAgent::new(
                base_id + i,
                0,
                &user.name,
                arrivals,
                self.advertise_period_ms,
                (i as u64) << 32,
            ));
        }

        let mut licenses = Vec::with_capacity(self.licenses);
        let lic_base = base_id + customers.len();
        for i in 0..self.licenses {
            licenses.push(LicenseAgent::new(
                lic_base + i,
                0,
                &format!("{}-lic-{i}", self.license_product),
                &self.license_product,
                self.advertise_period_ms,
                seed_rng.gen(),
            ));
        }

        let mut gang_customers = Vec::with_capacity(self.gang_users.len());
        let gang_base = lic_base + licenses.len();
        for (i, spec) in self.gang_users.iter().enumerate() {
            let mut at: SimTime = 0;
            let arrivals: Vec<(SimTime, u64, i64)> = (0..spec.count)
                .map(|_| {
                    if spec.mean_interarrival_ms > 0.0 {
                        at = at.saturating_add(crate::workload::sample_exp(
                            &mut seed_rng,
                            spec.mean_interarrival_ms,
                        ));
                    }
                    let work =
                        crate::workload::sample_exp(&mut seed_rng, spec.mean_duration_ms).max(1000);
                    (at, work, spec.memory)
                })
                .collect();
            gang_customers.push(GangCustomerAgent::new(
                gang_base + i,
                0,
                &spec.user,
                &self.license_product,
                arrivals,
                self.advertise_period_ms,
                0x4000_0000_0000_0000u64 + ((i as u64) << 32),
            ));
        }

        Simulation::assemble_full(
            manager,
            machines,
            customers,
            licenses,
            gang_customers,
            self.network.clone(),
            SmallRng::seed_from_u64(self.seed ^ 0x5EED_F00D),
            self.total_jobs(),
            initially_present,
        )
    }

    /// Build, run to the duration budget (or drain), and summarize.
    pub fn run(&self) -> (Summary, Simulation) {
        let mut sim = self.build();
        sim.run_until(self.duration_ms);
        let elapsed: SimTime = self.duration_ms.min(sim.now().max(1));
        let summary = sim.metrics().summary(elapsed, self.fleet.count);
        (summary, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> Scenario {
        Scenario {
            seed: 42,
            fleet: FleetSpec {
                count: 8,
                ..Default::default()
            },
            policy: PolicyConfig::Always,
            users: vec![UserSpec {
                mean_interarrival_ms: 10_000.0,
                mean_duration_ms: 120_000.0,
                arch_constraint_prob: 0.0,
                ..UserSpec::standard("alice", 10)
            }],
            network: NetworkModel::default(),
            advertise_period_ms: 30_000,
            negotiation_period_ms: 30_000,
            push_ads_on_change: true,
            negotiator: NegotiatorSettings::default(),
            duration_ms: 4 * 3_600 * 1000,
            ..Default::default()
        }
    }

    #[test]
    fn scenario_runs_and_completes_jobs() {
        let (summary, sim) = small_scenario().run();
        assert_eq!(summary.jobs_submitted, 10);
        assert_eq!(
            summary.jobs_completed, 10,
            "all jobs should finish: {summary:?}"
        );
        assert!(sim.drained());
        assert!(summary.mean_turnaround_ms > 0.0);
        assert!(sim.metrics().matches >= 10);
        assert!(sim.metrics().cycles > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = small_scenario();
        let (a, sim_a) = s.run();
        let (b, sim_b) = s.run();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(sim_a.metrics().matches, sim_b.metrics().matches);
        assert_eq!(sim_a.metrics().messages_sent, sim_b.metrics().messages_sent);
        assert_eq!(sim_a.events_processed(), sim_b.events_processed());
        assert!((a.mean_turnaround_ms - b.mean_turnaround_ms).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = small_scenario();
        let mut s2 = small_scenario();
        s2.seed = 43;
        let (_, sim1) = s1.run();
        let (_, sim2) = s2.run();
        assert_ne!(sim1.events_processed(), sim2.events_processed());
    }

    #[test]
    fn owner_idle_policy_slows_throughput() {
        // With owners frequently present and a 15-minute idle requirement,
        // fewer machine-hours are available than with dedicated nodes.
        let dedicated = small_scenario();
        let mut harvested = small_scenario();
        harvested.policy = PolicyConfig::OwnerIdle {
            min_keyboard_idle_s: 900,
        };
        harvested.fleet.activity.mean_active_ms = 30.0 * 60_000.0;
        harvested.fleet.activity.mean_away_ms = 30.0 * 60_000.0;
        let (a, _) = dedicated.run();
        let (b, _) = harvested.run();
        assert!(
            a.mean_turnaround_ms <= b.mean_turnaround_ms,
            "dedicated {} vs harvested {}",
            a.mean_turnaround_ms,
            b.mean_turnaround_ms
        );
    }

    #[test]
    fn scenario_serde_roundtrip() {
        // Scenarios are configuration files; they must survive
        // serialization.
        let s = small_scenario();
        let json = serde_json_like(&s);
        assert!(json.contains("fleet"));
    }

    /// Minimal smoke check that Serialize derives exist (serde_json is not
    /// an allowed dependency, so render through the Debug of the
    /// serde-ready struct).
    fn serde_json_like(s: &Scenario) -> String {
        format!("{s:?}")
    }

    #[test]
    fn lossy_network_still_drains() {
        let mut s = small_scenario();
        s.network = NetworkModel {
            base_latency_ms: 5,
            jitter_ms: 10,
            drop_prob: 0.05,
        };
        s.duration_ms = 8 * 3_600 * 1000;
        let (summary, sim) = s.run();
        assert!(sim.metrics().messages_dropped > 0, "drops should occur");
        assert_eq!(summary.jobs_completed, 10, "retries must recover losses");
    }
}
