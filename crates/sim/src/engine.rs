//! The discrete-event engine: a virtual clock and an ordered event queue.
//!
//! Determinism contract: given the same scenario and seed, a simulation
//! replays identically. The queue breaks time ties by insertion sequence,
//! and all randomness flows from seeded [`rand::rngs::SmallRng`] streams.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time, in **milliseconds** since simulation start.
pub type SimTime = u64;

/// Milliseconds per second, for converting to the protocol's second-based
/// quantities.
pub const MS_PER_SEC: u64 = 1000;

/// An event scheduled on the queue.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// An event queue with a virtual clock.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            processed: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// A fresh queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `payload` to fire `delay` ms from now.
    pub fn schedule(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now.saturating_add(delay), payload);
    }

    /// Schedule `payload` at an absolute time (clamped to `now` — events
    /// cannot fire in the past).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Pop the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.payload))
    }

    /// Peek at the next event time without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.schedule(10, 2);
        q.schedule(10, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(50, ());
        q.schedule(10, ());
        assert_eq!(q.now(), 0);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 10);
        assert_eq!(q.now(), 10);
        // Scheduling "in the past" clamps to now.
        q.schedule_at(5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 10);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 50);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "first");
        q.schedule(5, "second"); // at t=15
        q.schedule(2, "third"); // at t=12
        assert_eq!(q.peek_time(), Some(12));
        assert_eq!(q.pop().unwrap(), (12, "third"));
        assert_eq!(q.pop().unwrap(), (15, "second"));
        assert!(q.pop().is_none());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn saturating_far_future() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, ());
        q.schedule(1, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::MAX);
    }
}
