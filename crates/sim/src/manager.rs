//! The pool manager node: hosts the matchmaker (ad store + negotiator) and
//! periodically runs negotiation cycles (paper §4).
//!
//! After each cycle the manager sends both parties their match
//! notifications (step 3 of Figure 3) and forgets the match — claiming is
//! entirely between the matched entities. Matched ads are withdrawn from
//! the store; the parties re-advertise with their post-match state, which
//! is how the store converges back to reality.

use crate::ctx::Ctx;
use crate::engine::MS_PER_SEC;
use crate::types::{Event, GangPortInfo, ManagerTimer, NodeId, SimMsg};
use classad::{EvalPolicy, Value};
use gangmatch::coalloc::GangSolver;
use gangmatch::service::negotiate_gangs;
use matchmaker::admanager::AdStore;
use matchmaker::negotiate::{Negotiator, NegotiatorConfig};
use matchmaker::protocol::{AdvertisingProtocol, EntityKind, Message};

/// The simulated pool-manager node.
#[derive(Debug)]
pub struct ManagerNode {
    /// This node's id.
    pub id: NodeId,
    /// The matchmaker's ad store.
    pub store: AdStore,
    /// The negotiator (match engine + priorities).
    pub negotiator: Negotiator,
    /// Advertising protocol enforced on incoming ads.
    pub protocol: AdvertisingProtocol,
    /// Negotiation cycle period, ms.
    pub cycle_period_ms: u64,
    /// Ads rejected by the advertising protocol (protocol violations).
    pub ads_rejected: u64,
    /// Gang (co-allocation) solver used for multi-port requests.
    pub gang_solver: GangSolver,
}

impl ManagerNode {
    /// Create a manager with the given negotiator configuration.
    pub fn new(id: NodeId, config: NegotiatorConfig, cycle_period_ms: u64) -> Self {
        ManagerNode {
            id,
            store: AdStore::new(),
            negotiator: Negotiator::new(config),
            protocol: AdvertisingProtocol::default(),
            cycle_period_ms,
            ads_rejected: 0,
            gang_solver: GangSolver::default(),
        }
    }

    /// Initialize: schedule the first negotiation cycle.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(
            self.cycle_period_ms,
            Event::Manager {
                node: self.id,
                tag: ManagerTimer::Negotiate,
            },
        );
    }

    /// Handle a timer event.
    pub fn on_timer(&mut self, tag: ManagerTimer, ctx: &mut Ctx<'_>) {
        match tag {
            ManagerTimer::Negotiate => {
                self.run_cycle(ctx);
                ctx.schedule(
                    self.cycle_period_ms,
                    Event::Manager {
                        node: self.id,
                        tag: ManagerTimer::Negotiate,
                    },
                );
            }
            ManagerTimer::Expire => {
                self.store.expire(ctx.now);
            }
        }
    }

    /// Handle an incoming message.
    pub fn on_message(&mut self, msg: SimMsg, ctx: &mut Ctx<'_>) {
        match msg {
            SimMsg::Proto(Message::Advertise(adv)) => {
                #[allow(clippy::collapsible_match)]
                if self.store.advertise(adv, ctx.now, &self.protocol).is_err() {
                    self.ads_rejected += 1;
                }
            }
            SimMsg::UsageReport { user, used_ms } => {
                // Account usage in seconds of resource time.
                self.negotiator
                    .charge_usage(&user, used_ms as f64 / MS_PER_SEC as f64, ctx.now);
            }
            _ => {}
        }
    }

    /// Run one negotiation cycle and dispatch notifications. Gang
    /// (multi-port) requests are served first — atomically, by the gang
    /// matcher — then the bilateral algorithm serves the plain requests
    /// from the remaining offers.
    pub fn run_cycle(&mut self, ctx: &mut Ctx<'_>) {
        self.store.expire(ctx.now);
        self.run_gang_pass(ctx);
        // The matchmaker evaluates with the pool's clock available to ads
        // that reference time().
        self.negotiator.engine.policy.now = Some((ctx.now / MS_PER_SEC) as i64);
        let outcome = self.negotiator.negotiate(&self.store, ctx.now);
        ctx.metrics.cycles += 1;
        ctx.metrics.matches += outcome.stats.matches as u64;
        ctx.metrics.requests_considered += outcome.stats.requests_considered as u64;
        ctx.metrics.unmatched_requests += outcome.stats.unmatched_requests as u64;
        ctx.metrics.clusters_formed += outcome.stats.clusters_formed as u64;
        ctx.metrics.matchlist_hits += outcome.stats.matchlist_hits as u64;
        ctx.metrics.full_scans += outcome.stats.full_scans as u64;
        for m in &outcome.matches {
            ctx.metrics.trace.record(
                ctx.now,
                crate::trace::TraceEvent::Match {
                    request: m.request_name.clone(),
                    offer: m.offer_name.clone(),
                    rank: m.request_rank,
                },
            );
            let (to_customer, to_provider) = m.notifications();
            ctx.send_to_contact(
                &m.customer_contact,
                SimMsg::Proto(Message::Notify(to_customer)),
            );
            ctx.send_to_contact(
                &m.provider_contact,
                SimMsg::Proto(Message::Notify(to_provider)),
            );
            // Matched ads leave the store until their owners re-advertise
            // with current state.
            self.store.withdraw(EntityKind::Customer, &m.request_name);
            self.store.withdraw(EntityKind::Provider, &m.offer_name);
        }
    }

    /// Serve the multi-port (gang) requests in the store.
    fn run_gang_pass(&mut self, ctx: &mut Ctx<'_>) {
        let out = negotiate_gangs(&self.store, ctx.now, &self.gang_solver);
        ctx.metrics.gangs_unmatched += out.failed.len() as u64;
        let eval_policy = EvalPolicy::default();
        for grant in out.granted {
            ctx.metrics.gangs_granted += 1;
            ctx.metrics.matches += 1;
            let ports: Vec<GangPortInfo> = grant
                .ports
                .iter()
                .filter_map(|p| {
                    let ticket = p.ticket?;
                    let offer_type = match p.offer_ad.eval_attr("Type", &eval_policy) {
                        Value::Str(s) => s.to_string(),
                        _ => String::new(),
                    };
                    Some(GangPortInfo {
                        offer_name: p.offer_name.clone(),
                        offer_type,
                        contact: p.provider_contact.clone(),
                        ticket,
                    })
                })
                .collect();
            if ports.len() != grant.ports.len() {
                // A port without a ticket cannot be claimed; treat as
                // unmatched (provider protocol violation).
                ctx.metrics.gangs_granted -= 1;
                ctx.metrics.gangs_unmatched += 1;
                continue;
            }
            ctx.send_to_contact(
                &grant.customer_contact,
                SimMsg::GangNotify {
                    gang_name: grant.gang_name.clone(),
                    ports,
                },
            );
            // Granted ads leave the store until re-advertised.
            self.store.withdraw(EntityKind::Customer, &grant.gang_name);
            for p in &grant.ports {
                self.store.withdraw(EntityKind::Provider, &p.offer_name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventQueue;
    use crate::metrics::Metrics;
    use crate::network::NetworkModel;
    use matchmaker::protocol::Advertisement;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    struct Harness {
        queue: EventQueue<Event>,
        rng: SmallRng,
        metrics: Metrics,
        directory: HashMap<String, NodeId>,
        network: NetworkModel,
    }

    impl Harness {
        fn new() -> Self {
            let mut directory = HashMap::new();
            directory.insert("m:9614".to_string(), 1);
            directory.insert("alice-ca:1".to_string(), 2);
            Harness {
                queue: EventQueue::new(),
                rng: SmallRng::seed_from_u64(1),
                metrics: Metrics::default(),
                directory,
                network: NetworkModel::ideal(),
            }
        }

        fn ctx(&mut self) -> Ctx<'_> {
            Ctx {
                now: self.queue.now(),
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                directory: &self.directory,
                queue: &mut self.queue,
                network: &self.network,
            }
        }
    }

    fn machine_adv() -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: classad::parse_classad(
                r#"[ Name = "m"; Type = "Machine"; Mips = 100;
                     Constraint = other.Type == "Job"; Rank = 0 ]"#,
            )
            .unwrap(),
            contact: "m:9614".into(),
            ticket: Some(matchmaker::ticket::Ticket::from_raw(5)),
            expires_at: 1_000_000,
        }
    }

    fn job_adv() -> Advertisement {
        Advertisement {
            kind: EntityKind::Customer,
            ad: classad::parse_classad(
                r#"[ Name = "alice.0"; Type = "Job"; Owner = "alice";
                     Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
            )
            .unwrap(),
            contact: "alice-ca:1".into(),
            ticket: None,
            expires_at: 1_000_000,
        }
    }

    #[test]
    fn advertisements_fill_store() {
        let mut h = Harness::new();
        let mut mgr = ManagerNode::new(0, NegotiatorConfig::default(), 60_000);
        let mut ctx = h.ctx();
        mgr.on_message(SimMsg::Proto(Message::Advertise(machine_adv())), &mut ctx);
        mgr.on_message(SimMsg::Proto(Message::Advertise(job_adv())), &mut ctx);
        assert_eq!(mgr.store.len(), 2);
        assert_eq!(mgr.ads_rejected, 0);
    }

    #[test]
    fn protocol_violations_counted() {
        let mut h = Harness::new();
        let mut mgr = ManagerNode::new(0, NegotiatorConfig::default(), 60_000);
        let mut bad = machine_adv();
        bad.ad.remove("Name");
        let mut ctx = h.ctx();
        mgr.on_message(SimMsg::Proto(Message::Advertise(bad)), &mut ctx);
        assert_eq!(mgr.ads_rejected, 1);
        assert_eq!(mgr.store.len(), 0);
    }

    #[test]
    fn cycle_produces_notifications_and_withdraws_ads() {
        let mut h = Harness::new();
        let mut mgr = ManagerNode::new(0, NegotiatorConfig::default(), 60_000);
        {
            let mut ctx = h.ctx();
            mgr.on_message(SimMsg::Proto(Message::Advertise(machine_adv())), &mut ctx);
            mgr.on_message(SimMsg::Proto(Message::Advertise(job_adv())), &mut ctx);
            mgr.run_cycle(&mut ctx);
        }
        assert_eq!(h.metrics.matches, 1);
        assert_eq!(h.metrics.cycles, 1);
        assert_eq!(mgr.store.len(), 0, "both matched ads withdrawn");
        // Two notifications queued for delivery.
        let mut notify_targets = Vec::new();
        while let Some((_, ev)) = h.queue.pop() {
            if let Event::Deliver {
                to,
                msg: SimMsg::Proto(Message::Notify(_)),
            } = ev
            {
                notify_targets.push(to);
            }
        }
        notify_targets.sort();
        assert_eq!(notify_targets, vec![1, 2]);
    }

    #[test]
    fn usage_reports_feed_priorities() {
        let mut h = Harness::new();
        let mut mgr = ManagerNode::new(0, NegotiatorConfig::default(), 60_000);
        let mut ctx = h.ctx();
        mgr.on_message(
            SimMsg::UsageReport {
                user: "alice".into(),
                used_ms: 30_000,
            },
            &mut ctx,
        );
        assert!((mgr.negotiator.priorities.usage("alice", 0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn expired_ads_not_matched() {
        let mut h = Harness::new();
        let mut mgr = ManagerNode::new(0, NegotiatorConfig::default(), 60_000);
        let mut short = machine_adv();
        short.expires_at = 10;
        {
            let mut ctx = h.ctx();
            mgr.on_message(SimMsg::Proto(Message::Advertise(short)), &mut ctx);
            mgr.on_message(SimMsg::Proto(Message::Advertise(job_adv())), &mut ctx);
        }
        // Advance time past the machine lease.
        h.queue.schedule(
            100,
            Event::Manager {
                node: 0,
                tag: ManagerTimer::Negotiate,
            },
        );
        let (_, _) = h.queue.pop().unwrap();
        let mut ctx = h.ctx();
        mgr.run_cycle(&mut ctx);
        assert_eq!(h.metrics.matches, 0);
        assert_eq!(h.metrics.unmatched_requests, 1);
    }
}
