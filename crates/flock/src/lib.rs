//! # condor-flock — pool federation (flocking)
//!
//! One matchmaker brokers one pool; scaling past a pool means federating
//! brokers. Flocking keeps the paper's architecture intact while doing
//! so: when a negotiation cycle leaves an autocluster unmatched, the
//! local matchmaker forwards **one representative ad** for the cluster
//! (the same representative the failure-attribution pass analyzes) to
//! configured peer matchmakers as a `FlockQuery`. A peer with a free,
//! mutually-acceptable resource answers with a `FlockOffer` carrying the
//! provider's full advertisement — contact address and authorization
//! ticket included — and the *origin* matchmaker relays it to the job's
//! customer agent as an ordinary `Notify`. The claim then runs directly
//! between the customer and the remote resource agent, which re-verifies
//! the delegated ticket exactly as it would a local one. No job or
//! machine state is ever replicated between matchmakers; a wrong grant
//! costs one rejected claim, never a wrong allocation.
//!
//! Like `condor-ha`, this crate is **socket-free**: it holds the pure
//! decision state — the peer table with health and decorrelated-jitter
//! backoff ([`matchmaker::retry::Backoff`]), per-peer in-flight caps,
//! the anti-loop hop budget stamped into forwarded ads
//! ([`hop`]), and delegation-grant ranking — while `condor-pool`'s
//! daemon does the dialing. That keeps every transition unit-testable
//! without a listener.
//!
//! Mixed pools degrade cleanly: a pre-flock peer rejects the unknown
//! tag with a structured `Error`, which [`FlockManager::query_finished`]
//! records as [`QueryOutcome::NonFlocking`] — the peer is never dialed
//! for flocking again, and its normal traffic is untouched.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hop;
pub mod manager;

pub use hop::{admit, stamp_chain, stamp_outbound, Admitted, FlockReject, ATTR_HOPS, ATTR_VISITED};
pub use manager::{
    FlockConfig, FlockCounters, FlockManager, PeerHealth, PeerSnapshot, QueryOutcome,
};

use classad::ClassAd;
use matchmaker::matcher::MatchEngine;
use matchmaker::protocol::Advertisement;

/// Rank a set of delegation grants against the representative request and
/// pick the best, re-verifying the symmetric constraints locally (the
/// grantor scored against *its* view; the origin never trusts that
/// blindly). Returns the index of the winning `(peer, grant)` pair.
///
/// Ranking uses the request's own `Rank` expression — the same quantity a
/// local match would maximize — so a remote offer can never beat what a
/// local cycle would have produced: flocking only runs for clusters the
/// local cycle left unmatched, and among remote grants the highest
/// request-rank wins with ties broken by configured peer order (earlier
/// peer wins, keeping selection deterministic).
pub fn select_grant(
    rep: &ClassAd,
    grants: &[(String, Advertisement)],
    engine: &MatchEngine,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, (_peer, adv)) in grants.iter().enumerate() {
        let Some(cand) = engine.score(rep, &adv.ad, i) else {
            continue;
        };
        match best {
            Some((_, rank)) if cand.request_rank <= rank => {}
            _ => best = Some((i, cand.request_rank)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;
    use matchmaker::protocol::EntityKind;

    fn job() -> ClassAd {
        parse_classad(
            r#"[ Name = "job-1"; Type = "Job";
                 Constraint = other.Type == "Machine" && other.Mips >= 50;
                 Rank = other.Mips ]"#,
        )
        .unwrap()
    }

    fn machine(name: &str, mips: i64) -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "Machine"; Mips = {mips};
                     Constraint = other.Type == "Job"; Rank = 0 ]"#
            ))
            .unwrap(),
            contact: format!("{name}:9700"),
            ticket: None,
            expires_at: 1000,
        }
    }

    #[test]
    fn select_grant_maximizes_request_rank() {
        let grants = vec![
            ("poolB:1".to_string(), machine("slow", 60)),
            ("poolC:1".to_string(), machine("fast", 200)),
        ];
        let engine = MatchEngine::new();
        assert_eq!(select_grant(&job(), &grants, &engine), Some(1));
    }

    #[test]
    fn select_grant_reverifies_constraints_locally() {
        // The grantor may have scored against stale state; an offer that
        // fails the symmetric constraints here is dropped, not relayed.
        let grants = vec![
            ("poolB:1".to_string(), machine("weak", 10)), // Mips < 50
            ("poolC:1".to_string(), machine("ok", 80)),
        ];
        let engine = MatchEngine::new();
        assert_eq!(select_grant(&job(), &grants, &engine), Some(1));
        let none = vec![("poolB:1".to_string(), machine("weak", 10))];
        assert_eq!(select_grant(&job(), &none, &engine), None);
    }

    #[test]
    fn select_grant_ties_break_by_peer_order() {
        let grants = vec![
            ("poolB:1".to_string(), machine("b", 100)),
            ("poolC:1".to_string(), machine("c", 100)),
        ];
        let engine = MatchEngine::new();
        assert_eq!(
            select_grant(&job(), &grants, &engine),
            Some(0),
            "equal ranks: the earlier-configured peer wins"
        );
    }
}
