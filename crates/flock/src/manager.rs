//! The peer table: health, backoff, and in-flight accounting per peer
//! pool.
//!
//! A [`FlockManager`] owns the origin-side state of flocking: which peer
//! pools are configured, which are currently reachable, which turned out
//! to predate flocking entirely, and how many queries are outstanding to
//! each. It never opens a socket — the pool daemon drives it with
//! [`FlockManager::query_started`] / [`FlockManager::query_finished`]
//! around each dial, and asks [`FlockManager::eligible`] which peers to
//! consult for a given forwarded ad.
//!
//! Health states:
//!
//! * **Up** — the peer answered its last flock query (grant or dry).
//! * **Down** — the last dial failed; the peer is skipped until its
//!   decorrelated-jitter backoff deadline passes. Each peer's schedule is
//!   seeded from its own name so a multi-peer origin never retries all
//!   its peers in lockstep.
//! * **NonFlocking** — the peer answered the query with a structured
//!   `Error` (`unknown tag 13`): it speaks the wire protocol but predates
//!   flocking. Permanent for the life of the manager; normal traffic to
//!   the peer is unaffected.

use matchmaker::retry::Backoff;
use std::time::Duration;

/// Federation knobs, carried by `DaemonConfig.flock` on the pool daemon.
#[derive(Debug, Clone)]
pub struct FlockConfig {
    /// Peer pools to consult, in preference order (ties in grant rank
    /// break toward earlier peers). Each entry lists one pool's
    /// matchmaker contacts — leader first by convention, standbys after —
    /// and the dialer probes for the current leader before each query.
    pub peers: Vec<Vec<String>>,
    /// How many matchmaker hops a forwarded ad may make (stamped as
    /// `FlockHops`; see [`crate::hop`]). 1 = direct peers only.
    pub hop_budget: u32,
    /// Maximum outstanding flock queries per peer pool.
    pub max_in_flight: u32,
    /// Backoff schedule for unreachable peers. Re-seeded per peer from
    /// the peer's name so retries decorrelate across the table.
    pub backoff: Backoff,
}

impl Default for FlockConfig {
    fn default() -> Self {
        FlockConfig {
            peers: Vec::new(),
            hop_budget: 2,
            max_in_flight: 2,
            backoff: Backoff {
                jitter: 0.3,
                ..Backoff::unlimited(Duration::from_secs(1), Duration::from_secs(60))
            },
        }
    }
}

/// A peer pool's reachability, as last observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Answered its last flock query.
    Up,
    /// Unreachable; skipped until the backoff deadline (unix ms) passes.
    Down {
        /// When the peer becomes dialable again.
        retry_at_ms: u64,
    },
    /// Speaks the wire protocol but rejected the flock tag — a pre-flock
    /// peer. Never dialed for flocking again.
    NonFlocking,
}

/// How one flock query to one peer ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The peer granted a provider advertisement.
    Granted,
    /// The peer answered but had no matching resource free.
    Dry,
    /// The peer rejected the tag itself (structured `Error`): pre-flock.
    NonFlocking,
    /// The dial failed (connect/read/write error or timeout).
    Failed,
}

#[derive(Debug)]
struct PeerState {
    contacts: Vec<String>,
    health: PeerHealth,
    in_flight: u32,
    /// Consecutive failed dials (resets on any answer).
    attempt: u32,
    sent: u64,
    grants: u64,
    backoff: Backoff,
}

/// A read-only view of one peer's row for self-ads and status tools.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSnapshot {
    /// The peer's display name (its first configured contact).
    pub name: String,
    /// Current health.
    pub health: PeerHealth,
    /// Outstanding queries right now.
    pub in_flight: u32,
    /// Queries ever sent to this peer.
    pub sent: u64,
    /// Grants ever received from this peer.
    pub grants: u64,
}

/// Aggregate counters for the matchmaker self-ad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlockCounters {
    /// Peers currently `Up` (includes never-dialed peers, optimistically).
    pub peers_up: u64,
    /// Peers currently backing off.
    pub peers_down: u64,
    /// Peers marked pre-flock.
    pub peers_non_flocking: u64,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The origin-side flocking state machine. Not internally synchronized —
/// the daemon keeps it behind a mutex, like the negotiator.
#[derive(Debug)]
pub struct FlockManager {
    config: FlockConfig,
    peers: Vec<PeerState>,
}

impl FlockManager {
    /// Build the peer table from the configuration. Peer entries with no
    /// contacts are dropped.
    pub fn new(config: FlockConfig) -> Self {
        let peers = config
            .peers
            .iter()
            .filter(|c| !c.is_empty())
            .map(|contacts| PeerState {
                backoff: Backoff {
                    jitter_seed: config.backoff.jitter_seed ^ fnv1a(&contacts[0]),
                    ..config.backoff.clone()
                },
                contacts: contacts.clone(),
                health: PeerHealth::Up,
                in_flight: 0,
                attempt: 0,
                sent: 0,
                grants: 0,
            })
            .collect();
        FlockManager { config, peers }
    }

    /// Whether any peers are configured at all.
    pub fn is_enabled(&self) -> bool {
        !self.peers.is_empty()
    }

    /// The configured hop budget for outbound stamps.
    pub fn hop_budget(&self) -> u32 {
        self.config.hop_budget
    }

    /// Peers worth dialing right now for an ad that has already visited
    /// `visited` pools: healthy (or past their backoff deadline), under
    /// their in-flight cap, not pre-flock, and not among the visited
    /// contacts. Returned in configured (preference) order.
    pub fn eligible(&self, now_ms: u64, visited: &[String]) -> Vec<usize> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, p)| match p.health {
                PeerHealth::NonFlocking => false,
                PeerHealth::Down { retry_at_ms } => now_ms >= retry_at_ms,
                PeerHealth::Up => true,
            })
            .filter(|(_, p)| p.in_flight < self.config.max_in_flight)
            .filter(|(_, p)| !p.contacts.iter().any(|c| visited.iter().any(|v| v == c)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The peer's configured contacts (for leader probing).
    pub fn contacts(&self, peer: usize) -> &[String] {
        &self.peers[peer].contacts
    }

    /// The peer's display name (first configured contact).
    pub fn name(&self, peer: usize) -> &str {
        &self.peers[peer].contacts[0]
    }

    /// Record that a query to `peer` is going on the wire.
    pub fn query_started(&mut self, peer: usize) {
        let p = &mut self.peers[peer];
        p.in_flight += 1;
        p.sent += 1;
    }

    /// Record how the query ended and transition the peer's health.
    pub fn query_finished(&mut self, peer: usize, outcome: QueryOutcome, now_ms: u64) {
        let p = &mut self.peers[peer];
        p.in_flight = p.in_flight.saturating_sub(1);
        match outcome {
            QueryOutcome::Granted => {
                p.grants += 1;
                p.attempt = 0;
                p.health = PeerHealth::Up;
            }
            QueryOutcome::Dry => {
                p.attempt = 0;
                p.health = PeerHealth::Up;
            }
            QueryOutcome::NonFlocking => p.health = PeerHealth::NonFlocking,
            QueryOutcome::Failed => {
                p.attempt = p.attempt.saturating_add(1);
                let delay = p
                    .backoff
                    .delay(p.attempt)
                    .unwrap_or(p.backoff.max_delay)
                    .as_millis() as u64;
                p.health = PeerHealth::Down {
                    retry_at_ms: now_ms + delay,
                };
            }
        }
    }

    /// Per-peer rows for status tools.
    pub fn snapshot(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .map(|p| PeerSnapshot {
                name: p.contacts[0].clone(),
                health: p.health,
                in_flight: p.in_flight,
                sent: p.sent,
                grants: p.grants,
            })
            .collect()
    }

    /// Aggregate health counters for the self-ad gauges.
    pub fn counters(&self) -> FlockCounters {
        let mut c = FlockCounters::default();
        for p in &self.peers {
            match p.health {
                PeerHealth::Up => c.peers_up += 1,
                PeerHealth::Down { .. } => c.peers_down += 1,
                PeerHealth::NonFlocking => c.peers_non_flocking += 1,
            }
        }
        c
    }

    /// The peer table as one self-ad string attribute
    /// (`FlockPeerTable`), e.g.
    /// `"mmB:9614 up sent=3 grants=1 | mmC:9614 non-flocking sent=1 grants=0"`.
    pub fn peer_table(&self) -> String {
        self.peers
            .iter()
            .map(|p| {
                let state = match p.health {
                    PeerHealth::Up => "up".to_string(),
                    PeerHealth::Down { retry_at_ms } => format!("down(retry@{retry_at_ms}ms)"),
                    PeerHealth::NonFlocking => "non-flocking".to_string(),
                };
                format!(
                    "{} {} sent={} grants={}",
                    p.contacts[0], state, p.sent, p.grants
                )
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(peers: &[&str]) -> FlockManager {
        FlockManager::new(FlockConfig {
            peers: peers.iter().map(|p| vec![p.to_string()]).collect(),
            ..FlockConfig::default()
        })
    }

    #[test]
    fn empty_config_disables_flocking() {
        let m = manager(&[]);
        assert!(!m.is_enabled());
        assert!(m.eligible(0, &[]).is_empty());
    }

    #[test]
    fn fresh_peers_are_eligible_in_order() {
        let m = manager(&["b:1", "c:1"]);
        assert!(m.is_enabled());
        assert_eq!(m.eligible(0, &[]), vec![0, 1]);
        assert_eq!(m.name(0), "b:1");
    }

    #[test]
    fn visited_pools_are_skipped() {
        let m = manager(&["b:1", "c:1"]);
        assert_eq!(m.eligible(0, &["b:1".to_string()]), vec![1]);
    }

    #[test]
    fn in_flight_cap_holds() {
        let mut m = FlockManager::new(FlockConfig {
            peers: vec![vec!["b:1".to_string()]],
            max_in_flight: 2,
            ..FlockConfig::default()
        });
        m.query_started(0);
        assert_eq!(m.eligible(0, &[]), vec![0]);
        m.query_started(0);
        assert!(m.eligible(0, &[]).is_empty(), "cap reached");
        m.query_finished(0, QueryOutcome::Dry, 0);
        assert_eq!(m.eligible(0, &[]), vec![0]);
    }

    #[test]
    fn failure_backs_off_then_recovers() {
        let mut m = manager(&["b:1"]);
        m.query_started(0);
        m.query_finished(0, QueryOutcome::Failed, 10_000);
        let PeerHealth::Down { retry_at_ms } = m.snapshot()[0].health else {
            panic!("expected Down");
        };
        assert!(retry_at_ms > 10_000);
        assert!(m.eligible(retry_at_ms - 1, &[]).is_empty());
        assert_eq!(m.eligible(retry_at_ms, &[]), vec![0], "deadline passed");
        // A successful answer resets the attempt counter.
        m.query_started(0);
        m.query_finished(0, QueryOutcome::Granted, retry_at_ms + 1);
        assert_eq!(m.snapshot()[0].health, PeerHealth::Up);
        assert_eq!(m.snapshot()[0].grants, 1);
    }

    #[test]
    fn consecutive_failures_grow_the_backoff() {
        let mut m = FlockManager::new(FlockConfig {
            peers: vec![vec!["b:1".to_string()]],
            backoff: Backoff::unlimited(Duration::from_secs(1), Duration::from_secs(60)),
            ..FlockConfig::default()
        });
        let mut last = 0;
        for _ in 0..4 {
            m.query_started(0);
            m.query_finished(0, QueryOutcome::Failed, 0);
            let PeerHealth::Down { retry_at_ms } = m.snapshot()[0].health else {
                panic!("expected Down");
            };
            assert!(retry_at_ms > last, "{retry_at_ms} vs {last}");
            last = retry_at_ms;
        }
    }

    #[test]
    fn peer_backoff_schedules_decorrelate_by_name() {
        let mut m = FlockManager::new(FlockConfig {
            peers: vec![vec!["b:1".to_string()], vec!["c:1".to_string()]],
            backoff: Backoff {
                jitter: 0.9,
                ..Backoff::unlimited(Duration::from_secs(1), Duration::from_secs(60))
            },
            ..FlockConfig::default()
        });
        for peer in 0..2 {
            for _ in 0..3 {
                m.query_started(peer);
                m.query_finished(peer, QueryOutcome::Failed, 0);
            }
        }
        let snap = m.snapshot();
        let (PeerHealth::Down { retry_at_ms: a }, PeerHealth::Down { retry_at_ms: b }) =
            (snap[0].health, snap[1].health)
        else {
            panic!("both down");
        };
        assert_ne!(a, b, "two peers must not retry in lockstep");
    }

    #[test]
    fn non_flocking_is_permanent() {
        let mut m = manager(&["old:1", "new:1"]);
        m.query_started(0);
        m.query_finished(0, QueryOutcome::NonFlocking, 0);
        assert_eq!(m.eligible(u64::MAX, &[]), vec![1]);
        assert_eq!(m.counters().peers_non_flocking, 1);
        assert!(m.peer_table().contains("old:1 non-flocking"));
    }

    #[test]
    fn counters_and_table_reflect_the_rows() {
        let mut m = manager(&["b:1", "c:1", "d:1"]);
        m.query_started(0);
        m.query_finished(0, QueryOutcome::Granted, 0);
        m.query_started(1);
        m.query_finished(1, QueryOutcome::Failed, 0);
        let c = m.counters();
        assert_eq!((c.peers_up, c.peers_down, c.peers_non_flocking), (2, 1, 0));
        let table = m.peer_table();
        assert!(table.contains("b:1 up sent=1 grants=1"), "{table}");
        assert!(table.contains("down(retry@"), "{table}");
    }
}
