//! The anti-loop hop budget carried *inside* the forwarded ad.
//!
//! A flocked representative ad travels with two ordinary attributes —
//! nothing new on the wire, so any tool that prints classads shows the
//! flocking state too:
//!
//! * `FlockHops` — how many further matchmaker hops the ad may make.
//!   The origin stamps its configured budget; every chain-forward
//!   decrements. A query arriving with `FlockHops < 1` is rejected.
//! * `FlockVisited` — comma-joined matchmaker contacts that have already
//!   seen this query. A pool finding itself in the list rejects the
//!   query instead of looping it, and chain-forwards skip visited peers.
//!
//! Both checks live here (pure functions over [`ClassAd`]s) so the
//! daemon-side handler is a thin shell around testable logic.

use classad::ClassAd;

/// Attribute holding the remaining hop budget of a flocked ad.
pub const ATTR_HOPS: &str = "FlockHops";
/// Attribute holding the comma-joined list of matchmaker contacts that
/// have already handled this query.
pub const ATTR_VISITED: &str = "FlockVisited";

/// Why an incoming `FlockQuery` was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlockReject {
    /// This matchmaker already appears in the ad's `FlockVisited` list —
    /// forwarding again would loop.
    Looped,
    /// The ad arrived with no hop budget left (`FlockHops < 1`).
    HopsExhausted,
}

impl std::fmt::Display for FlockReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlockReject::Looped => f.write_str("flock loop: this pool already handled the query"),
            FlockReject::HopsExhausted => f.write_str("flock hop budget exhausted"),
        }
    }
}

/// What an admitted `FlockQuery` carries for further decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admitted {
    /// Hop budget remaining *after* this hop (0 = answer but never
    /// chain-forward).
    pub hops_left: u32,
    /// Contacts that have handled the query, this pool excluded.
    pub visited: Vec<String>,
}

fn visited_of(ad: &ClassAd) -> Vec<String> {
    ad.get_string(ATTR_VISITED)
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

/// Admission check a matchmaker runs on an incoming flocked ad.
///
/// `self_contact` is this pool's own matchmaker contact. Admission
/// consumes one hop: an ad stamped with `FlockHops = 1` is admitted with
/// `hops_left = 0` (it may be answered, not re-forwarded).
pub fn admit(rep: &ClassAd, self_contact: &str) -> Result<Admitted, FlockReject> {
    let visited = visited_of(rep);
    if visited.iter().any(|v| v == self_contact) {
        return Err(FlockReject::Looped);
    }
    let hops = rep.get_int(ATTR_HOPS).unwrap_or(0);
    if hops < 1 {
        return Err(FlockReject::HopsExhausted);
    }
    Ok(Admitted {
        hops_left: (hops - 1) as u32,
        visited,
    })
}

/// Stamp a representative ad for its first hop out of the origin pool:
/// sets `FlockHops` to the configured budget and starts `FlockVisited`
/// with the origin's own contact.
pub fn stamp_outbound(rep: &ClassAd, hop_budget: u32, self_contact: &str) -> ClassAd {
    let mut out = rep.clone();
    out.set_int(ATTR_HOPS, hop_budget as i64);
    out.set_str(ATTR_VISITED, self_contact);
    out
}

/// Re-stamp an admitted ad for a chain-forward to this pool's own peers:
/// the decremented budget goes back in, and this pool joins the visited
/// list. `None` when the budget is spent — the caller answers the query
/// itself (grant or dry) but must not forward it.
pub fn stamp_chain(rep: &ClassAd, admitted: &Admitted, self_contact: &str) -> Option<ClassAd> {
    if admitted.hops_left == 0 {
        return None;
    }
    let mut out = rep.clone();
    out.set_int(ATTR_HOPS, admitted.hops_left as i64);
    let mut visited = admitted.visited.clone();
    visited.push(self_contact.to_string());
    out.set_str(ATTR_VISITED, &visited.join(","));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;

    fn rep() -> ClassAd {
        parse_classad(r#"[ Name = "job-1"; Constraint = true; Rank = 0 ]"#).unwrap()
    }

    #[test]
    fn outbound_stamp_then_admit_consumes_a_hop() {
        let stamped = stamp_outbound(&rep(), 2, "poolA:9614");
        assert_eq!(stamped.get_int(ATTR_HOPS), Some(2));
        assert_eq!(stamped.get_string(ATTR_VISITED), Some("poolA:9614"));
        let admitted = admit(&stamped, "poolB:9614").unwrap();
        assert_eq!(admitted.hops_left, 1);
        assert_eq!(admitted.visited, vec!["poolA:9614".to_string()]);
    }

    #[test]
    fn own_pool_in_visited_is_a_loop() {
        let stamped = stamp_outbound(&rep(), 2, "poolA:9614");
        assert_eq!(admit(&stamped, "poolA:9614"), Err(FlockReject::Looped));
    }

    #[test]
    fn unstamped_or_spent_ads_are_rejected() {
        assert_eq!(admit(&rep(), "poolB:9614"), Err(FlockReject::HopsExhausted));
        let mut spent = rep();
        spent.set_int(ATTR_HOPS, 0);
        assert_eq!(admit(&spent, "poolB:9614"), Err(FlockReject::HopsExhausted));
    }

    #[test]
    fn chain_stamp_decrements_and_accumulates_visited() {
        let stamped = stamp_outbound(&rep(), 2, "poolA:9614");
        let admitted = admit(&stamped, "poolB:9614").unwrap();
        let chained = stamp_chain(&stamped, &admitted, "poolB:9614").unwrap();
        assert_eq!(chained.get_int(ATTR_HOPS), Some(1));
        assert_eq!(
            chained.get_string(ATTR_VISITED),
            Some("poolA:9614,poolB:9614")
        );
        // Third pool: admitted with nothing left to forward.
        let admitted_c = admit(&chained, "poolC:9614").unwrap();
        assert_eq!(admitted_c.hops_left, 0);
        assert_eq!(stamp_chain(&chained, &admitted_c, "poolC:9614"), None);
        // And the chain cannot fold back on either earlier pool.
        assert_eq!(admit(&chained, "poolA:9614"), Err(FlockReject::Looped));
        assert_eq!(admit(&chained, "poolB:9614"), Err(FlockReject::Looped));
    }

    #[test]
    fn budget_of_one_answers_but_never_forwards() {
        let stamped = stamp_outbound(&rep(), 1, "poolA:9614");
        let admitted = admit(&stamped, "poolB:9614").unwrap();
        assert_eq!(admitted.hops_left, 0);
        assert_eq!(stamp_chain(&stamped, &admitted, "poolB:9614"), None);
    }
}
