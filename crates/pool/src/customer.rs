//! The customer agent (CA): a user's live runtime.
//!
//! Advertises one request per pending job, listens for the matchmaker's
//! [`MatchNotification`], and dials the matched provider **directly** to
//! claim it (paper step 4) — presenting the relayed ticket and the job's
//! current ad for the provider's re-verification. A rejected or failed
//! claim re-queues the job behind a capped exponential [`Backoff`]; the
//! matchmaker simply matches it again, usually elsewhere. Exhausting the
//! retry budget marks the job [`JobStatus::Failed`].
//!
//! [`MatchNotification`]: matchmaker::protocol::MatchNotification

use crate::failover::{self, Probe};
use crate::observe::{self_ad_name, Observer, WireCounters};
use crate::retry::Backoff;
use crate::wire::{self, IoConfig};
use classad::ClassAd;
use condor_obs::{schema, Event, JournalConfig, TraceContext};
use matchmaker::protocol::{Advertisement, ClaimRequest, EntityKind, MatchNotification, Message};
use parking_lot::Mutex;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Customer-agent tunables.
#[derive(Debug, Clone)]
pub struct CustomerConfig {
    /// The submitting user (written into each job's `Owner` attribute).
    pub user: String,
    /// Matchmaker daemon address (`host:port`).
    pub matchmaker: String,
    /// Every matchmaker in an HA set, preferred-first. Empty (the
    /// default) means the lone [`matchmaker`] address and no probing.
    /// With two or more contacts the agent probes its current matchmaker
    /// each advertisement pass and follows leader redirects (see
    /// [`crate::failover`]): idle jobs chase the lease to the new leader
    /// while claimed jobs ride out the handover on their direct
    /// provider connections.
    ///
    /// [`matchmaker`]: CustomerConfig::matchmaker
    pub matchmakers: Vec<String>,
    /// Listen address for match notifications; port 0 picks one.
    pub bind: String,
    /// Period between advertisement passes over pending jobs.
    pub heartbeat: Duration,
    /// Lease length granted with each request advertisement.
    pub lease: Duration,
    /// Socket deadlines.
    pub io: IoConfig,
    /// Resubmission schedule after a rejected or failed claim; exhausting
    /// it marks the job [`JobStatus::Failed`].
    pub backoff: Backoff,
    /// Publish a `CustomerAgentStats` self-ad to the matchmaker on every
    /// advertisement pass (on by default; see `condor_obs::selfad`).
    pub publish_self_ad: bool,
    /// Event-journal destination; `None` disables journaling.
    pub journal: Option<JournalConfig>,
}

impl Default for CustomerConfig {
    fn default() -> Self {
        CustomerConfig {
            user: "user".into(),
            matchmaker: String::new(),
            matchmakers: Vec::new(),
            bind: "127.0.0.1:0".into(),
            heartbeat: Duration::from_secs(60),
            lease: Duration::from_secs(300),
            io: IoConfig::default(),
            backoff: Backoff::default(),
            publish_self_ad: true,
            journal: None,
        }
    }
}

/// Where a job stands in the advertise → match → claim lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Advertised (or awaiting its backoff delay) but not yet placed.
    Idle,
    /// Successfully claimed a provider.
    Claimed {
        /// The provider's contact address.
        provider_contact: String,
        /// The provider's advertised name.
        provider_name: String,
    },
    /// The claim retry budget is exhausted; the job will not be resubmitted.
    Failed,
}

struct Job {
    name: String,
    ad: ClassAd,
    status: JobStatus,
    /// A claim dial is in flight; skip re-advertising and ignore duplicate
    /// notifications until it resolves.
    claiming: bool,
    /// Claim failures so far (indexes into the backoff schedule).
    attempts: u32,
    /// Earliest instant the job may be re-advertised.
    not_before: Instant,
    /// The job's trace, minted at submission: every advertisement for this
    /// job carries it, so the whole advertise → match → claim lifecycle
    /// stitches into one tree across daemons.
    trace: TraceContext,
}

/// The agent's metric handles, registered once at spawn.
#[derive(Debug)]
struct CaMetrics {
    ads_sent: Arc<condor_obs::Counter>,
    ad_failures: Arc<condor_obs::Counter>,
    self_ads_sent: Arc<condor_obs::Counter>,
    notifications_received: Arc<condor_obs::Counter>,
    claims_accepted: Arc<condor_obs::Counter>,
    claims_rejected: Arc<condor_obs::Counter>,
    claim_dial_failures: Arc<condor_obs::Counter>,
    jobs_submitted: Arc<condor_obs::Counter>,
    jobs_failed: Arc<condor_obs::Counter>,
    failovers: Arc<condor_obs::Counter>,
    jobs_idle: Arc<condor_obs::Gauge>,
    jobs_claimed: Arc<condor_obs::Gauge>,
    phase_claim_rtt_ms: Arc<condor_obs::WindowedHistogram>,
    wire: WireCounters,
}

impl CaMetrics {
    fn new(reg: &condor_obs::Registry) -> Self {
        CaMetrics {
            ads_sent: reg.counter(schema::ADS_SENT),
            ad_failures: reg.counter(schema::AD_FAILURES),
            self_ads_sent: reg.counter(schema::SELF_ADS_SENT),
            notifications_received: reg.counter(schema::NOTIFICATIONS_SEEN),
            claims_accepted: reg.counter(schema::CLAIMS_ACCEPTED),
            claims_rejected: reg.counter(schema::CLAIMS_REJECTED),
            claim_dial_failures: reg.counter(schema::CLAIM_DIAL_FAILURES),
            jobs_submitted: reg.counter(schema::JOBS_SUBMITTED),
            jobs_failed: reg.counter(schema::JOBS_FAILED),
            failovers: reg.counter(schema::MATCHMAKER_FAILOVERS),
            jobs_idle: reg.gauge(schema::JOBS_IDLE),
            jobs_claimed: reg.gauge(schema::JOBS_CLAIMED),
            phase_claim_rtt_ms: reg.histogram(schema::PHASE_CLAIM_RTT_MS, Duration::from_secs(300)),
            wire: WireCounters::new(reg),
        }
    }
}

/// Point-in-time copy of the customer-agent counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomerStatsSnapshot {
    /// Request advertisements delivered to the matchmaker.
    pub ads_sent: u64,
    /// Advertisement dials that failed.
    pub ad_failures: u64,
    /// Match notifications received.
    pub notifications_received: u64,
    /// Direct claims the provider accepted.
    pub claims_accepted: u64,
    /// Direct claims the provider rejected (stale state, bad ticket, busy).
    pub claims_rejected: u64,
    /// Claim dials that never reached the provider (death, timeout).
    pub claim_dial_failures: u64,
    /// Jobs abandoned after exhausting the retry budget.
    pub jobs_failed: u64,
    /// Times the agent switched matchmakers after a probe or redirect.
    pub failovers: u64,
}

struct CaShared {
    cfg: CustomerConfig,
    contact: String,
    /// The matchmaker currently advertised to — rewritten by
    /// [`CaShared::ensure_matchmaker`] when the leader moves.
    matchmaker: Mutex<String>,
    jobs: Mutex<Vec<Job>>,
    shutdown: AtomicBool,
    metrics: CaMetrics,
    observer: Observer,
    claimers: Mutex<Vec<JoinHandle<()>>>,
}

/// A live customer agent; see the module docs.
pub struct CustomerAgent {
    shared: Arc<CaShared>,
    addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    advertiser: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CustomerAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomerAgent")
            .field("user", &self.shared.cfg.user)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl CustomerAgent {
    /// Start the agent with an initial batch of `(name, ad)` jobs. Each
    /// ad gets its `Name` and `Owner` attributes overwritten.
    pub fn spawn(cfg: CustomerConfig, jobs: Vec<(String, ClassAd)>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let user = cfg.user.clone();
        let observer = Observer::new(cfg.journal.clone())?;
        let metrics = CaMetrics::new(observer.registry());
        let matchmaker = cfg
            .matchmakers
            .first()
            .cloned()
            .unwrap_or_else(|| cfg.matchmaker.clone());
        let shared = Arc::new(CaShared {
            contact: addr.to_string(),
            matchmaker: Mutex::new(matchmaker),
            cfg,
            jobs: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            metrics,
            observer,
            claimers: Mutex::new(Vec::new()),
        });
        shared.observer.emit(Event::AgentRestarted {
            agent: "CustomerAgent".into(),
            name: user.clone(),
        });
        for (name, ad) in jobs {
            push_job(&shared, &user, name, ad);
        }
        let listen_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ca-listen".into())
                .spawn(move || listen_loop(&shared, listener))?
        };
        let advertiser = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ca-advertise".into())
                .spawn(move || advertise_loop(&shared))?
        };
        Ok(CustomerAgent {
            shared,
            addr,
            listener: Some(listen_thread),
            advertiser: Some(advertiser),
        })
    }

    /// The agent's notification-listener address — its advertised contact.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The submitting user.
    pub fn user(&self) -> &str {
        &self.shared.cfg.user
    }

    /// Submit another job after spawn.
    pub fn add_job(&self, name: impl Into<String>, ad: ClassAd) {
        push_job(&self.shared, &self.shared.cfg.user.clone(), name.into(), ad);
    }

    /// Every job's `(name, status)`.
    pub fn jobs(&self) -> Vec<(String, JobStatus)> {
        self.shared
            .jobs
            .lock()
            .iter()
            .map(|j| (j.name.clone(), j.status.clone()))
            .collect()
    }

    /// `true` once every job is [`JobStatus::Claimed`].
    pub fn all_claimed(&self) -> bool {
        let jobs = self.shared.jobs.lock();
        !jobs.is_empty()
            && jobs
                .iter()
                .all(|j| matches!(j.status, JobStatus::Claimed { .. }))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CustomerStatsSnapshot {
        let m = &self.shared.metrics;
        CustomerStatsSnapshot {
            ads_sent: m.ads_sent.get(),
            ad_failures: m.ad_failures.get(),
            notifications_received: m.notifications_received.get(),
            claims_accepted: m.claims_accepted.get(),
            claims_rejected: m.claims_rejected.get(),
            claim_dial_failures: m.claim_dial_failures.get(),
            jobs_failed: m.jobs_failed.get(),
            failovers: m.failovers.get(),
        }
    }

    /// The matchmaker this agent currently advertises to (the leader it
    /// last found, or the configured address).
    pub fn matchmaker_contact(&self) -> String {
        self.shared.current_matchmaker()
    }

    /// Release every established claim (dialing each provider), withdraw
    /// pending request ads by collapsing their leases, and stop all
    /// threads.
    pub fn shutdown(mut self) {
        self.teardown(true);
    }

    fn teardown(&mut self, graceful: bool) {
        if graceful && !self.shared.shutdown.load(Ordering::SeqCst) {
            let io = &self.shared.cfg.io;
            let jobs = self.shared.jobs.lock();
            for j in jobs.iter() {
                match &j.status {
                    JobStatus::Claimed {
                        provider_contact, ..
                    } => {
                        // The ticket was consumed at claim time; Release is
                        // addressed by connection, any ticket value works.
                        let _ = wire::send_oneway(
                            provider_contact,
                            &Message::Release {
                                ticket: matchmaker::ticket::Ticket::from_raw(0),
                            },
                            io,
                        );
                    }
                    JobStatus::Idle => {
                        let adv = Advertisement {
                            kind: EntityKind::Customer,
                            ad: j.ad.clone(),
                            contact: self.shared.contact.clone(),
                            ticket: None,
                            expires_at: wire::unix_now() + 1,
                        };
                        let _ = wire::send_oneway(
                            &self.shared.current_matchmaker(),
                            &Message::Advertise(adv),
                            io,
                        );
                    }
                    JobStatus::Failed => {}
                }
            }
        }
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.advertiser.take() {
            let _ = h.join();
        }
        let claimers = std::mem::take(&mut *self.shared.claimers.lock());
        for h in claimers {
            let _ = h.join();
        }
    }
}

impl Drop for CustomerAgent {
    fn drop(&mut self) {
        self.teardown(false);
    }
}

impl CaShared {
    /// The matchmaker this agent currently speaks to.
    fn current_matchmaker(&self) -> String {
        self.matchmaker.lock().clone()
    }

    /// Multi-matchmaker failover: probe the current contact and, if it no
    /// longer answers like the leader (dead socket or a standby's
    /// redirect), walk the configured set for whoever holds the lease.
    /// Single-contact agents skip the probe entirely — the classic
    /// single-matchmaker exchange pattern is untouched.
    fn ensure_matchmaker(&self) {
        if self.cfg.matchmakers.len() < 2 {
            return;
        }
        let current = self.current_matchmaker();
        if failover::probe(&current, &self.cfg.io) == Probe::Leader {
            return;
        }
        if let Some(leader) = failover::find_leader(&self.cfg.matchmakers, &self.cfg.io) {
            if leader != current {
                *self.matchmaker.lock() = leader;
                self.metrics.failovers.inc();
            }
        }
    }
}

fn push_job(shared: &Arc<CaShared>, user: &str, name: String, mut ad: ClassAd) {
    ad.set_str("Name", &name);
    ad.set_str("Owner", user);
    shared.metrics.jobs_submitted.inc();
    shared.jobs.lock().push(Job {
        name,
        ad,
        status: JobStatus::Idle,
        claiming: false,
        attempts: 0,
        not_before: Instant::now(),
        trace: TraceContext::mint(),
    });
}

/// Recompute the job-state gauges from the queue (called on each
/// advertisement pass, just before the self-ad snapshot is taken).
fn update_job_gauges(shared: &Arc<CaShared>) {
    let jobs = shared.jobs.lock();
    let idle = jobs.iter().filter(|j| j.status == JobStatus::Idle).count();
    let claimed = jobs
        .iter()
        .filter(|j| matches!(j.status, JobStatus::Claimed { .. }))
        .count();
    drop(jobs);
    shared.metrics.jobs_idle.set(idle as i64);
    shared.metrics.jobs_claimed.set(claimed as i64);
}

/// Send the `CustomerAgentStats` self-ad to the matchmaker (best effort,
/// no retry: the next pass brings the next one).
fn publish_self_ad(shared: &Arc<CaShared>) {
    update_job_gauges(shared);
    let mut ad = shared.observer.build_self_ad(
        &self_ad_name(&shared.cfg.user),
        schema::CUSTOMER_AGENT_STATS,
    );
    ad.set_str("User", &shared.cfg.user);
    let adv = Advertisement {
        kind: EntityKind::Customer,
        ad,
        contact: shared.contact.clone(),
        ticket: None,
        expires_at: wire::unix_now() + (3 * shared.cfg.heartbeat.as_secs()).max(300),
    };
    if let Ok(n) = wire::send_oneway(
        &shared.current_matchmaker(),
        &Message::Advertise(adv),
        &shared.cfg.io,
    ) {
        shared.metrics.self_ads_sent.inc();
        shared.metrics.wire.sent(n as u64);
    }
}

fn advertise_loop(shared: &Arc<CaShared>) {
    loop {
        shared.ensure_matchmaker();
        advertise_pending(shared);
        if shared.cfg.publish_self_ad {
            publish_self_ad(shared);
        }
        if wire::interruptible_sleep(&shared.shutdown, shared.cfg.heartbeat) {
            return;
        }
    }
}

fn advertise_pending(shared: &Arc<CaShared>) {
    let now = Instant::now();
    let pending: Vec<(Advertisement, TraceContext)> = {
        let jobs = shared.jobs.lock();
        jobs.iter()
            .filter(|j| j.status == JobStatus::Idle && !j.claiming && j.not_before <= now)
            .map(|j| {
                (
                    Advertisement {
                        kind: EntityKind::Customer,
                        ad: j.ad.clone(),
                        contact: shared.contact.clone(),
                        ticket: None,
                        expires_at: wire::unix_now() + shared.cfg.lease.as_secs(),
                    },
                    j.trace,
                )
            })
            .collect()
    };
    for (adv, trace) in pending {
        match wire::send_oneway_traced(
            &shared.current_matchmaker(),
            &Message::Advertise(adv),
            Some(&trace),
            &shared.cfg.io,
        ) {
            Ok(n) => {
                shared.metrics.ads_sent.inc();
                shared.metrics.wire.sent(n as u64);
            }
            Err(_) => {
                shared.metrics.ad_failures.inc();
            }
        }
    }
}

fn listen_loop(shared: &Arc<CaShared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Some((note, trace)) = read_notification(shared, stream) {
            shared.metrics.notifications_received.inc();
            // Claim on a separate thread: a slow or dead provider must not
            // block notifications for the agent's other jobs.
            let claim_shared = Arc::clone(shared);
            if let Ok(h) = std::thread::Builder::new()
                .name("ca-claim".into())
                .spawn(move || attempt_claim(&claim_shared, note, trace))
            {
                let mut claimers = shared.claimers.lock();
                claimers.retain(|h| !h.is_finished());
                claimers.push(h);
            }
        }
    }
}

fn read_notification(
    shared: &Arc<CaShared>,
    mut stream: TcpStream,
) -> Option<(MatchNotification, Option<TraceContext>)> {
    let _ = stream.set_read_timeout(Some(shared.cfg.io.read_timeout));
    let mut dec = matchmaker::framing::FrameDecoder::new();
    let deadline = Instant::now() + shared.cfg.io.read_timeout;
    match wire::recv_traced(&mut stream, &mut dec, deadline) {
        Ok((Message::Notify(n), trace, bytes_in)) => {
            shared.metrics.wire.read_bytes(bytes_in);
            shared.metrics.wire.frame_in();
            Some((n, trace))
        }
        _ => None,
    }
}

/// `trace` is the context off the Notify frame — a child of the
/// matchmaker's notification span. The claim dial forwards it to the
/// provider; the verdict is journaled under the RA's reply context, so
/// the customer's span sits beneath the provider's in the assembled tree.
fn attempt_claim(shared: &Arc<CaShared>, note: MatchNotification, trace: Option<TraceContext>) {
    let Some(job_name) = note.own_ad.get_string("Name").map(str::to_owned) else {
        return;
    };
    // Take the job for claiming (at most one dial in flight per job).
    let current_ad = {
        let mut jobs = shared.jobs.lock();
        let Some(job) = jobs
            .iter_mut()
            .find(|j| j.name == job_name && j.status == JobStatus::Idle && !j.claiming)
        else {
            return; // unknown, already placed, or being claimed right now
        };
        job.claiming = true;
        job.ad.clone()
    };
    let outcome = match note.ticket {
        // A notification without a ticket cannot be claimed; treat it as a
        // failed attempt so the job backs off and re-advertises.
        None => Err(()),
        Some(ticket) => {
            let req = Message::Claim(ClaimRequest {
                ticket,
                customer_ad: current_ad,
                customer_contact: shared.contact.clone(),
            });
            let dialed = Instant::now();
            match wire::request_reply_traced(
                &note.peer_contact,
                &req,
                trace.as_ref(),
                &shared.cfg.io,
            ) {
                Ok(exchange) => {
                    shared
                        .metrics
                        .phase_claim_rtt_ms
                        .record(dialed.elapsed().as_secs_f64() * 1000.0);
                    shared.metrics.wire.sent(exchange.bytes_out);
                    shared.metrics.wire.read_bytes(exchange.bytes_in);
                    shared.metrics.wire.frame_in();
                    // Journal under the RA's reply context when it sent one,
                    // else under the notification context we dialed with.
                    let span = exchange.trace.or(trace).map(|ctx| ctx.begin_span());
                    match exchange.msg {
                        Message::ClaimReply(r) if r.accepted => {
                            shared.metrics.claims_accepted.inc();
                            let provider = r
                                .provider_ad
                                .get_string("Name")
                                .unwrap_or_default()
                                .to_owned();
                            shared.observer.emit_traced(
                                Event::ClaimEstablished {
                                    provider: provider.clone(),
                                    customer: shared.cfg.user.clone(),
                                },
                                span,
                            );
                            Ok(provider)
                        }
                        Message::ClaimReply(r) => {
                            debug_assert!(r.rejection.is_some());
                            shared.metrics.claims_rejected.inc();
                            shared.observer.emit_traced(
                                Event::ClaimRejected {
                                    provider: r
                                        .provider_ad
                                        .get_string("Name")
                                        .unwrap_or_default()
                                        .to_owned(),
                                    customer: shared.cfg.user.clone(),
                                    reason: r
                                        .rejection
                                        .map(|rej| format!("{rej:?}"))
                                        .unwrap_or_else(|| "unspecified".into()),
                                },
                                span,
                            );
                            Err(())
                        }
                        _ => Err(()),
                    }
                }
                Err(_) => {
                    shared.metrics.claim_dial_failures.inc();
                    Err(())
                }
            }
        }
    };
    let mut jobs = shared.jobs.lock();
    let Some(job) = jobs.iter_mut().find(|j| j.name == job_name) else {
        return;
    };
    job.claiming = false;
    match outcome {
        Ok(provider_name) => {
            job.status = JobStatus::Claimed {
                provider_contact: note.peer_contact.clone(),
                provider_name,
            };
        }
        Err(()) => {
            job.attempts += 1;
            match shared.cfg.backoff.delay(job.attempts) {
                Some(delay) => {
                    // Resubmit after the backoff: the matchmaker withdrew
                    // the matched pair, so re-advertising re-enters the
                    // next cycle — usually landing elsewhere.
                    job.status = JobStatus::Idle;
                    job.not_before = Instant::now() + delay;
                }
                None => {
                    job.status = JobStatus::Failed;
                    shared.metrics.jobs_failed.inc();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;
    use matchmaker::framing::FrameDecoder;
    use matchmaker::ticket::Ticket;

    fn job_ad() -> ClassAd {
        parse_classad(r#"[ Type = "Job"; Constraint = other.Type == "Machine"; Rank = 0 ]"#)
            .unwrap()
    }

    /// A fake matchmaker endpoint collecting advertisements. Self-ads
    /// (heartbeat telemetry) are skipped: these tests watch the job ads.
    fn recv_one_ad(listener: &TcpListener) -> Advertisement {
        loop {
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let mut dec = FrameDecoder::new();
            let msg =
                wire::recv(&mut s, &mut dec, Instant::now() + Duration::from_secs(5)).unwrap();
            match msg {
                Message::Advertise(a) if condor_obs::is_daemon_ad(&a.ad) => continue,
                Message::Advertise(a) => return a,
                other => panic!("expected Advertise, got {other:?}"),
            }
        }
    }

    fn fast_cfg(mm: String) -> CustomerConfig {
        CustomerConfig {
            user: "miron".into(),
            matchmaker: mm,
            heartbeat: Duration::from_millis(50),
            backoff: Backoff {
                initial: Duration::from_millis(5),
                max_attempts: 2,
                ..Backoff::default()
            },
            ..CustomerConfig::default()
        }
    }

    #[test]
    fn advertises_jobs_with_owner_and_name() {
        let mm = TcpListener::bind("127.0.0.1:0").unwrap();
        let ca = CustomerAgent::spawn(
            fast_cfg(mm.local_addr().unwrap().to_string()),
            vec![("job-1".into(), job_ad())],
        )
        .unwrap();
        let adv = recv_one_ad(&mm);
        assert_eq!(adv.kind, EntityKind::Customer);
        assert_eq!(adv.ad.get_string("Name"), Some("job-1"));
        assert_eq!(adv.ad.get_string("Owner"), Some("miron"));
        assert_eq!(adv.contact, ca.addr().to_string());
        assert_eq!(ca.jobs(), vec![("job-1".to_string(), JobStatus::Idle)]);
        ca.shutdown();
    }

    #[test]
    fn notification_triggers_claim_and_placement() {
        let mm = TcpListener::bind("127.0.0.1:0").unwrap();
        // Stand-in provider that accepts whatever it is sent.
        let provider = TcpListener::bind("127.0.0.1:0").unwrap();
        let provider_addr = provider.local_addr().unwrap().to_string();
        let ticket = Ticket::from_raw(42);
        let provider_thread = std::thread::spawn(move || {
            let (mut s, _) = provider.accept().unwrap();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let mut dec = FrameDecoder::new();
            let msg =
                wire::recv(&mut s, &mut dec, Instant::now() + Duration::from_secs(5)).unwrap();
            let Message::Claim(req) = msg else {
                panic!("{msg:?}")
            };
            assert_eq!(req.ticket, ticket);
            assert_eq!(req.customer_ad.get_string("Name"), Some("job-1"));
            wire::send(
                &mut s,
                &Message::ClaimReply(matchmaker::protocol::ClaimResponse {
                    accepted: true,
                    rejection: None,
                    provider_ad: parse_classad(r#"[ Name = "leonardo" ]"#).unwrap(),
                }),
            )
            .unwrap();
        });

        let ca = CustomerAgent::spawn(
            fast_cfg(mm.local_addr().unwrap().to_string()),
            vec![("job-1".into(), job_ad())],
        )
        .unwrap();
        let adv = recv_one_ad(&mm);
        // Play matchmaker: notify the CA of the match.
        let note = MatchNotification {
            own_ad: adv.ad.clone(),
            peer_ad: parse_classad(r#"[ Name = "leonardo" ]"#).unwrap(),
            peer_contact: provider_addr.clone(),
            ticket: Some(ticket),
        };
        wire::send_oneway(&adv.contact, &Message::Notify(note), &IoConfig::default()).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        while !ca.all_claimed() {
            assert!(
                Instant::now() < deadline,
                "claim never landed: {:?}",
                ca.jobs()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        provider_thread.join().unwrap();
        match &ca.jobs()[0].1 {
            JobStatus::Claimed {
                provider_contact,
                provider_name,
            } => {
                assert_eq!(provider_contact, &provider_addr);
                assert_eq!(provider_name, "leonardo");
            }
            s => panic!("{s:?}"),
        }
        assert_eq!(ca.stats().claims_accepted, 1);
        ca.shutdown();
    }

    #[test]
    fn dead_provider_exhausts_budget_and_fails_the_job() {
        let mm = TcpListener::bind("127.0.0.1:0").unwrap();
        let mm_addr = mm.local_addr().unwrap().to_string();
        let dead_provider = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        // The listener's backlog absorbs the CA's ads without an accept loop.
        let ca = CustomerAgent::spawn(fast_cfg(mm_addr), vec![("job-1".into(), job_ad())]).unwrap();
        let note = |ad: ClassAd| MatchNotification {
            own_ad: ad,
            peer_ad: parse_classad(r#"[ Name = "ghost" ]"#).unwrap(),
            peer_contact: dead_provider.clone(),
            ticket: Some(Ticket::from_raw(1)),
        };
        let contact = ca.addr().to_string();
        let mut own = job_ad();
        own.set_str("Name", "job-1");
        // Each failed dial burns one attempt; budget is 2.
        let deadline = Instant::now() + Duration::from_secs(20);
        while ca.stats().jobs_failed == 0 {
            assert!(
                Instant::now() < deadline,
                "job never failed: {:?}",
                ca.jobs()
            );
            let _ = wire::send_oneway(
                &contact,
                &Message::Notify(note(own.clone())),
                &IoConfig::default(),
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(ca.jobs()[0].1, JobStatus::Failed);
        assert!(ca.stats().claim_dial_failures >= 3);
        ca.shutdown();
        drop(mm);
    }
}
