//! Bounded exponential backoff for agent retries.
//!
//! Everything an agent retries — re-dialing the matchmaker, resubmitting
//! a request after a rejected or failed claim — is paced by a [`Backoff`]:
//! deterministic (no jitter, so tests and simulations reproduce),
//! exponentially growing, capped, and exhaustible.

use std::time::Duration;

/// Capped exponential backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Growth factor per subsequent retry.
    pub multiplier: f64,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Retries allowed before giving up (`u32::MAX` ≈ never give up).
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(100),
            multiplier: 2.0,
            max_delay: Duration::from_secs(5),
            max_attempts: 8,
        }
    }
}

impl Backoff {
    /// A schedule that never exhausts (for heartbeat-style loops that must
    /// keep trying as long as the agent lives).
    pub fn unlimited(initial: Duration, max_delay: Duration) -> Self {
        Backoff {
            initial,
            max_delay,
            max_attempts: u32::MAX,
            ..Backoff::default()
        }
    }

    /// Delay before retry number `attempt` (1-based: `delay(1)` follows the
    /// first failure). `None` once the attempt budget is exhausted.
    pub fn delay(&self, attempt: u32) -> Option<Duration> {
        if attempt == 0 || attempt > self.max_attempts {
            return None;
        }
        let factor = self
            .multiplier
            .powi(attempt.saturating_sub(1).min(63) as i32);
        let secs = (self.initial.as_secs_f64() * factor).min(self.max_delay.as_secs_f64());
        Some(Duration::from_secs_f64(secs.max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_grows_then_caps() {
        let b = Backoff::default();
        assert_eq!(b.delay(1), Some(Duration::from_millis(100)));
        assert_eq!(b.delay(2), Some(Duration::from_millis(200)));
        assert_eq!(b.delay(3), Some(Duration::from_millis(400)));
        // Monotone non-decreasing up to the cap.
        let mut prev = Duration::ZERO;
        for attempt in 1..=b.max_attempts {
            let d = b.delay(attempt).unwrap();
            assert!(d >= prev);
            assert!(d <= b.max_delay);
            prev = d;
        }
        assert_eq!(
            b.delay(7),
            Some(Duration::from_secs(5)),
            "capped at max_delay"
        );
    }

    #[test]
    fn budget_exhausts() {
        let b = Backoff {
            max_attempts: 3,
            ..Backoff::default()
        };
        assert!(b.delay(3).is_some());
        assert_eq!(b.delay(4), None);
        assert_eq!(b.delay(0), None, "attempt numbering is 1-based");
    }

    #[test]
    fn unlimited_never_exhausts() {
        let b = Backoff::unlimited(Duration::from_millis(50), Duration::from_secs(1));
        assert_eq!(b.delay(1_000_000), Some(Duration::from_secs(1)));
    }
}
