//! Assemble a whole pool — daemon, resource agents, customer agents — on
//! loopback, for integration tests, demos, and benches.
//!
//! [`PoolBuilder`] holds fast-loopback defaults (sub-second cycle and
//! heartbeat intervals) so a full advertise → negotiate → notify → claim
//! round completes in well under a second; [`PoolHandle`] owns every
//! component and tears the whole pool down — agents first, daemon last —
//! in one [`PoolHandle::shutdown`] call that joins every thread.

use crate::customer::{CustomerAgent, CustomerConfig};
use crate::daemon::{DaemonConfig, MatchmakerDaemon};
use crate::resource::{ResourceAgent, ResourceConfig};
use crate::retry::Backoff;
use classad::ClassAd;
use std::time::{Duration, Instant};

/// Declarative pool assembly; see the module docs.
#[derive(Debug)]
pub struct PoolBuilder {
    /// Daemon settings (the bind address defaults to loopback).
    pub daemon: DaemonConfig,
    /// Template for every resource agent (`name`, `matchmaker`, and
    /// `ticket_seed` are filled in per machine at spawn).
    pub resource_template: ResourceConfig,
    /// Template for every customer agent (`user` and `matchmaker` are
    /// filled in per user at spawn).
    pub customer_template: CustomerConfig,
    machines: Vec<(String, ClassAd)>,
    users: Vec<(String, Vec<(String, ClassAd)>)>,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        PoolBuilder::new()
    }
}

impl PoolBuilder {
    /// A builder tuned for loopback: fast cycles, fast heartbeats, short
    /// retry delays.
    pub fn new() -> Self {
        let backoff = Backoff {
            initial: Duration::from_millis(25),
            max_delay: Duration::from_millis(250),
            ..Backoff::default()
        };
        PoolBuilder {
            daemon: DaemonConfig {
                cycle_interval: Duration::from_millis(150),
                ..DaemonConfig::default()
            },
            resource_template: ResourceConfig {
                heartbeat: Duration::from_millis(100),
                lease: Duration::from_secs(30),
                backoff: backoff.clone(),
                ..ResourceConfig::default()
            },
            customer_template: CustomerConfig {
                heartbeat: Duration::from_millis(100),
                lease: Duration::from_secs(30),
                backoff,
                ..CustomerConfig::default()
            },
            machines: Vec::new(),
            users: Vec::new(),
        }
    }

    /// Add a machine advertising `ad` under `name`.
    pub fn machine(mut self, name: impl Into<String>, ad: ClassAd) -> Self {
        self.machines.push((name.into(), ad));
        self
    }

    /// Add a user submitting the given `(job name, ad)` batch.
    pub fn user(mut self, user: impl Into<String>, jobs: Vec<(String, ClassAd)>) -> Self {
        self.users.push((user.into(), jobs));
        self
    }

    /// Spawn the daemon, then every agent pointed at it.
    pub fn spawn(self) -> std::io::Result<PoolHandle> {
        let daemon = MatchmakerDaemon::spawn(self.daemon)?;
        let mm = daemon.addr().to_string();
        let mut resources = Vec::with_capacity(self.machines.len());
        for (i, (name, ad)) in self.machines.into_iter().enumerate() {
            let cfg = ResourceConfig {
                name,
                matchmaker: mm.clone(),
                ticket_seed: self.resource_template.ticket_seed.wrapping_add(i as u64),
                ..self.resource_template.clone()
            };
            resources.push(ResourceAgent::spawn(cfg, ad)?);
        }
        let mut handle = PoolHandle {
            daemon,
            resources,
            customers: Vec::new(),
            customer_template: self.customer_template,
        };
        for (user, jobs) in self.users {
            handle.add_customer(user, jobs)?;
        }
        Ok(handle)
    }
}

/// A running pool; owns every component.
#[derive(Debug)]
pub struct PoolHandle {
    daemon: MatchmakerDaemon,
    resources: Vec<ResourceAgent>,
    customers: Vec<CustomerAgent>,
    customer_template: CustomerConfig,
}

impl PoolHandle {
    /// The matchmaker daemon.
    pub fn daemon(&self) -> &MatchmakerDaemon {
        &self.daemon
    }

    /// Every running resource agent.
    pub fn resources(&self) -> &[ResourceAgent] {
        &self.resources
    }

    /// Every running customer agent.
    pub fn customers(&self) -> &[CustomerAgent] {
        &self.customers
    }

    /// Look up a resource agent by machine name.
    pub fn resource(&self, name: &str) -> Option<&ResourceAgent> {
        self.resources.iter().find(|r| r.name() == name)
    }

    /// Look up a customer agent by user.
    pub fn customer(&self, user: &str) -> Option<&CustomerAgent> {
        self.customers.iter().find(|c| c.user() == user)
    }

    /// Spawn another customer agent against the running daemon.
    pub fn add_customer(
        &mut self,
        user: impl Into<String>,
        jobs: Vec<(String, ClassAd)>,
    ) -> std::io::Result<&CustomerAgent> {
        let cfg = CustomerConfig {
            user: user.into(),
            matchmaker: self.daemon.addr().to_string(),
            ..self.customer_template.clone()
        };
        self.customers.push(CustomerAgent::spawn(cfg, jobs)?);
        Ok(self.customers.last().expect("just pushed"))
    }

    /// Kill the named resource agent **abruptly** — no withdraw, listener
    /// closed, threads joined — leaving its stale ad behind in the
    /// matchmaker (the fault the claim protocol is built to absorb).
    /// Returns `false` if no such machine is running.
    pub fn kill_resource(&mut self, name: &str) -> bool {
        match self.resources.iter().position(|r| r.name() == name) {
            Some(i) => {
                self.resources.swap_remove(i).kill();
                true
            }
            None => false,
        }
    }

    /// `true` once every job of every customer is claimed.
    pub fn all_claimed(&self) -> bool {
        !self.customers.is_empty() && self.customers.iter().all(|c| c.all_claimed())
    }

    /// Poll `pred` every few milliseconds until it holds or `timeout`
    /// elapses; returns whether it held.
    pub fn wait_for(&self, timeout: Duration, pred: impl Fn(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful teardown: customers release claims and withdraw request
    /// ads, resources withdraw their ads, and the daemon drains last.
    /// Every thread in the pool is joined before this returns.
    pub fn shutdown(mut self) {
        for c in self.customers.drain(..) {
            c.shutdown();
        }
        for r in self.resources.drain(..) {
            r.shutdown();
        }
        self.daemon.shutdown();
    }
}
