//! # condor-pool — the live TCP pool runtime
//!
//! The paper's five components are *network* protocols: ads flow to the
//! matchmaker, notifications flow back, and matched parties contact each
//! other **directly** to claim. The `matchmaker` crate implements the
//! messages and decision procedures over in-memory frames; this crate
//! supplies the missing substrate — long-running daemons on real
//! `std::net` sockets, reusing the wire format unchanged:
//!
//! * [`MatchmakerDaemon`] — a TCP listener wrapping
//!   [`matchmaker::Matchmaker`]: thread-per-connection with a bounded
//!   accept pool, per-connection [`matchmaker::FrameDecoder`] with a
//!   frame-size guard, read/write deadlines, a background
//!   negotiation-cycle ticker that dials matched parties to deliver
//!   notifications, and structured [`Message::Error`] replies before
//!   closing on protocol violations.
//! * [`ResourceAgent`] — a provider runtime: periodic ad refresh with
//!   lease renewal, a listener for *direct* claim connections that
//!   re-verifies constraints against current state and verifies tickets.
//! * [`CustomerAgent`] — a customer runtime: advertises requests,
//!   receives [`matchmaker::MatchNotification`]s, dials the provider
//!   directly to claim, and resubmits with bounded exponential backoff on
//!   rejection or provider death.
//! * [`PoolHandle`] / [`PoolBuilder`] — run an entire pool on loopback
//!   for tests and demos, with one-call graceful shutdown.
//!
//! Everything is deadline-bounded: connects, reads, and writes all carry
//! timeouts ([`IoConfig`]), and retries follow a capped exponential
//! [`Backoff`]. Weak consistency does the rest — a dead peer or a lost
//! notification costs a cycle, never a wrong allocation.
//!
//! [`Message::Error`]: matchmaker::Message::Error

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod customer;
pub mod daemon;
pub mod failover;
pub(crate) mod observe;
pub mod pool;
pub mod resource;
pub mod wire;

/// Re-export of the retry schedule, which moved to `matchmaker::retry` so
/// socket-free crates (e.g. `condor-flock`) can pace their own retries.
/// Existing `condor_pool::retry::Backoff` paths keep working.
pub mod retry {
    pub use matchmaker::retry::Backoff;
}

pub use customer::{CustomerAgent, CustomerConfig, CustomerStatsSnapshot, JobStatus};
pub use daemon::{
    AlarmConfig, DaemonConfig, DaemonStatsSnapshot, HaConfig, MatchmakerDaemon, ViewConfig,
};
pub use pool::{PoolBuilder, PoolHandle};
pub use resource::{ResourceAgent, ResourceConfig, ResourceStatsSnapshot};
pub use retry::Backoff;
pub use wire::{IoConfig, WireError};
