//! Leader discovery for agents in a high-availability pool.
//!
//! A standby matchmaker answers every advertisement, query, or analyze
//! request with a structured [`Message::Error`] whose detail is a
//! *leader redirect* — `leader-redirect: <host:port> epoch <n>` — or
//! `no-leader epoch <n>` while an election is still converging. Agents
//! configured with several matchmaker contacts use the helpers here to
//! follow those redirects: probe the current contact with a trivial
//! query, and on a redirect (or a dead socket) walk the contact list
//! until something answers like a leader.
//!
//! The probe is a `Query` with constraint `false`: the leader answers an
//! empty `QueryReply` (one cheap round trip), a standby answers its
//! redirect, and a pre-HA matchmaker — which knows nothing of leases —
//! answers the query too, so mixed pools degrade to "first contact
//! wins", exactly the old single-matchmaker behavior.

use crate::wire::{self, IoConfig, WireError};
use matchmaker::protocol::Message;

/// Render the redirect detail a standby embeds in its `Error` replies.
pub fn leader_redirect_detail(leader: Option<&str>, epoch: u64) -> String {
    match leader {
        Some(l) => format!("leader-redirect: {l} epoch {epoch}"),
        None => format!("no-leader epoch {epoch}"),
    }
}

/// Parse the leader contact out of a standby's `Error` detail; `None`
/// for anything that is not a leader redirect (including `no-leader`).
pub fn parse_leader_redirect(detail: &str) -> Option<String> {
    let rest = detail.strip_prefix("leader-redirect: ")?;
    let addr = rest.split_whitespace().next()?;
    (!addr.is_empty()).then(|| addr.to_string())
}

/// `true` when the error detail is any standby reply — a redirect or a
/// `no-leader` — as opposed to an ordinary protocol rejection.
pub fn is_standby_reply(detail: &str) -> bool {
    detail.starts_with("leader-redirect: ") || detail.starts_with("no-leader")
}

/// The cheap leadership probe (constraint `false` matches nothing, so
/// the reply is an empty ad list).
pub fn probe_query() -> Message {
    Message::Query {
        constraint: "false".into(),
        kind: None,
        projection: vec![],
    }
}

/// What one probed contact turned out to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    /// Answered the query: it serves the pool (the leader, or a pre-HA
    /// matchmaker).
    Leader,
    /// Redirected to this contact.
    RedirectTo(String),
    /// A standby with no elected leader yet.
    NoLeader,
    /// Unreachable, or answered with a non-redirect error.
    Dead,
}

/// Probe one matchmaker contact.
pub fn probe(contact: &str, io: &IoConfig) -> Probe {
    match wire::request_reply(contact, &probe_query(), io) {
        Ok(Message::QueryReply { .. }) => Probe::Leader,
        Ok(_) => Probe::Dead,
        Err(WireError::Remote(detail)) => match parse_leader_redirect(&detail) {
            Some(leader) => Probe::RedirectTo(leader),
            None if is_standby_reply(&detail) => Probe::NoLeader,
            None => Probe::Dead,
        },
        Err(_) => Probe::Dead,
    }
}

/// Walk `contacts` until one answers like the leader or names it in a
/// redirect. A redirect is trusted without a second probe: the standby
/// heard the leader's heartbeat more recently than we heard anything.
pub fn find_leader(contacts: &[String], io: &IoConfig) -> Option<String> {
    for contact in contacts {
        match probe(contact, io) {
            Probe::Leader => return Some(contact.clone()),
            Probe::RedirectTo(leader) => return Some(leader),
            Probe::NoLeader | Probe::Dead => continue,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_details_roundtrip() {
        let detail = leader_redirect_detail(Some("127.0.0.1:9618"), 7);
        assert_eq!(detail, "leader-redirect: 127.0.0.1:9618 epoch 7");
        assert_eq!(
            parse_leader_redirect(&detail).as_deref(),
            Some("127.0.0.1:9618")
        );
        assert!(is_standby_reply(&detail));
        let no_leader = leader_redirect_detail(None, 3);
        assert_eq!(no_leader, "no-leader epoch 3");
        assert_eq!(parse_leader_redirect(&no_leader), None);
        assert!(is_standby_reply(&no_leader));
    }

    #[test]
    fn ordinary_errors_are_not_redirects() {
        assert_eq!(parse_leader_redirect("unknown tag 11"), None);
        assert!(!is_standby_reply("matchmaker endpoint only accepts ..."));
    }

    #[test]
    fn dead_contacts_are_skipped() {
        // Bind-then-drop guarantees a dead port.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let io = IoConfig {
            connect_timeout: std::time::Duration::from_millis(200),
            ..IoConfig::default()
        };
        assert_eq!(probe(&dead, &io), Probe::Dead);
        assert_eq!(find_leader(&[dead], &io), None);
    }
}
