//! Shared observability plumbing for the pool daemons.
//!
//! Each daemon owns one [`Observer`]: a metrics [`Registry`], an optional
//! event [`Journal`], and the start instant its uptime is measured from.
//! The observer also builds the daemon's self-ad — the `DaemonAd = true`
//! telemetry classad that travels the normal advertising path and is
//! queried with `other.MyType == "..."` (see `condor_obs::selfad`).

use condor_obs::{self_ad, Event, Journal, JournalConfig, Registry};
use std::time::Instant;

/// One daemon's observability bundle.
#[derive(Debug)]
pub(crate) struct Observer {
    registry: Registry,
    journal: Option<Journal>,
    started: Instant,
}

impl Observer {
    /// Create the bundle, opening the journal if one is configured.
    pub(crate) fn new(journal: Option<JournalConfig>) -> std::io::Result<Observer> {
        let journal = journal.map(Journal::open).transpose()?;
        Ok(Observer {
            registry: Registry::new(),
            journal,
            started: Instant::now(),
        })
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Append `event` to the journal, if journaling is on.
    pub(crate) fn emit(&self, event: Event) {
        if let Some(j) = &self.journal {
            j.append(event);
        }
    }

    pub(crate) fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The daemon's current self-ad: identity + metrics snapshot + journal
    /// position (when journaling).
    pub(crate) fn build_self_ad(&self, name: &str, my_type: &str) -> classad::ClassAd {
        let mut ad = self_ad(name, my_type, self.uptime_secs(), &self.registry.snapshot());
        if let Some(j) = &self.journal {
            ad.set_int("JournalPosition", j.position() as i64);
            ad.set_int("JournalIoErrors", j.io_errors() as i64);
        }
        ad
    }
}

/// The `Name` attribute of a daemon's self-ad: distinct from the primary
/// ad's name (the store is keyed by name) but derived from it.
pub(crate) fn self_ad_name(primary: &str) -> String {
    format!("{primary}#stats")
}
