//! Shared observability plumbing for the pool daemons.
//!
//! Each daemon owns one [`Observer`]: a metrics [`Registry`], an optional
//! event [`Journal`], and the start instant its uptime is measured from.
//! The observer also builds the daemon's self-ad — the `DaemonAd = true`
//! telemetry classad that travels the normal advertising path and is
//! queried with `other.MyType == "..."` (see `condor_obs::selfad`).

use condor_obs::trace::SpanContext;
use condor_obs::{schema, self_ad, Counter, Event, Journal, JournalConfig, Registry};
use std::sync::Arc;
use std::time::Instant;

/// One daemon's observability bundle.
#[derive(Debug)]
pub(crate) struct Observer {
    registry: Registry,
    journal: Option<Journal>,
    journal_dropped: Arc<Counter>,
    started: Instant,
}

impl Observer {
    /// Create the bundle, opening the journal if one is configured.
    pub(crate) fn new(journal: Option<JournalConfig>) -> std::io::Result<Observer> {
        let journal = journal.map(Journal::open).transpose()?;
        let registry = Registry::new();
        let journal_dropped = registry.counter(schema::JOURNAL_DROPPED);
        Ok(Observer {
            registry,
            journal,
            journal_dropped,
            started: Instant::now(),
        })
    }

    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Append an untraced `event` to the journal, if journaling is on.
    pub(crate) fn emit(&self, event: Event) {
        self.emit_traced(event, None);
    }

    /// Append `event` under an optional span. An append that fails at the
    /// I/O layer drops the event — the journal's own `io_errors` records
    /// the failure, and `JournalDropped` here records the loss where
    /// self-ad watchers can see it climbing.
    pub(crate) fn emit_traced(&self, event: Event, span: Option<SpanContext>) {
        if let Some(j) = &self.journal {
            if !j.append_traced(event, span).written {
                self.journal_dropped.inc();
            }
        }
    }

    pub(crate) fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The daemon's current self-ad: identity + metrics snapshot + journal
    /// position (when journaling).
    pub(crate) fn build_self_ad(&self, name: &str, my_type: &str) -> classad::ClassAd {
        let mut ad = self_ad(name, my_type, self.uptime_secs(), &self.registry.snapshot());
        if let Some(j) = &self.journal {
            ad.set_int("JournalPosition", j.position() as i64);
            ad.set_int("JournalIoErrors", j.io_errors() as i64);
            ad.set_int("JournalUnknownKind", j.unknown_kind() as i64);
        }
        ad
    }
}

/// The `Name` attribute of a daemon's self-ad: distinct from the primary
/// ad's name (the store is keyed by name) but derived from it.
pub(crate) fn self_ad_name(primary: &str) -> String {
    format!("{primary}#stats")
}

/// Handles on a daemon's wire-throughput counters, registered under the
/// shared schema so `pool_top` can show network rates next to match
/// rates. Clone-cheap (`Arc`s all the way down).
#[derive(Debug, Clone)]
pub(crate) struct WireCounters {
    pub(crate) frames_in: Arc<Counter>,
    pub(crate) frames_out: Arc<Counter>,
    pub(crate) bytes_in: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
}

impl WireCounters {
    pub(crate) fn new(registry: &Registry) -> WireCounters {
        WireCounters {
            frames_in: registry.counter(schema::FRAMES_IN),
            frames_out: registry.counter(schema::FRAMES_OUT),
            bytes_in: registry.counter(schema::BYTES_IN),
            bytes_out: registry.counter(schema::BYTES_OUT),
        }
    }

    /// Record one sent frame of `bytes` bytes (framing included).
    pub(crate) fn sent(&self, bytes: u64) {
        self.frames_out.inc();
        self.bytes_out.add(bytes);
    }

    /// Record `bytes` read off a socket (frames are counted separately as
    /// they decode, since reads are not frame-aligned).
    pub(crate) fn read_bytes(&self, bytes: u64) {
        self.bytes_in.add(bytes);
    }

    /// Record one frame decoded off the wire.
    pub(crate) fn frame_in(&self) {
        self.frames_in.inc();
    }
}
