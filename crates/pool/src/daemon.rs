//! The matchmaker as a long-running TCP daemon.
//!
//! One listener thread accepts connections into a bounded pool of
//! connection-handler threads; each connection gets its own
//! [`FrameDecoder`] (with the daemon's frame-size guard) and the stream's
//! read timeout doubles as an idle timeout. A background ticker runs
//! negotiation cycles and dials both matched parties' contact addresses
//! to deliver the step-3 notifications — which is why this daemon's
//! advertising protocol demands real `host:port` contacts.
//!
//! Protocol violations never strand a peer: the offending connection gets
//! a structured [`Message::Error`] reply and is then closed — and, when a
//! journal is configured, leaves a `FrameRejected` event with the peer's
//! address and the reason.
//!
//! Observability: the daemon keeps a `condor_obs` metrics registry and
//! publishes a self-ad (`MyType == "MatchmakerStats"`, `DaemonAd = true`)
//! into its own ad store — at spawn, after every negotiation cycle, and
//! freshly before serving any query — so `Message::Query` with
//! `other.MyType == "MatchmakerStats"` reads live daemon health over the
//! same wire as any other query.

use crate::failover::{find_leader, leader_redirect_detail};
use crate::observe::{self_ad_name, Observer, WireCounters};
use crate::wire::{self, IoConfig, WireError};
use classad::ClassAd;
use condor_flock::{FlockManager, QueryOutcome};
use condor_ha::{recover_pool, Election, ElectionConfig, LeaseVerdict, PoolSnapshot, Tick};
use condor_obs::{schema, Event, JournalConfig, TraceContext};
use matchmaker::framing::FrameDecoder;
use matchmaker::negotiate::{NegotiatorConfig, UnmatchedCluster};
use matchmaker::protocol::{
    Advertisement, AdvertisingProtocol, EntityKind, MatchNotification, Message,
};
use matchmaker::service::Matchmaker;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// High-availability tunables: run this daemon as one member of a
/// matchmaker HA set instead of a lone leader.
///
/// An HA daemon boots as a *standby*: it listens one full [`lease`] for
/// the incumbent's heartbeat before contending, redirects agents to the
/// leader it observes, and negotiates only while it holds the lease
/// itself (see `condor_ha::Election` for the protocol). Everything else —
/// sockets, framing, journaling — is identical to a lone daemon.
///
/// [`lease`]: HaConfig::lease
#[derive(Debug, Clone)]
pub struct HaConfig {
    /// Contact addresses of the *other* matchmakers in the set. May start
    /// empty and be filled in with [`MatchmakerDaemon::set_ha_peers`] once
    /// ephemeral ports are known.
    pub peers: Vec<String>,
    /// Leader-lease length. The leader heartbeats several times per
    /// lease; a standby waits out a full lease before calling an
    /// election, so failover completes within roughly one lease.
    pub lease: Duration,
    /// Journal to replay on inauguration (last checkpoint plus tail).
    /// `None` replays this daemon's own [`DaemonConfig::journal`] — the
    /// right choice when the HA set shares a journal path on a common
    /// filesystem, and a no-op (recover by re-advertisement alone) when
    /// each member journals privately.
    pub recovery_path: Option<PathBuf>,
}

impl Default for HaConfig {
    fn default() -> Self {
        HaConfig {
            peers: Vec::new(),
            lease: Duration::from_secs(10),
            recovery_path: None,
        }
    }
}

/// Pool-history (CondorView) tunables: run an embedded view collector
/// inside this matchmaker.
///
/// The collector polls the daemon's own ad store for self-ads every
/// [`sample_interval`], folds them into a [`condor_view::HistoryStore`]
/// (pool utilization, match/flock rates, leader epochs, per-daemon
/// gauges, absent tombstones for departed agents), tails the daemon's
/// event journal, and — when [`federate`] is on and flocking is
/// configured — polls each flock peer's matchmaker self-ad so one store
/// renders a multi-pool picture. [`Message::HistoryQuery`] reads the
/// store over the wire; in an HA set every member collects (history
/// survives failover) but standbys redirect queries to the leader.
///
/// [`sample_interval`]: ViewConfig::sample_interval
/// [`federate`]: ViewConfig::federate
#[derive(Debug, Clone)]
pub struct ViewConfig {
    /// Period between collection passes.
    pub sample_interval: Duration,
    /// Checkpoint journal for the history store; `None` keeps history in
    /// memory only (lost on restart). With a journal, a restart recovers
    /// everything up to the last completed pass — at most one
    /// [`sample_interval`](ViewConfig::sample_interval) of loss.
    pub journal: Option<JournalConfig>,
    /// The store's downsampling tiers.
    pub history: condor_view::HistoryConfig,
    /// Also poll flock peers' matchmaker self-ads into per-peer series.
    pub federate: bool,
}

impl Default for ViewConfig {
    fn default() -> Self {
        ViewConfig {
            sample_interval: Duration::from_secs(10),
            journal: None,
            history: condor_view::HistoryConfig::default(),
            federate: true,
        }
    }
}

/// Alerting tunables: run an embedded [`condor_alarm::Monitor`] inside
/// this matchmaker.
///
/// The monitor thread matches every alert rule (each an ordinary classad,
/// see `condor_alarm::Rule`) against live telemetry — the daemon self-ads
/// in the ad store plus, when [`DaemonConfig::view`] is on, the presence
/// and history-summary ads derived from the view collector — every
/// [`interval`]. Raise/clear transitions are journaled as `AlertRaised` /
/// `AlertCleared`, the firing set is advertised in the matchmaker
/// self-ad (`ActiveAlerts`, `ActiveAlertSummary`), and
/// [`Message::AlertQuery`] reads the full alert state over the wire.
///
/// [`interval`]: AlarmConfig::interval
#[derive(Debug, Clone)]
pub struct AlarmConfig {
    /// Period between evaluation sweeps. All rule hysteresis
    /// (`ForIntervals` / `ClearIntervals`) counts in units of this.
    pub interval: Duration,
    /// Extra rule ads evaluated alongside (or instead of) the built-in
    /// pack. Ads without the `AlertRuleAd = true` marker are ignored;
    /// malformed rule ads fail the spawn.
    pub rules: Vec<ClassAd>,
    /// Start from `condor_alarm::default_pack()` (matchmaker down, agent
    /// absent, utilization collapse, match-rate stall, lease-expiry
    /// storm, flock peer flapping). Off means only [`rules`] apply.
    ///
    /// [`rules`]: AlarmConfig::rules
    pub default_pack: bool,
    /// How many finest-tier history buckets each presence / summary ad
    /// aggregates when the view collector feeds the monitor.
    pub history_window: usize,
    /// Flap-suppression knobs (window and transition budget).
    pub monitor: condor_alarm::MonitorConfig,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        AlarmConfig {
            interval: Duration::from_secs(10),
            rules: Vec::new(),
            default_pack: true,
            history_window: 6,
            monitor: condor_alarm::MonitorConfig::default(),
        }
    }
}

/// Daemon tunables.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub bind: String,
    /// Connections served concurrently; excess connections are refused
    /// with a [`Message::Error`] and closed immediately.
    pub max_connections: usize,
    /// Socket deadlines for serving connections and dialing notifications.
    pub io: IoConfig,
    /// Period between negotiation cycles.
    pub cycle_interval: Duration,
    /// Negotiator tunables for the wrapped service.
    pub negotiator: NegotiatorConfig,
    /// Largest frame a peer may send (see
    /// [`FrameDecoder::with_max_frame_len`]).
    pub max_frame_len: usize,
    /// Demand `host:port` contact addresses in ads (on by default: the
    /// daemon must dial contacts back to deliver notifications).
    pub require_socket_contact: bool,
    /// Daemon name; the self-ad advertises as `<name>#stats`.
    pub name: String,
    /// Event-journal destination; `None` disables journaling.
    pub journal: Option<JournalConfig>,
    /// Checkpoint the ad store into the journal every this many
    /// negotiation cycles while leading (`0` disables). Only meaningful
    /// with a journal; a restarting daemon resumes from the last
    /// checkpoint plus the journal tail instead of an empty store.
    pub checkpoint_every: u64,
    /// Run as one member of a high-availability set; `None` (the
    /// default) is the classic lone matchmaker, leader from birth.
    pub ha: Option<HaConfig>,
    /// Pool federation (flocking): consult these peer pools when a
    /// negotiation cycle leaves autoclusters unmatched, and grant free
    /// local providers to peers' forwarded representatives. `None` (the
    /// default) disables both directions; `Some` with an empty peer list
    /// answers peers' queries without ever forwarding its own.
    pub flock: Option<condor_flock::FlockConfig>,
    /// Embedded pool-history collector (CondorView). `None` (the
    /// default) keeps no history; `HistoryQuery` frames then get the
    /// service's structured rejection, exactly like a pre-view peer.
    pub view: Option<ViewConfig>,
    /// Embedded pool health monitor (alerting). `None` (the default)
    /// evaluates nothing; `AlertQuery` frames then get the service's
    /// structured rejection, exactly like a pre-alarm peer.
    pub alarm: Option<AlarmConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bind: "127.0.0.1:0".into(),
            max_connections: 64,
            io: IoConfig::default(),
            cycle_interval: Duration::from_secs(2),
            // Live pools attribute match failures out of the box: the
            // daemon serves `Analyze` queries, journals `CycleRejections`,
            // and advertises top reject reasons. (The library-level
            // `NegotiatorConfig::default()` keeps attribution off so
            // embedded/benchmark negotiators pay nothing.)
            negotiator: NegotiatorConfig {
                attribution: true,
                ..NegotiatorConfig::default()
            },
            max_frame_len: 4 * 1024 * 1024,
            require_socket_contact: true,
            name: "matchmaker".into(),
            journal: None,
            checkpoint_every: 10,
            ha: None,
            flock: None,
            view: None,
            alarm: None,
        }
    }
}

/// The daemon's metric handles — registered once at spawn, updated with
/// relaxed atomics on the hot paths (see `condor_obs::Registry`).
#[derive(Debug)]
struct DaemonMetrics {
    connections_accepted: Arc<condor_obs::Counter>,
    connections_refused: Arc<condor_obs::Counter>,
    active_connections: Arc<condor_obs::Gauge>,
    frames_handled: Arc<condor_obs::Counter>,
    frames_rejected: Arc<condor_obs::Counter>,
    error_replies: Arc<condor_obs::Counter>,
    cycles: Arc<condor_obs::Counter>,
    notifications_sent: Arc<condor_obs::Counter>,
    notifications_failed: Arc<condor_obs::Counter>,
    cycle_duration_ms: Arc<condor_obs::WindowedHistogram>,
    phase_queue_wait_ms: Arc<condor_obs::WindowedHistogram>,
    phase_negotiation_ms: Arc<condor_obs::WindowedHistogram>,
    leader_redirects: Arc<condor_obs::Counter>,
    elections_won: Arc<condor_obs::Counter>,
    checkpoints_written: Arc<condor_obs::Counter>,
    flock_queries_sent: Arc<condor_obs::Counter>,
    flock_queries_received: Arc<condor_obs::Counter>,
    flock_matches: Arc<condor_obs::Counter>,
    flock_grants: Arc<condor_obs::Counter>,
    flock_rejects: Arc<condor_obs::Counter>,
    jobs_flocked: Arc<condor_obs::Counter>,
    flock_peers_up: Arc<condor_obs::Gauge>,
    flock_peers_down: Arc<condor_obs::Gauge>,
    flock_peers_non_flocking: Arc<condor_obs::Gauge>,
    wire: WireCounters,
}

impl DaemonMetrics {
    fn new(reg: &condor_obs::Registry) -> Self {
        let window = Duration::from_secs(300);
        DaemonMetrics {
            connections_accepted: reg.counter(schema::CONNECTIONS_ACCEPTED),
            connections_refused: reg.counter(schema::CONNECTIONS_REFUSED),
            active_connections: reg.gauge(schema::ACTIVE_CONNECTIONS),
            frames_handled: reg.counter(schema::FRAMES_HANDLED),
            frames_rejected: reg.counter(schema::FRAMES_REJECTED),
            error_replies: reg.counter(schema::ERROR_REPLIES),
            cycles: reg.counter(schema::CYCLES),
            notifications_sent: reg.counter(schema::NOTIFICATIONS_SENT),
            notifications_failed: reg.counter(schema::NOTIFICATIONS_FAILED),
            cycle_duration_ms: reg.histogram(schema::CYCLE_DURATION_MS, window),
            phase_queue_wait_ms: reg.histogram(schema::PHASE_QUEUE_WAIT_MS, window),
            phase_negotiation_ms: reg.histogram(schema::PHASE_NEGOTIATION_MS, window),
            leader_redirects: reg.counter(schema::LEADER_REDIRECTS),
            elections_won: reg.counter(schema::ELECTIONS_WON),
            checkpoints_written: reg.counter(schema::CHECKPOINTS_WRITTEN),
            flock_queries_sent: reg.counter(schema::FLOCK_QUERIES_SENT),
            flock_queries_received: reg.counter(schema::FLOCK_QUERIES_RECEIVED),
            flock_matches: reg.counter(schema::FLOCK_MATCHES),
            flock_grants: reg.counter(schema::FLOCK_GRANTS),
            flock_rejects: reg.counter(schema::FLOCK_REJECTS),
            jobs_flocked: reg.counter(schema::JOBS_FLOCKED),
            flock_peers_up: reg.gauge(schema::FLOCK_PEERS_UP),
            flock_peers_down: reg.gauge(schema::FLOCK_PEERS_DOWN),
            flock_peers_non_flocking: reg.gauge(schema::FLOCK_PEERS_NON_FLOCKING),
            wire: WireCounters::new(reg),
        }
    }
}

/// Point-in-time copy of the daemon counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStatsSnapshot {
    /// Connections admitted into the handler pool.
    pub connections_accepted: u64,
    /// Connections refused because the pool was full.
    pub connections_refused: u64,
    /// Decoded frames dispatched to the service.
    pub frames_handled: u64,
    /// Frames refused: undecodable bytes or out-of-protocol messages.
    pub frames_rejected: u64,
    /// Structured error replies sent before closing a connection.
    pub error_replies: u64,
    /// Negotiation cycles run by the ticker.
    pub cycles: u64,
    /// Match notifications delivered to contact addresses.
    pub notifications_sent: u64,
    /// Notification dials that failed (soft state: costs one cycle).
    pub notifications_failed: u64,
    /// Agent requests answered with a leader redirect while standing by.
    pub leader_redirects: u64,
    /// Elections this daemon has won (inaugurations).
    pub elections_won: u64,
    /// Ad-store checkpoints written into the journal.
    pub checkpoints_written: u64,
    /// Flock queries sent to peer pools.
    pub flock_queries_sent: u64,
    /// Flock queries received from peer pools.
    pub flock_queries_received: u64,
    /// Remote grants relayed to this pool's own customers.
    pub flock_matches: u64,
    /// Local providers granted to peer pools.
    pub flock_grants: u64,
    /// Inbound flock queries answered dry after a loop, hop-budget, or
    /// no-free-provider rejection.
    pub flock_rejects: u64,
}

struct Shared {
    service: Matchmaker,
    cfg: DaemonConfig,
    metrics: DaemonMetrics,
    observer: Observer,
    contact: String,
    shutdown: AtomicBool,
    active: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// When each traced customer ad was accepted, keyed by trace id:
    /// consumed at match time to feed the queue-wait phase histogram,
    /// age-pruned every cycle for requests that never match.
    queue_started: Mutex<HashMap<u64, Instant>>,
    /// The latest cycle's rejection summary (capped; see
    /// [`rejections_line`]), advertised as `RejectionTopReasons` in the
    /// self-ad. Empty when the last cycle left nothing unmatched.
    last_rejections_line: Mutex<String>,
    /// The leader-election state machine: [`Election::solo`] for a lone
    /// matchmaker, a contending standby for an HA set member.
    election: Mutex<Election>,
    /// Standbys that acknowledged our last heartbeat round (leader only).
    standby_count: AtomicUsize,
    /// The flock peer table (empty and inert without
    /// [`DaemonConfig::flock`]). Like the negotiator: not internally
    /// synchronized, held behind the mutex.
    flock: Mutex<FlockManager>,
    /// Hands each cycle's unmatched clusters to the `mm-flock` dialer
    /// thread; `None` when flocking is off (no thread to feed).
    flock_tx: Mutex<Option<mpsc::Sender<Vec<UnmatchedCluster>>>>,
    /// The embedded pool-history collector (`None` without
    /// [`DaemonConfig::view`]). Fed by the `mm-view` thread, read by
    /// `HistoryQuery` connections.
    view: Option<condor_view::Collector>,
    /// The embedded alert monitor (`None` without
    /// [`DaemonConfig::alarm`]). Swept by the `mm-alarm` thread, read by
    /// `AlertQuery` connections and the self-ad publisher.
    alarm: Option<condor_alarm::Monitor>,
}

/// A live matchmaker listening on TCP.
#[derive(Debug)]
pub struct MatchmakerDaemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    election: Option<JoinHandle<()>>,
    flock: Option<JoinHandle<()>>,
    view: Option<JoinHandle<()>>,
    alarm: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl MatchmakerDaemon {
    /// Bind the listener and start the accept and negotiation threads.
    pub fn spawn(mut cfg: DaemonConfig) -> std::io::Result<Self> {
        // Flocking with peers configured needs the negotiator to hand
        // back each cycle's unmatched clusters; pools without peers (or
        // without flocking at all) keep the hook off and pay nothing.
        let flock_peers = cfg.flock.as_ref().is_some_and(|f| !f.peers.is_empty());
        if flock_peers {
            cfg.negotiator.flocking = true;
        }
        let flock = FlockManager::new(cfg.flock.clone().unwrap_or_default());
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let protocol = AdvertisingProtocol {
            require_socket_contact: cfg.require_socket_contact,
            ..AdvertisingProtocol::default()
        };
        let observer = Observer::new(cfg.journal.clone())?;
        let metrics = DaemonMetrics::new(observer.registry());
        // The history collector recovers its store from its checkpoint
        // journal here, before any thread runs: a restarted view server
        // resumes with at most one sample interval missing.
        let view = cfg
            .view
            .as_ref()
            .map(|vc| condor_view::Collector::new(vc.history.clone(), vc.journal.clone()))
            .transpose()?;
        // A malformed rule ad fails the spawn here, not the first sweep:
        // a pool that boots with alerting on has validated rules.
        let alarm = cfg
            .alarm
            .as_ref()
            .map(|ac| {
                if ac.default_pack {
                    condor_alarm::Monitor::with_default_pack(&ac.rules, ac.monitor.clone())
                } else {
                    condor_alarm::Monitor::new(&ac.rules, ac.monitor.clone())
                }
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))
            })
            .transpose()?;
        let contact = addr.to_string();
        // A lone matchmaker leads from birth; an HA set member boots as a
        // standby and earns the lease (see `condor_ha::Election`).
        let election = match &cfg.ha {
            None => Election::solo(contact.clone()),
            Some(ha) => Election::new(
                ElectionConfig {
                    contact: contact.clone(),
                    peers: ha.peers.clone(),
                    lease_secs: ha.lease.as_secs().max(1),
                },
                wire::unix_now(),
            ),
        };
        let shared = Arc::new(Shared {
            service: Matchmaker::with_protocol(cfg.negotiator.clone(), protocol),
            cfg,
            metrics,
            observer,
            contact,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            queue_started: Mutex::new(HashMap::new()),
            last_rejections_line: Mutex::new(String::new()),
            election: Mutex::new(election),
            standby_count: AtomicUsize::new(0),
            flock: Mutex::new(flock),
            flock_tx: Mutex::new(None),
            view,
            alarm,
        });
        shared.observer.emit(Event::AgentRestarted {
            agent: "MatchmakerDaemon".into(),
            name: shared.cfg.name.clone(),
        });
        // A lone matchmaker restarting over an existing journal resumes
        // from its last checkpoint plus tail right now; an HA standby
        // defers recovery until (if ever) it is inaugurated.
        if shared.cfg.ha.is_none() {
            shared.recover_from_journal();
        }
        shared.publish_self_ad();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mm-accept".into())
                .spawn(move || accept_loop(&shared, listener))?
        };
        let ticker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mm-ticker".into())
                .spawn(move || ticker_loop(&shared))?
        };
        let election = match shared.cfg.ha {
            None => None,
            Some(_) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("mm-election".into())
                        .spawn(move || election_loop(&shared))?,
                )
            }
        };
        let flock = if flock_peers {
            let (tx, rx) = mpsc::channel();
            *shared.flock_tx.lock() = Some(tx);
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("mm-flock".into())
                    .spawn(move || flock_loop(&shared, rx))?,
            )
        } else {
            None
        };
        let view = if shared.view.is_some() {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("mm-view".into())
                    .spawn(move || view_loop(&shared))?,
            )
        } else {
            None
        };
        let alarm = if shared.alarm.is_some() {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("mm-alarm".into())
                    .spawn(move || alarm_loop(&shared))?,
            )
        } else {
            None
        };
        Ok(MatchmakerDaemon {
            shared,
            addr,
            accept: Some(accept),
            ticker: Some(ticker),
            election,
            flock,
            view,
            alarm,
        })
    }

    /// The bound listen address (dial this as `addr().to_string()`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped thread-safe service (for in-process inspection; remote
    /// parties use the socket).
    pub fn service(&self) -> &Matchmaker {
        &self.shared.service
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DaemonStatsSnapshot {
        let m = &self.shared.metrics;
        DaemonStatsSnapshot {
            connections_accepted: m.connections_accepted.get(),
            connections_refused: m.connections_refused.get(),
            frames_handled: m.frames_handled.get(),
            frames_rejected: m.frames_rejected.get(),
            error_replies: m.error_replies.get(),
            cycles: m.cycles.get(),
            notifications_sent: m.notifications_sent.get(),
            notifications_failed: m.notifications_failed.get(),
            leader_redirects: m.leader_redirects.get(),
            elections_won: m.elections_won.get(),
            checkpoints_written: m.checkpoints_written.get(),
            flock_queries_sent: m.flock_queries_sent.get(),
            flock_queries_received: m.flock_queries_received.get(),
            flock_matches: m.flock_matches.get(),
            flock_grants: m.flock_grants.get(),
            flock_rejects: m.flock_rejects.get(),
        }
    }

    /// `true` while this daemon holds the pool (always, without HA).
    pub fn is_leader(&self) -> bool {
        self.shared.election.lock().is_leader()
    }

    /// The highest election epoch this daemon has observed or won (0 for
    /// a lone matchmaker).
    pub fn leader_epoch(&self) -> u64 {
        self.shared.election.lock().epoch()
    }

    /// The leader this daemon currently believes in — itself while
    /// leading, the lease holder while standing by, `None` while an
    /// election is unresolved.
    pub fn leader_contact(&self) -> Option<String> {
        self.shared.election.lock().leader().map(String::from)
    }

    /// Replace the HA peer list. HA sets whose members bind ephemeral
    /// ports spawn first and exchange addresses afterwards; call this
    /// within the boot grace (one lease) so the first election sees the
    /// full set. A no-op for a daemon spawned without [`DaemonConfig::ha`].
    pub fn set_ha_peers(&self, peers: Vec<String>) {
        if self.shared.cfg.ha.is_some() {
            self.shared.election.lock().set_peers(peers);
        }
    }

    /// Per-peer flocking rows (empty without [`DaemonConfig::flock`]).
    pub fn flock_peers(&self) -> Vec<condor_flock::PeerSnapshot> {
        self.shared.flock.lock().snapshot()
    }

    /// The embedded history collector, when [`DaemonConfig::view`] is on
    /// (in-process inspection; remote parties send `HistoryQuery`).
    pub fn view(&self) -> Option<&condor_view::Collector> {
        self.shared.view.as_ref()
    }

    /// The embedded alert monitor, when [`DaemonConfig::alarm`] is on
    /// (in-process inspection; remote parties send `AlertQuery`).
    pub fn alarm(&self) -> Option<&condor_alarm::Monitor> {
        self.shared.alarm.as_ref()
    }

    /// How many events the daemon's journal has written (0 when
    /// journaling is off).
    pub fn journal_position(&self) -> u64 {
        self.shared.observer.journal().map_or(0, |j| j.position())
    }

    /// Stop accepting, finish in-flight connections, and join every
    /// thread. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.election.take() {
            let _ = h.join();
        }
        if let Some(h) = self.view.take() {
            let _ = h.join();
        }
        if let Some(h) = self.alarm.take() {
            let _ = h.join();
        }
        // Dropping the sender disconnects the dialer's queue so it exits
        // even mid-backlog.
        *self.shared.flock_tx.lock() = None;
        if let Some(h) = self.flock.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for MatchmakerDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    /// (Re)insert the daemon's self-ad into its own ad store. The lease
    /// outlives three cycle intervals (floor five minutes) so the ad
    /// survives quiet stretches; every refresh renews it.
    fn publish_self_ad(&self) {
        // Fold the peer table into the gauges before the registry
        // snapshot below bakes them into the ad.
        let peer_table = {
            let flock = self.flock.lock();
            if flock.is_enabled() {
                let c = flock.counters();
                self.metrics.flock_peers_up.set(c.peers_up as i64);
                self.metrics.flock_peers_down.set(c.peers_down as i64);
                self.metrics
                    .flock_peers_non_flocking
                    .set(c.peers_non_flocking as i64);
                Some(flock.peer_table())
            } else {
                None
            }
        };
        let mut ad = self
            .observer
            .build_self_ad(&self_ad_name(&self.cfg.name), schema::MATCHMAKER_STATS);
        if let Some(table) = peer_table {
            ad.set_str("FlockPeerTable", &table);
        }
        {
            let line = self.last_rejections_line.lock();
            if !line.is_empty() {
                ad.set_str("RejectionTopReasons", &line);
            }
        }
        // The firing set, severity-sorted. The numeric alert counters
        // (`ActiveAlerts`, `AlertsRaisedTotal`, ...) ride in via the
        // registry snapshot inside `build_self_ad`.
        if let Some(monitor) = &self.alarm {
            let summary = monitor.active_summary();
            if !summary.is_empty() {
                ad.set_str("ActiveAlertSummary", &summary);
            }
        }
        {
            let el = self.election.lock();
            ad.set_bool("IsLeader", el.is_leader());
            ad.set_int("LeaderEpoch", el.epoch() as i64);
            if let Some(leader) = el.leader() {
                ad.set_str("LeaderContact", leader);
            }
        }
        ad.set_int(
            "StandbyCount",
            self.standby_count.load(Ordering::Relaxed) as i64,
        );
        let lease = (3 * self.cfg.cycle_interval.as_secs()).max(300);
        let adv = Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: self.contact.clone(),
            ticket: None,
            expires_at: wire::unix_now() + lease,
        };
        // Failure here means the protocol rejected our own telemetry ad —
        // never fatal to matchmaking itself.
        let _ = self.service.publish_self_ad(adv, wire::unix_now());
    }

    /// Resume the ad store from the recovery journal's last checkpoint
    /// plus tail (both sides of every post-checkpoint match withdrawn —
    /// they are likely mid-claim). Quietly a no-op without a journal or
    /// without a checkpoint in it: soft state recovers those pools by
    /// re-advertisement alone.
    fn recover_from_journal(&self) {
        let path = self
            .cfg
            .ha
            .as_ref()
            .and_then(|ha| ha.recovery_path.clone())
            .or_else(|| self.cfg.journal.as_ref().map(|j| j.path.clone()));
        let Some(path) = path else { return };
        match recover_pool(&path) {
            Ok(rec) => {
                if let Some(store) = rec.adjusted_store() {
                    self.service.restore_state(&store);
                }
            }
            // A missing journal is a first boot; a corrupt checkpoint is
            // journaled so operators see the state loss, then the daemon
            // proceeds empty — agents re-advertise within a heartbeat.
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => self.observer.emit(Event::FrameRejected {
                peer: path.display().to_string(),
                reason: format!("journal recovery failed: {e}"),
            }),
        }
    }
}

/// The election thread for an HA set member: tick the state machine a few
/// times per lease, ship the heartbeats or bids it asks for, and fold the
/// replies back in. Lone matchmakers never run this thread.
fn election_loop(shared: &Arc<Shared>) {
    let lease = shared
        .cfg
        .ha
        .as_ref()
        .map(|ha| ha.lease)
        .unwrap_or(Duration::from_secs(10));
    let tick_every = (lease / 5).max(Duration::from_millis(50));
    // A deterministic per-daemon stagger applied before bidding breaks
    // the symmetry of simultaneous elections: the less-staggered standby
    // usually collects concessions before the other even bids. (A true
    // tie still converges — the election tie-breaks on contact order.)
    let stagger = {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        shared.contact.hash(&mut h);
        Duration::from_millis(h.finish() % (tick_every.as_millis().max(1) as u64))
    };
    loop {
        if wire::interruptible_sleep(&shared.shutdown, tick_every) {
            return;
        }
        let action = shared.election.lock().tick(wire::unix_now());
        match action {
            Tick::Wait => {}
            Tick::Lead { epoch, expires_at } => {
                let (leader, peers) = {
                    let el = shared.election.lock();
                    (el.contact().to_string(), el.peers().to_vec())
                };
                let mut standbys = 0usize;
                let mut stepped_down = false;
                for peer in &peers {
                    let heartbeat = Message::LeaderLease {
                        epoch,
                        leader: leader.clone(),
                        expires_at,
                    };
                    // A standby acks with its own lease view; a peer
                    // asserting a higher epoch unseats us on the spot.
                    if let Ok(Message::LeaderLease {
                        epoch: e,
                        leader: l,
                        expires_at: x,
                    }) = wire::request_reply(peer, &heartbeat, &shared.cfg.io)
                    {
                        standbys += 1;
                        if shared.election.lock().observe_lease(e, &l, x)
                            == LeaseVerdict::SteppedDown
                        {
                            stepped_down = true;
                            break;
                        }
                    }
                }
                shared
                    .standby_count
                    .store(if stepped_down { 0 } else { standbys }, Ordering::Relaxed);
                if stepped_down {
                    shared.publish_self_ad();
                }
            }
            Tick::Contend { epoch } => {
                if wire::interruptible_sleep(&shared.shutdown, stagger) {
                    return;
                }
                // The stagger may have let a faster standby win: bid only
                // if the lease is still lapsed.
                if !matches!(
                    shared.election.lock().tick(wire::unix_now()),
                    Tick::Contend { .. }
                ) {
                    continue;
                }
                let (candidate, peers) = {
                    let el = shared.election.lock();
                    (el.contact().to_string(), el.peers().to_vec())
                };
                for peer in &peers {
                    let bid = Message::ElectionBid {
                        epoch,
                        candidate: candidate.clone(),
                    };
                    // Dead peers and pre-HA matchmakers (structured
                    // rejection of tag 11) are concessions: they cannot
                    // out-vote a live candidate, so errors are ignored.
                    if let Ok(Message::LeaderLease {
                        epoch: e,
                        leader: l,
                        expires_at: x,
                    }) = wire::request_reply(peer, &bid, &shared.cfg.io)
                    {
                        shared.election.lock().observe_lease(e, &l, x);
                    }
                }
                let won = shared
                    .election
                    .lock()
                    .try_inaugurate(epoch, wire::unix_now());
                if won {
                    shared.metrics.elections_won.inc();
                    shared.observer.emit(Event::AgentRestarted {
                        agent: "MatchmakerLeader".into(),
                        name: format!("{} epoch {epoch}", shared.cfg.name),
                    });
                    // Inherit the pool: replay the recovery journal, then
                    // advertise leadership so redirected agents find us.
                    shared.recover_from_journal();
                    shared.publish_self_ad();
                }
            }
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared.metrics.connections_refused.inc();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.cfg.io.write_timeout));
            let _ = wire::send(
                &mut stream,
                &Message::Error {
                    detail: "connection limit reached, retry later".into(),
                },
            );
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.metrics.connections_accepted.inc();
        shared.metrics.active_connections.add(1);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("mm-conn".into())
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                conn_shared.metrics.active_connections.add(-1);
            });
        match handle {
            Ok(h) => {
                let mut conns = shared.conns.lock();
                conns.retain(|h| !h.is_finished());
                conns.push(h);
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.metrics.active_connections.add(-1);
            }
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    let _ = stream.set_read_timeout(Some(shared.cfg.io.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.io.write_timeout));
    let mut dec = FrameDecoder::with_max_frame_len(shared.cfg.max_frame_len);
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Drain everything decodable before blocking again.
        loop {
            match dec.next_message_traced() {
                Ok(Some((msg, frame_trace))) => {
                    shared.metrics.frames_handled.inc();
                    shared.metrics.wire.frame_in();
                    // HA traffic never reaches the matchmaking service:
                    // election frames are folded into the state machine and
                    // answered with our lease view, and while standing by
                    // every agent-facing request is answered with a
                    // leader-redirect error instead (the connection stays
                    // open — a redirect is advice, not a violation).
                    let ha_reply = match &msg {
                        Message::ElectionBid { epoch, candidate } => {
                            let (e, l, x) = shared.election.lock().observe_bid(
                                *epoch,
                                candidate,
                                wire::unix_now(),
                            );
                            Some(Message::LeaderLease {
                                epoch: e,
                                leader: l,
                                expires_at: x,
                            })
                        }
                        Message::LeaderLease {
                            epoch,
                            leader,
                            expires_at,
                        } => {
                            let mut el = shared.election.lock();
                            el.observe_lease(*epoch, leader, *expires_at);
                            Some(Message::LeaderLease {
                                epoch: el.epoch(),
                                leader: el.leader().unwrap_or_default().to_string(),
                                expires_at: el.lease_expires(),
                            })
                        }
                        // A solo daemon leads from birth — skip the
                        // election lock on the hot advertise path.
                        _ if shared.cfg.ha.is_none() => None,
                        _ => {
                            let el = shared.election.lock();
                            if el.is_leader() {
                                None
                            } else {
                                shared.metrics.leader_redirects.inc();
                                shared.metrics.error_replies.inc();
                                Some(Message::Error {
                                    detail: leader_redirect_detail(
                                        el.leader().filter(|l| *l != el.contact()),
                                        el.epoch(),
                                    ),
                                })
                            }
                        }
                    };
                    if let Some(reply) = ha_reply {
                        match wire::send(&mut stream, &reply) {
                            Ok(n) => shared.metrics.wire.sent(n as u64),
                            Err(_) => return,
                        }
                        continue;
                    }
                    // Flock traffic: a peer pool's forwarded representative,
                    // answered here before service dispatch (the HA match
                    // above already redirected standbys). A daemon with
                    // flocking off falls through to the service instead and
                    // rejects the message with a structured error — the
                    // same degradation a truly pre-flock peer produces by
                    // not decoding the tag at all.
                    if shared.cfg.flock.is_some() {
                        if let Message::FlockQuery {
                            origin,
                            members,
                            rep,
                        } = &msg
                        {
                            let (reply, reply_ctx) =
                                answer_flock_query(shared, origin, *members, rep, frame_trace);
                            match wire::send_traced(&mut stream, &reply, reply_ctx.as_ref()) {
                                Ok(n) => shared.metrics.wire.sent(n as u64),
                                Err(_) => return,
                            }
                            continue;
                        }
                    }
                    // Pool history: answered from the embedded collector
                    // (standbys were already redirected above, so only
                    // the leader serves). With the view off the message
                    // falls through to the service and earns the same
                    // structured rejection a pre-view peer produces by
                    // not decoding the tag at all.
                    if let Message::HistoryQuery { constraint, limit } = &msg {
                        if let Some(view) = &shared.view {
                            let reply = match view.query(constraint, *limit) {
                                Ok(ads) => Message::HistoryReply { ads },
                                Err(detail) => {
                                    shared.metrics.error_replies.inc();
                                    Message::Error { detail }
                                }
                            };
                            match wire::send(&mut stream, &reply) {
                                Ok(n) => shared.metrics.wire.sent(n as u64),
                                Err(_) => return,
                            }
                            continue;
                        }
                    }
                    // Alerting: answered from the embedded monitor. With
                    // the alarm off the message falls through to the
                    // service and earns the same structured rejection a
                    // pre-alarm peer produces by not decoding the tag.
                    if let Message::AlertQuery { constraint } = &msg {
                        if let Some(monitor) = &shared.alarm {
                            let reply = match monitor.query(constraint) {
                                Ok(ads) => Message::AlertReply { ads },
                                Err(detail) => {
                                    shared.metrics.error_replies.inc();
                                    Message::Error { detail }
                                }
                            };
                            match wire::send(&mut stream, &reply) {
                                Ok(n) => shared.metrics.wire.sent(n as u64),
                                Err(_) => return,
                            }
                            continue;
                        }
                    }
                    // Journal context, captured before the message moves.
                    let ad_info = match &msg {
                        Message::Advertise(adv) => Some((
                            format!("{:?}", adv.kind),
                            adv.ad.get_string("Name").unwrap_or("?").to_string(),
                            adv.contact.clone(),
                            adv.kind == EntityKind::Customer && !condor_obs::is_daemon_ad(&adv.ad),
                        )),
                        Message::Query { .. } => {
                            // Queries may target the self-ad: refresh it so
                            // the reply reflects this very moment.
                            shared.publish_self_ad();
                            None
                        }
                        _ => None,
                    };
                    // Adopt the peer's trace context — or, when this is an
                    // advertisement from a pre-tracing peer, mint a fresh
                    // trace here: the matchmaker is where a request enters
                    // the match lifecycle.
                    let (span, store_trace) = if ad_info.is_some() {
                        let ctx = frame_trace.unwrap_or_else(TraceContext::mint);
                        let span = ctx.begin_span();
                        (Some(span), Some(span.child_context()))
                    } else {
                        (None, None)
                    };
                    match shared
                        .service
                        .handle_message_traced(msg, wire::unix_now(), store_trace)
                    {
                        Ok(reply) => {
                            if let Some((kind, name, contact, is_request)) = ad_info {
                                shared.observer.emit_traced(
                                    Event::AdReceived {
                                        kind,
                                        name,
                                        contact,
                                    },
                                    span,
                                );
                                if is_request {
                                    if let Some(span) = span {
                                        shared
                                            .queue_started
                                            .lock()
                                            .insert(span.trace_id, Instant::now());
                                    }
                                }
                            }
                            if let Some(reply) = reply {
                                match wire::send_body(&mut stream, &reply) {
                                    Ok(n) => shared.metrics.wire.sent(n as u64),
                                    Err(_) => return,
                                }
                            }
                        }
                        Err(e) => {
                            // Structured rejection, then close: the peer
                            // sees why instead of a silent hangup.
                            reject_frame(shared, &mut stream, &peer, &e.to_string(), frame_trace);
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    reject_frame(shared, &mut stream, &peer, &e.to_string(), None);
                    return;
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                shared.metrics.wire.read_bytes(n as u64);
                dec.push(&buf[..n]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Idle past the read timeout: close (clients reconnect per
            // exchange, long-lived silence is a leak, not a session).
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => return,
            Err(_) => return,
        }
    }
}

/// Count, journal, and answer a refused frame: the peer gets a structured
/// [`Message::Error`]; the journal gets a `FrameRejected` with the peer's
/// address and the reason. When the offending frame carried a trace, the
/// rejection is journaled under it and the error reply carries it back.
fn reject_frame(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    peer: &str,
    reason: &str,
    trace: Option<TraceContext>,
) {
    shared.metrics.frames_rejected.inc();
    shared.metrics.error_replies.inc();
    let span = trace.map(|ctx| ctx.begin_span());
    shared.observer.emit_traced(
        Event::FrameRejected {
            peer: peer.to_string(),
            reason: reason.to_string(),
        },
        span,
    );
    let reply_ctx = span.map(|s| s.child_context());
    if let Ok(n) = wire::send_traced(
        stream,
        &Message::Error {
            detail: reason.to_string(),
        },
        reply_ctx.as_ref(),
    ) {
        shared.metrics.wire.sent(n as u64);
    }
}

/// The self-ad's `RejectionTopReasons` value: the first few clusters'
/// rejection tables, capped so a pathological pool cannot bloat the ad.
fn rejections_line(outcome: &matchmaker::negotiate::CycleOutcome) -> String {
    const MAX_SEGMENTS: usize = 3;
    let mut parts: Vec<String> = outcome
        .rejections
        .iter()
        .take(MAX_SEGMENTS)
        .map(|c| c.encode())
        .collect();
    if outcome.rejections.len() > MAX_SEGMENTS {
        parts.push(format!(
            "+{} more clusters",
            outcome.rejections.len() - MAX_SEGMENTS
        ));
    }
    parts.join(" | ")
}

/// Serve one inbound `FlockQuery`: admit it past the anti-loop checks,
/// try the local free pool, spend any remaining hop budget on this pool's
/// own peers, and answer with a `FlockOffer` (a grant, or dry). The reply
/// context chains the peer's trace so a cross-pool match stitches into
/// one span tree.
fn answer_flock_query(
    shared: &Arc<Shared>,
    origin: &str,
    members: u32,
    rep: &ClassAd,
    trace: Option<TraceContext>,
) -> (Message, Option<TraceContext>) {
    shared.metrics.flock_queries_received.inc();
    let span = trace.map(|ctx| ctx.begin_span());
    let reply_ctx = span.map(|s| s.child_context());
    let dry = Message::FlockOffer {
        pool: shared.contact.clone(),
        grant: None,
    };
    // Loops and spent hop budgets are answered dry rather than with an
    // `Error`: the query was well-formed, this pool just declines it, and
    // the origin's peer table keeps the pool Up.
    let admitted = match condor_flock::admit(rep, &shared.contact) {
        Ok(a) => a,
        Err(_) => {
            shared.metrics.flock_rejects.inc();
            return (dry, reply_ctx);
        }
    };
    let rep_name = rep.get_string("Name").unwrap_or("?").to_string();
    if let Some(grant) = shared.service.flock_match(rep, wire::unix_now()) {
        shared.metrics.flock_grants.inc();
        shared.observer.emit_traced(
            Event::FlockMatchMade {
                request: rep_name,
                offer: grant.ad.get_string("Name").unwrap_or("?").to_string(),
                origin: origin.to_string(),
            },
            span,
        );
        return (
            Message::FlockOffer {
                pool: shared.contact.clone(),
                grant: Some(grant),
            },
            reply_ctx,
        );
    }
    // Nothing free here: chain-forward to our own peers if the hop
    // budget allows, relaying any grant upstream in our own offer.
    if let Some(chained) = condor_flock::stamp_chain(rep, &admitted, &shared.contact) {
        let query_ctx = span.map(|s| s.child_context());
        if let Some((_, grant)) = flock_dial(shared, &chained, members, query_ctx.as_ref()) {
            shared.metrics.flock_grants.inc();
            shared.observer.emit_traced(
                Event::FlockMatchMade {
                    request: rep_name,
                    offer: grant.ad.get_string("Name").unwrap_or("?").to_string(),
                    origin: origin.to_string(),
                },
                span,
            );
            return (
                Message::FlockOffer {
                    pool: shared.contact.clone(),
                    grant: Some(grant),
                },
                reply_ctx,
            );
        }
    }
    shared.metrics.flock_rejects.inc();
    (dry, reply_ctx)
}

/// Dial the eligible peers with an already-stamped representative ad and
/// return the best grant, ranked by the representative's own `Rank`
/// (ties break toward earlier-configured peers). Each dial probes the
/// peer's contact list for its current leader first — a peer pool running
/// HA answers flock queries only at its leader — and the peer table is
/// updated around every exchange.
fn flock_dial(
    shared: &Arc<Shared>,
    stamped: &ClassAd,
    members: u32,
    trace: Option<&TraceContext>,
) -> Option<(String, Advertisement)> {
    let visited: Vec<String> = stamped
        .get_string(condor_flock::ATTR_VISITED)
        .map(|s| {
            s.split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let eligible = shared.flock.lock().eligible(wire::unix_now_ms(), &visited);
    let mut grants: Vec<(String, Advertisement)> = Vec::new();
    for peer in eligible {
        let (contacts, name) = {
            let flock = shared.flock.lock();
            (flock.contacts(peer).to_vec(), flock.name(peer).to_string())
        };
        shared.flock.lock().query_started(peer);
        let outcome = match find_leader(&contacts, &shared.cfg.io) {
            None => QueryOutcome::Failed,
            Some(leader) => {
                let query = Message::FlockQuery {
                    origin: shared.contact.clone(),
                    members,
                    rep: stamped.clone(),
                };
                match wire::request_reply_traced(&leader, &query, trace, &shared.cfg.io) {
                    Ok(exchange) => {
                        shared.metrics.flock_queries_sent.inc();
                        shared.metrics.wire.sent(exchange.bytes_out);
                        shared.metrics.wire.read_bytes(exchange.bytes_in);
                        shared.metrics.wire.frame_in();
                        match exchange.msg {
                            Message::FlockOffer {
                                grant: Some(adv), ..
                            } => {
                                grants.push((name, adv));
                                QueryOutcome::Granted
                            }
                            Message::FlockOffer { grant: None, .. } => QueryOutcome::Dry,
                            _ => QueryOutcome::Failed,
                        }
                    }
                    Err(WireError::Remote(detail)) => {
                        shared.metrics.flock_queries_sent.inc();
                        // A structured rejection of the tag itself marks a
                        // pre-flock peer, permanently skipped; any other
                        // remote error (a redirect mid-election, a protocol
                        // complaint) is a transient failure.
                        if detail.contains("unknown tag") {
                            QueryOutcome::NonFlocking
                        } else {
                            QueryOutcome::Failed
                        }
                    }
                    Err(_) => QueryOutcome::Failed,
                }
            }
        };
        shared
            .flock
            .lock()
            .query_finished(peer, outcome, wire::unix_now_ms());
    }
    let engine = shared.service.match_engine();
    let best = condor_flock::select_grant(stamped, &grants, &engine)?;
    grants.into_iter().nth(best)
}

/// The `mm-flock` dialer thread: drains each cycle's unmatched clusters,
/// forwards one representative per cluster to peer pools, and relays any
/// delegation grant to the representative's customer as an ordinary
/// `Notify` — the claim then runs directly, agent to remote agent.
fn flock_loop(shared: &Arc<Shared>, rx: mpsc::Receiver<Vec<UnmatchedCluster>>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let clusters = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(c) => c,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        for cluster in &clusters {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            flock_one_cluster(shared, cluster);
        }
        // Refresh the self-ad so the peer table reflects this round.
        shared.publish_self_ad();
    }
}

/// Flock one unmatched cluster: stamp its representative with the hop
/// budget, consult the peers, and deliver any grant.
fn flock_one_cluster(shared: &Arc<Shared>, cluster: &UnmatchedCluster) {
    let hop_budget = shared.flock.lock().hop_budget();
    let stamped = condor_flock::stamp_outbound(&cluster.rep_ad, hop_budget, &shared.contact);
    // The flock attempt is a child of the representative's match
    // lifecycle: the FlockQuery and the relayed Notify both carry this
    // span's child context, so the remote grant and the eventual direct
    // claim stitch into the same tree as a local match would.
    let span = cluster.trace.map(|ctx| ctx.begin_span());
    let query_ctx = span.map(|s| s.child_context());
    let Some((peer, grant)) =
        flock_dial(shared, &stamped, cluster.members as u32, query_ctx.as_ref())
    else {
        return;
    };
    let note = MatchNotification {
        own_ad: (*cluster.rep_ad).clone(),
        peer_ad: grant.ad.clone(),
        peer_contact: grant.contact.clone(),
        ticket: grant.ticket,
    };
    let notify_ctx = span.map(|s| s.child_context());
    match wire::send_oneway_traced(
        &cluster.customer_contact,
        &Message::Notify(note),
        notify_ctx.as_ref(),
        &shared.cfg.io,
    ) {
        Ok(n) => {
            shared.metrics.notifications_sent.inc();
            shared.metrics.wire.sent(n as u64);
        }
        Err(_) => {
            // Soft state, same as a local notification failure: the
            // grantor's provider re-advertises on its next heartbeat and
            // the customer retries; nothing to unwind.
            shared.metrics.notifications_failed.inc();
            return;
        }
    }
    shared.metrics.flock_matches.inc();
    shared.metrics.jobs_flocked.inc();
    // The representative found its machine elsewhere: withdraw its ad,
    // exactly as a local match would have.
    shared
        .service
        .withdraw(EntityKind::Customer, &cluster.rep_name);
    shared.observer.emit_traced(
        Event::JobFlocked {
            request: cluster.rep_name.clone(),
            offer: grant.ad.get_string("Name").unwrap_or("?").to_string(),
            peer,
        },
        span,
    );
}

/// The `mm-view` collector thread: every sample interval, poll the
/// daemon's own ad store for self-ads, fold them (plus the tailed event
/// journal and, when federating, each flock peer's matchmaker self-ad)
/// into the history store, and checkpoint the store into its journal.
///
/// Every HA set member runs this loop — history must survive a failover,
/// so standbys collect too — but the standby leader-redirect in
/// `serve_connection` means only the leader ever *serves* the history.
fn view_loop(shared: &Arc<Shared>) {
    let Some(view) = &shared.view else { return };
    let Some(vc) = shared.cfg.view.as_ref() else {
        return;
    };
    let reg = shared.observer.registry();
    let collections = reg.counter(schema::VIEW_COLLECTIONS);
    let samples = reg.counter(schema::VIEW_SAMPLES);
    let series = reg.gauge(schema::VIEW_SERIES);
    let mut last_observations = view.observations();
    loop {
        if wire::interruptible_sleep(&shared.shutdown, vc.sample_interval) {
            return;
        }
        // Refresh the self-ad first so this pass samples the counters as
        // of now, not as of the last cycle.
        shared.publish_self_ad();
        let now = wire::unix_now();
        let ads = daemon_self_ads(shared, now);
        view.ingest(condor_view::LOCAL_POOL, &ads, now);
        if let Some(jc) = &shared.cfg.journal {
            // The daemon's own event journal: an independent,
            // event-sourced view of the same activity the polled
            // counters report.
            let _ = view.tail_journal(condor_view::LOCAL_POOL, &jc.path, now);
        }
        if vc.federate {
            collect_flock_peers(shared, view, now);
        }
        view.checkpoint(shared.election.lock().epoch());
        // Fold collector health into the registry, so the next pass —
        // and any operator query — sees the view watching itself.
        collections.inc();
        let observations = view.observations();
        samples.add(observations.saturating_sub(last_observations));
        last_observations = observations;
        series.set(view.series_count() as i64);
    }
}

/// The `mm-alarm` monitor thread: every alarm interval, gather the
/// telemetry ads (daemon self-ads from the ad store, plus presence and
/// history-summary ads derived from the view collector when it is on),
/// run one monitor sweep, journal every raise/clear transition, and fold
/// the monitor's counters into the registry so the self-ad advertises
/// them.
///
/// The journal key for a transition is `rule@subject` — the same key the
/// monitor tracks — so replaying the journal reconstructs the exact
/// raise/clear sequence per alert.
fn alarm_loop(shared: &Arc<Shared>) {
    let Some(monitor) = &shared.alarm else { return };
    let Some(ac) = shared.cfg.alarm.as_ref() else {
        return;
    };
    let reg = shared.observer.registry();
    let active = reg.gauge(schema::ACTIVE_ALERTS);
    let raised = reg.counter(schema::ALERTS_RAISED);
    let cleared = reg.counter(schema::ALERTS_CLEARED);
    let rules = reg.gauge(schema::ALERT_RULES);
    let flaps = reg.counter(schema::ALERT_FLAPS_SUPPRESSED);
    let evaluations = reg.counter(schema::ALERT_EVALUATIONS);
    rules.set(monitor.rule_count() as i64);
    let mut last_flaps = 0u64;
    loop {
        if wire::interruptible_sleep(&shared.shutdown, ac.interval) {
            return;
        }
        // Refresh the self-ad first so the sweep judges the matchmaker
        // as of now — a stalled cycle counter, not a stale ad.
        shared.publish_self_ad();
        let now = wire::unix_now();
        let mut telemetry = daemon_self_ads(shared, now);
        if let Some(view) = &shared.view {
            telemetry.extend(condor_alarm::view_telemetry(view, ac.history_window));
        }
        for t in monitor.evaluate(&telemetry, now) {
            let key = format!("{}@{}", t.rule, t.subject);
            if t.raised {
                raised.inc();
                shared.observer.emit(Event::AlertRaised {
                    rule: key,
                    severity: t.severity,
                    detail: t.detail,
                });
            } else {
                cleared.inc();
                shared.observer.emit(Event::AlertCleared {
                    rule: key,
                    severity: t.severity,
                });
            }
        }
        evaluations.inc();
        active.set(monitor.active() as i64);
        let total_flaps = monitor.flaps_suppressed();
        flaps.add(total_flaps.saturating_sub(last_flaps));
        last_flaps = total_flaps;
    }
}

/// All daemon self-ads currently in the matchmaker's own ad store.
fn daemon_self_ads(shared: &Arc<Shared>, now: u64) -> Vec<ClassAd> {
    let mut ads = Vec::new();
    for ty in [
        schema::MATCHMAKER_STATS,
        schema::RESOURCE_AGENT_STATS,
        schema::CUSTOMER_AGENT_STATS,
    ] {
        if let Ok(q) =
            matchmaker::query::Query::from_constraint(&condor_obs::self_ad_constraint(ty))
        {
            ads.extend(shared.service.query(&q, now));
        }
    }
    ads
}

/// Federated collection: poll each reachable flock peer's matchmaker
/// self-ad into per-peer pool series, so one `HistoryQuery` renders a
/// multi-pool picture. Reuses the flock peer table (and its failure
/// backoff) but speaks plain `Query` — a pre-view peer serves it anyway.
fn collect_flock_peers(shared: &Arc<Shared>, view: &condor_view::Collector, now: u64) {
    let eligible = {
        let flock = shared.flock.lock();
        if !flock.is_enabled() {
            return;
        }
        flock.eligible(wire::unix_now_ms(), &[])
    };
    for peer in eligible {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let (contacts, name) = {
            let flock = shared.flock.lock();
            (flock.contacts(peer).to_vec(), flock.name(peer).to_string())
        };
        // Either failure path below tombstones the peer's series: a dead
        // peer's rollups must read as *departed*, not silently stale —
        // otherwise the last sampled values linger as if fresh and the
        // deadman alert never sees a growing absent tail.
        let Some(leader) = find_leader(&contacts, &shared.cfg.io) else {
            view.record_pool_absent(&name, now);
            continue;
        };
        let query = Message::Query {
            constraint: condor_obs::self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: Vec::new(),
        };
        match wire::request_reply(&leader, &query, &shared.cfg.io) {
            Ok(Message::QueryReply { ads }) => view.ingest(&name, &ads, now),
            _ => view.record_pool_absent(&name, now),
        }
    }
}

fn ticker_loop(shared: &Arc<Shared>) {
    let mut cycles_since_checkpoint = 0u64;
    loop {
        if wire::interruptible_sleep(&shared.shutdown, shared.cfg.cycle_interval) {
            return;
        }
        // Standbys never negotiate — the pool's state lives with the
        // leader — but they keep their own telemetry ad fresh so the
        // in-process stats stay inspectable.
        if !shared.election.lock().is_leader() {
            cycles_since_checkpoint = 0;
            shared.publish_self_ad();
            continue;
        }
        let started = Instant::now();
        let mut outcome = shared.service.negotiate(wire::unix_now());
        let duration_ms = started.elapsed().as_secs_f64() * 1000.0;
        // The cycle bridge bumps `cycles`, the totals, and the last-cycle
        // gauges; the duration histogram is ours to record.
        outcome.stats.record(shared.observer.registry());
        shared.metrics.cycle_duration_ms.record(duration_ms);
        if outcome.stats.expired_ads > 0 {
            shared.observer.emit(Event::LeaseExpired {
                expired: outcome.stats.expired_ads as u64,
            });
        }
        shared.observer.emit(Event::CycleCompleted {
            requests: outcome.stats.requests_considered as u64,
            offers: outcome.stats.offers_considered as u64,
            matches: outcome.stats.matches as u64,
            unmatched: outcome.stats.unmatched_requests as u64,
            duration_ms: duration_ms as u64,
            incremental: outcome.stats.incremental_cycles > 0,
        });
        // Attribution: journal the full per-cluster breakdown and keep a
        // capped summary for the self-ad. A cycle with nothing unmatched
        // clears the summary — the pool's story is "all served".
        if !outcome.rejections.is_empty() {
            shared.observer.emit(Event::CycleRejections {
                cycle: outcome.cycle,
                clusters: outcome.rejections.len() as u64,
                rejected: outcome.stats.rejected_pairings as u64,
                breakdown: outcome
                    .rejections
                    .iter()
                    .map(|c| c.encode())
                    .collect::<Vec<_>>()
                    .join(" | "),
            });
        }
        *shared.last_rejections_line.lock() = rejections_line(&outcome);
        // Flocking: clusters the cycle could not serve locally go to the
        // dialer thread; the cycle itself never blocks on peer sockets.
        // (The vec is empty unless `NegotiatorConfig::flocking` is on.)
        if !outcome.unmatched_clusters.is_empty() {
            if let Some(tx) = &*shared.flock_tx.lock() {
                let _ = tx.send(std::mem::take(&mut outcome.unmatched_clusters));
            }
        }
        for m in &outcome.matches {
            // Span B: the match decision itself, a child of the request's
            // AdReceived span. Queue wait is measured here — ad accepted
            // to matched — against the arrival instant stashed at receive.
            let match_span = m.trace.map(|ctx| ctx.begin_span());
            if let Some(span) = match_span {
                if let Some(arrived) = shared.queue_started.lock().remove(&span.trace_id) {
                    shared
                        .metrics
                        .phase_queue_wait_ms
                        .record(arrived.elapsed().as_secs_f64() * 1000.0);
                }
            }
            shared.observer.emit_traced(
                Event::MatchMade {
                    request: m.request_name.clone(),
                    offer: m.offer_name.clone(),
                },
                match_span,
            );
            // Span C: notification delivery, child of the match span; the
            // Notify frames carry C's child context so both agents' spans
            // land under it.
            let notify_span = match_span.map(|s| s.child_context().begin_span());
            let notify_ctx = notify_span.map(|s| s.child_context());
            let (to_customer, to_provider) = m.notifications();
            let mut delivered = true;
            for (contact, note) in [
                (&m.provider_contact, to_provider),
                (&m.customer_contact, to_customer),
            ] {
                match wire::send_oneway_traced(
                    contact,
                    &Message::Notify(note),
                    notify_ctx.as_ref(),
                    &shared.cfg.io,
                ) {
                    Ok(n) => {
                        shared.metrics.notifications_sent.inc();
                        shared.metrics.wire.sent(n as u64);
                    }
                    Err(_) => {
                        // Soft state: an undeliverable notification wastes
                        // this match; both parties re-advertise.
                        shared.metrics.notifications_failed.inc();
                        delivered = false;
                    }
                }
            }
            shared.observer.emit_traced(
                Event::MatchNotified {
                    request: m.request_name.clone(),
                    offer: m.offer_name.clone(),
                    delivered,
                },
                notify_span,
            );
            // Matched-to-notified residency of this cycle.
            shared
                .metrics
                .phase_negotiation_ms
                .record(started.elapsed().as_secs_f64() * 1000.0);
        }
        // Arrival instants for requests that never matched age out here so
        // the map cannot grow without bound under churn.
        shared
            .queue_started
            .lock()
            .retain(|_, t| t.elapsed() < Duration::from_secs(600));
        // Checkpoint cadence: every N cycles the full ad store (plus this
        // cycle's matches, for the record) lands in the journal, so a
        // restart or takeover resumes from here instead of empty.
        if shared.cfg.checkpoint_every > 0 && shared.observer.journal().is_some() {
            cycles_since_checkpoint += 1;
            if cycles_since_checkpoint >= shared.cfg.checkpoint_every {
                cycles_since_checkpoint = 0;
                let snap = PoolSnapshot {
                    store: shared.service.snapshot_state(),
                    matches: outcome.matches.clone(),
                };
                let epoch = shared.election.lock().epoch();
                shared.observer.emit(snap.checkpoint_event(epoch));
                shared.metrics.checkpoints_written.inc();
            }
        }
        // Renew the self-ad with this cycle folded in.
        shared.publish_self_ad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::protocol::{Advertisement, EntityKind};
    use std::time::Instant;

    fn machine_adv(name: &str, contact: &str) -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: classad::parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "Machine"; Mips = 100;
                     Constraint = other.Type == "Job"; Rank = 0 ]"#
            ))
            .unwrap(),
            contact: contact.into(),
            ticket: None,
            expires_at: wire::unix_now() + 300,
        }
    }

    fn quiet_daemon() -> MatchmakerDaemon {
        MatchmakerDaemon::spawn(DaemonConfig {
            cycle_interval: Duration::from_secs(3600),
            io: IoConfig {
                read_timeout: Duration::from_millis(400),
                ..IoConfig::default()
            },
            ..DaemonConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn advertise_and_query_over_tcp() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let io = IoConfig::default();
        // The self-ad is in the store from spawn.
        assert_eq!(daemon.service().ad_count(), 1);
        // Stream several ads over one connection, then query over another.
        let mut stream = wire::connect(&addr, &io).unwrap();
        for i in 0..3 {
            wire::send(
                &mut stream,
                &Message::Advertise(machine_adv(&format!("m{i}"), "127.0.0.1:9")),
            )
            .unwrap();
        }
        drop(stream);
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.service().ad_count() < 4 {
            assert!(Instant::now() < deadline, "ads never arrived");
            std::thread::sleep(Duration::from_millis(10));
        }
        let q = Message::Query {
            constraint: "other.Mips >= 50".into(),
            kind: Some(EntityKind::Provider),
            projection: vec!["Name".into()],
        };
        let reply = wire::request_reply(&addr, &q, &io).unwrap();
        let Message::QueryReply { ads } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(ads.len(), 3, "the self-ad has no Mips and stays out");
        daemon.shutdown();
        assert_eq!(daemon.stats().frames_handled, 4);
    }

    #[test]
    fn self_ad_answers_stats_queries_over_tcp() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let q = Message::Query {
            constraint: condor_obs::self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        };
        let reply = wire::request_reply(&addr, &q, &IoConfig::default()).unwrap();
        let Message::QueryReply { ads } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(ads.len(), 1);
        let ad = &ads[0];
        assert_eq!(
            ad.get_string("MyType"),
            Some(schema::MATCHMAKER_STATS),
            "{ad}"
        );
        // Refreshed just before the query: our own connection is visible.
        assert_eq!(ad.get_int("ConnectionsAccepted"), Some(1), "{ad}");
        assert_eq!(ad.get_int("ActiveConnections"), Some(1), "{ad}");
        daemon.shutdown();
    }

    #[test]
    fn history_query_over_tcp_returns_series_ads() {
        let mut daemon = MatchmakerDaemon::spawn(DaemonConfig {
            cycle_interval: Duration::from_secs(3600),
            io: IoConfig {
                read_timeout: Duration::from_millis(400),
                ..IoConfig::default()
            },
            view: Some(ViewConfig {
                sample_interval: Duration::from_millis(50),
                ..ViewConfig::default()
            }),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let io = IoConfig::default();
        // Let the collector run a couple of passes over the self-ad.
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.view().unwrap().collections() < 2 {
            assert!(Instant::now() < deadline, "collector never ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        let q = Message::HistoryQuery {
            constraint: format!(
                r#"other.Metric == "{}" && other.Tier == 0"#,
                condor_view::metric::MATCH_RATE
            ),
            limit: 0,
        };
        let reply = wire::request_reply(&addr, &q, &io).unwrap();
        let Message::HistoryReply { ads } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(ads.len(), 1);
        assert_eq!(ads[0].get_string("MyType"), Some("HistorySeries"));
        assert_eq!(ads[0].get_string("Kind"), Some("Counter"));
        // A malformed constraint earns a structured error, which the
        // client surfaces as a remote failure.
        let bad = Message::HistoryQuery {
            constraint: "((".into(),
            limit: 0,
        };
        match wire::request_reply(&addr, &bad, &io) {
            Err(WireError::Remote(detail)) => {
                assert!(detail.contains("bad history constraint"), "{detail}")
            }
            other => panic!("expected a structured rejection, got {other:?}"),
        }
        daemon.shutdown();
    }

    #[test]
    fn history_query_without_view_earns_structured_error() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let q = Message::HistoryQuery {
            constraint: "true".into(),
            limit: 0,
        };
        let err = wire::request_reply(&addr, &q, &IoConfig::default());
        match err {
            Ok(Message::Error { detail }) => {
                assert!(detail.contains("matchmaker endpoint"), "{detail}")
            }
            Err(WireError::Remote(detail)) => {
                assert!(detail.contains("matchmaker endpoint"), "{detail}")
            }
            other => panic!("expected a structured rejection, got {other:?}"),
        }
        daemon.shutdown();
    }

    #[test]
    fn alert_query_over_tcp_returns_alert_state_ads() {
        // One custom rule that trivially fires against the matchmaker's
        // own self-ad, so the test needs no pool and no dead daemons.
        let rule = classad::parse_classad(
            r#"[ AlertRuleAd = true; Name = "SelfAware"; Severity = "info";
                 Subjects = other.MyType == "MatchmakerStats";
                 Constraint = other.Cycles >= 0 ]"#,
        )
        .unwrap();
        let mut daemon = MatchmakerDaemon::spawn(DaemonConfig {
            cycle_interval: Duration::from_secs(3600),
            alarm: Some(AlarmConfig {
                interval: Duration::from_millis(50),
                rules: vec![rule],
                default_pack: false,
                ..AlarmConfig::default()
            }),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let io = IoConfig::default();
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.alarm().unwrap().sweeps() < 2 {
            assert!(Instant::now() < deadline, "monitor never swept");
            std::thread::sleep(Duration::from_millis(10));
        }
        let q = Message::AlertQuery {
            constraint: r#"other.State == "firing""#.into(),
        };
        let reply = wire::request_reply(&addr, &q, &io).unwrap();
        let Message::AlertReply { ads } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(ads.len(), 1, "{ads:?}");
        assert_eq!(ads[0].get_string("MyType"), Some("AlertState"));
        assert_eq!(ads[0].get_string("Rule"), Some("SelfAware"));
        assert_eq!(ads[0].get_string("Severity"), Some("info"));
        // The firing set is advertised in the self-ad too.
        let sq = Message::Query {
            constraint: condor_obs::self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        };
        let Ok(Message::QueryReply { ads }) = wire::request_reply(&addr, &sq, &io) else {
            panic!("self-ad query failed")
        };
        assert!(
            ads[0].get_int("ActiveAlerts").unwrap_or(0) >= 1,
            "{}",
            ads[0]
        );
        assert!(
            ads[0]
                .get_string("ActiveAlertSummary")
                .unwrap_or("")
                .contains("info:SelfAware"),
            "{}",
            ads[0]
        );
        // A malformed constraint earns a structured error.
        let bad = Message::AlertQuery {
            constraint: "((".into(),
        };
        match wire::request_reply(&addr, &bad, &io) {
            Err(WireError::Remote(detail)) => {
                assert!(detail.contains("bad alert constraint"), "{detail}")
            }
            other => panic!("expected a structured rejection, got {other:?}"),
        }
        daemon.shutdown();
    }

    #[test]
    fn alert_query_without_alarm_earns_structured_error() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let q = Message::AlertQuery {
            constraint: "true".into(),
        };
        match wire::request_reply(&addr, &q, &IoConfig::default()) {
            Ok(Message::Error { detail }) | Err(WireError::Remote(detail)) => {
                assert!(detail.contains("matchmaker endpoint"), "{detail}")
            }
            other => panic!("expected a structured rejection, got {other:?}"),
        }
        daemon.shutdown();
    }

    #[test]
    fn malformed_rule_ads_fail_the_spawn() {
        let bad = classad::parse_classad(
            r#"[ AlertRuleAd = true; Name = "broken"; Severity = "fatal"; Constraint = true ]"#,
        )
        .unwrap();
        let err = MatchmakerDaemon::spawn(DaemonConfig {
            alarm: Some(AlarmConfig {
                rules: vec![bad],
                ..AlarmConfig::default()
            }),
            ..DaemonConfig::default()
        });
        assert!(err.is_err(), "unknown severity must fail validation");
    }

    #[test]
    fn analyze_over_tcp_names_the_failing_clause() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let io = IoConfig::default();
        wire::send_oneway(
            &addr,
            &Message::Advertise(machine_adv("m0", "127.0.0.1:9")),
            &io,
        )
        .unwrap();
        let job = Advertisement {
            kind: EntityKind::Customer,
            ad: classad::parse_classad(
                r#"[ Name = "picky"; Type = "Job"; Owner = "alice";
                     Constraint = other.Type == "Machine" && other.Mips >= 10000;
                     Rank = 0 ]"#,
            )
            .unwrap(),
            contact: "127.0.0.1:9".into(),
            ticket: None,
            expires_at: wire::unix_now() + 300,
        };
        wire::send_oneway(&addr, &Message::Advertise(job), &io).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.service().ad_count() < 3 {
            assert!(Instant::now() < deadline, "ads never arrived");
            std::thread::sleep(Duration::from_millis(10));
        }
        let reply = wire::request_reply(
            &addr,
            &Message::Analyze {
                name: "picky".into(),
            },
            &io,
        )
        .unwrap();
        let Message::AnalyzeReply { ad } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(ad.get_string("MyType"), Some("MatchAnalysis"), "{ad}");
        assert_eq!(ad.get("Found").unwrap().to_string(), "true", "{ad}");
        assert_eq!(ad.get_int("MatchesNow"), Some(0), "{ad}");
        assert_eq!(
            ad.get_string("FailingClause"),
            Some("other.Mips >= 10000"),
            "{ad}"
        );
        daemon.shutdown();
    }

    #[test]
    fn symbolic_contact_rejected_with_error_reply() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let err = wire::request_reply(
            &addr,
            &Message::Advertise(machine_adv("m", "leonardo")),
            &IoConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref d) if d.contains("leonardo")),
            "{err}"
        );
        daemon.shutdown();
        assert_eq!(daemon.stats().error_replies, 1);
        assert_eq!(daemon.stats().frames_rejected, 1);
        assert_eq!(
            daemon.service().ad_count(),
            1,
            "only the self-ad; the bad ad was refused"
        );
    }

    #[test]
    fn rejected_frames_land_in_the_journal_with_peer_and_reason() {
        let dir = std::env::temp_dir().join(format!("mm-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal_path = dir.join("journal.jsonl");
        let mut daemon = MatchmakerDaemon::spawn(DaemonConfig {
            cycle_interval: Duration::from_secs(3600),
            journal: Some(JournalConfig::new(journal_path.clone())),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        // A well-formed frame the matchmaker endpoint must refuse.
        let release = Message::Release {
            ticket: matchmaker::ticket::Ticket::from_raw(7),
        };
        let err = wire::request_reply(&addr, &release, &IoConfig::default()).unwrap_err();
        assert!(matches!(err, WireError::Remote(_)), "{err}");
        daemon.shutdown();
        let records = condor_obs::replay(&journal_path).unwrap();
        let rejection = records
            .iter()
            .find_map(|r| match &r.event {
                Event::FrameRejected { peer, reason } => Some((peer.clone(), reason.clone())),
                _ => None,
            })
            .expect("a FrameRejected event is journaled");
        assert!(
            rejection.0.contains(':'),
            "peer is an addr: {}",
            rejection.0
        );
        assert!(
            rejection.1.contains("Release"),
            "reason names the offense: {}",
            rejection.1
        );
        // The restart marker precedes it.
        assert!(matches!(
            records[0].event,
            Event::AgentRestarted { ref agent, .. } if agent == "MatchmakerDaemon"
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    use crate::wire::WireError;

    #[test]
    fn connection_limit_refuses_with_error() {
        let mut daemon = MatchmakerDaemon::spawn(DaemonConfig {
            max_connections: 0,
            cycle_interval: Duration::from_secs(3600),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let err = wire::request_reply(
            &addr,
            &Message::Query {
                constraint: "true".into(),
                kind: None,
                projection: vec![],
            },
            &IoConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref d) if d.contains("limit")),
            "{err}"
        );
        daemon.shutdown();
        assert_eq!(daemon.stats().connections_refused, 1);
        assert_eq!(daemon.stats().connections_accepted, 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let _ = wire::send_oneway(
            &addr,
            &Message::Advertise(machine_adv("m", "127.0.0.1:9")),
            &IoConfig::default(),
        );
        daemon.shutdown();
        daemon.shutdown();
        // Post-shutdown dials fail (listener gone).
        assert!(wire::connect(&addr, &IoConfig::default()).is_err());
    }
}
