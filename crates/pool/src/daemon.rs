//! The matchmaker as a long-running TCP daemon.
//!
//! One listener thread accepts connections into a bounded pool of
//! connection-handler threads; each connection gets its own
//! [`FrameDecoder`] (with the daemon's frame-size guard) and the stream's
//! read timeout doubles as an idle timeout. A background ticker runs
//! negotiation cycles and dials both matched parties' contact addresses
//! to deliver the step-3 notifications — which is why this daemon's
//! advertising protocol demands real `host:port` contacts.
//!
//! Protocol violations never strand a peer: the offending connection gets
//! a structured [`Message::Error`] reply and is then closed.

use crate::wire::{self, IoConfig};
use matchmaker::framing::FrameDecoder;
use matchmaker::negotiate::NegotiatorConfig;
use matchmaker::protocol::{AdvertisingProtocol, Message};
use matchmaker::service::Matchmaker;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon tunables.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub bind: String,
    /// Connections served concurrently; excess connections are refused
    /// with a [`Message::Error`] and closed immediately.
    pub max_connections: usize,
    /// Socket deadlines for serving connections and dialing notifications.
    pub io: IoConfig,
    /// Period between negotiation cycles.
    pub cycle_interval: Duration,
    /// Negotiator tunables for the wrapped service.
    pub negotiator: NegotiatorConfig,
    /// Largest frame a peer may send (see
    /// [`FrameDecoder::with_max_frame_len`]).
    pub max_frame_len: usize,
    /// Demand `host:port` contact addresses in ads (on by default: the
    /// daemon must dial contacts back to deliver notifications).
    pub require_socket_contact: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bind: "127.0.0.1:0".into(),
            max_connections: 64,
            io: IoConfig::default(),
            cycle_interval: Duration::from_secs(2),
            negotiator: NegotiatorConfig::default(),
            max_frame_len: 4 * 1024 * 1024,
            require_socket_contact: true,
        }
    }
}

/// Monotone daemon counters (relaxed atomics; see snapshot()).
#[derive(Debug, Default)]
struct DaemonStats {
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    frames_handled: AtomicU64,
    error_replies: AtomicU64,
    cycles: AtomicU64,
    notifications_sent: AtomicU64,
    notifications_failed: AtomicU64,
}

/// Point-in-time copy of the daemon counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStatsSnapshot {
    /// Connections admitted into the handler pool.
    pub connections_accepted: u64,
    /// Connections refused because the pool was full.
    pub connections_refused: u64,
    /// Decoded frames dispatched to the service.
    pub frames_handled: u64,
    /// Structured error replies sent before closing a connection.
    pub error_replies: u64,
    /// Negotiation cycles run by the ticker.
    pub cycles: u64,
    /// Match notifications delivered to contact addresses.
    pub notifications_sent: u64,
    /// Notification dials that failed (soft state: costs one cycle).
    pub notifications_failed: u64,
}

struct Shared {
    service: Matchmaker,
    cfg: DaemonConfig,
    stats: DaemonStats,
    shutdown: AtomicBool,
    active: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// A live matchmaker listening on TCP.
#[derive(Debug)]
pub struct MatchmakerDaemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl MatchmakerDaemon {
    /// Bind the listener and start the accept and negotiation threads.
    pub fn spawn(cfg: DaemonConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let protocol = AdvertisingProtocol {
            require_socket_contact: cfg.require_socket_contact,
            ..AdvertisingProtocol::default()
        };
        let shared = Arc::new(Shared {
            service: Matchmaker::with_protocol(cfg.negotiator.clone(), protocol),
            cfg,
            stats: DaemonStats::default(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mm-accept".into())
                .spawn(move || accept_loop(&shared, listener))?
        };
        let ticker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mm-ticker".into())
                .spawn(move || ticker_loop(&shared))?
        };
        Ok(MatchmakerDaemon {
            shared,
            addr,
            accept: Some(accept),
            ticker: Some(ticker),
        })
    }

    /// The bound listen address (dial this as `addr().to_string()`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped thread-safe service (for in-process inspection; remote
    /// parties use the socket).
    pub fn service(&self) -> &Matchmaker {
        &self.shared.service
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DaemonStatsSnapshot {
        let s = &self.shared.stats;
        DaemonStatsSnapshot {
            connections_accepted: s.connections_accepted.load(Ordering::Relaxed),
            connections_refused: s.connections_refused.load(Ordering::Relaxed),
            frames_handled: s.frames_handled.load(Ordering::Relaxed),
            error_replies: s.error_replies.load(Ordering::Relaxed),
            cycles: s.cycles.load(Ordering::Relaxed),
            notifications_sent: s.notifications_sent.load(Ordering::Relaxed),
            notifications_failed: s.notifications_failed.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, finish in-flight connections, and join every
    /// thread. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for MatchmakerDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            shared
                .stats
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.cfg.io.write_timeout));
            let _ = wire::send(
                &mut stream,
                &Message::Error {
                    detail: "connection limit reached, retry later".into(),
                },
            );
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("mm-conn".into())
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        match handle {
            Ok(h) => {
                let mut conns = shared.conns.lock();
                conns.retain(|h| !h.is_finished());
                conns.push(h);
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.io.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.io.write_timeout));
    let mut dec = FrameDecoder::with_max_frame_len(shared.cfg.max_frame_len);
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Drain everything decodable before blocking again.
        loop {
            match dec.next_message() {
                Ok(Some(msg)) => {
                    shared.stats.frames_handled.fetch_add(1, Ordering::Relaxed);
                    match shared.service.handle_message(msg, wire::unix_now()) {
                        Ok(Some(reply)) => {
                            if wire::send_body(&mut stream, &reply).is_err() {
                                return;
                            }
                        }
                        Ok(None) => {}
                        Err(e) => {
                            // Structured rejection, then close: the peer
                            // sees why instead of a silent hangup.
                            shared.stats.error_replies.fetch_add(1, Ordering::Relaxed);
                            let _ = wire::send(
                                &mut stream,
                                &Message::Error {
                                    detail: e.to_string(),
                                },
                            );
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared.stats.error_replies.fetch_add(1, Ordering::Relaxed);
                    let _ = wire::send(
                        &mut stream,
                        &Message::Error {
                            detail: e.to_string(),
                        },
                    );
                    return;
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => dec.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Idle past the read timeout: close (clients reconnect per
            // exchange, long-lived silence is a leak, not a session).
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => return,
            Err(_) => return,
        }
    }
}

fn ticker_loop(shared: &Arc<Shared>) {
    loop {
        if wire::interruptible_sleep(&shared.shutdown, shared.cfg.cycle_interval) {
            return;
        }
        let outcome = shared.service.negotiate(wire::unix_now());
        shared.stats.cycles.fetch_add(1, Ordering::Relaxed);
        for m in &outcome.matches {
            let (to_customer, to_provider) = m.notifications();
            for (contact, note) in [
                (&m.provider_contact, to_provider),
                (&m.customer_contact, to_customer),
            ] {
                match wire::send_oneway(contact, &Message::Notify(note), &shared.cfg.io) {
                    Ok(()) => {
                        shared
                            .stats
                            .notifications_sent
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // Soft state: an undeliverable notification wastes
                        // this match; both parties re-advertise.
                        shared
                            .stats
                            .notifications_failed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::protocol::{Advertisement, EntityKind};
    use std::time::Instant;

    fn machine_adv(name: &str, contact: &str) -> Advertisement {
        Advertisement {
            kind: EntityKind::Provider,
            ad: classad::parse_classad(&format!(
                r#"[ Name = "{name}"; Type = "Machine"; Mips = 100;
                     Constraint = other.Type == "Job"; Rank = 0 ]"#
            ))
            .unwrap(),
            contact: contact.into(),
            ticket: None,
            expires_at: wire::unix_now() + 300,
        }
    }

    fn quiet_daemon() -> MatchmakerDaemon {
        MatchmakerDaemon::spawn(DaemonConfig {
            cycle_interval: Duration::from_secs(3600),
            io: IoConfig {
                read_timeout: Duration::from_millis(400),
                ..IoConfig::default()
            },
            ..DaemonConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn advertise_and_query_over_tcp() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let io = IoConfig::default();
        // Stream several ads over one connection, then query over another.
        let mut stream = wire::connect(&addr, &io).unwrap();
        for i in 0..3 {
            wire::send(
                &mut stream,
                &Message::Advertise(machine_adv(&format!("m{i}"), "127.0.0.1:9")),
            )
            .unwrap();
        }
        drop(stream);
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.service().ad_count() < 3 {
            assert!(Instant::now() < deadline, "ads never arrived");
            std::thread::sleep(Duration::from_millis(10));
        }
        let q = Message::Query {
            constraint: "other.Mips >= 50".into(),
            kind: Some(EntityKind::Provider),
            projection: vec!["Name".into()],
        };
        let reply = wire::request_reply(&addr, &q, &io).unwrap();
        let Message::QueryReply { ads } = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(ads.len(), 3);
        daemon.shutdown();
        assert_eq!(daemon.stats().frames_handled, 4);
    }

    #[test]
    fn symbolic_contact_rejected_with_error_reply() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let err = wire::request_reply(
            &addr,
            &Message::Advertise(machine_adv("m", "leonardo")),
            &IoConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref d) if d.contains("leonardo")),
            "{err}"
        );
        daemon.shutdown();
        assert_eq!(daemon.stats().error_replies, 1);
        assert_eq!(daemon.service().ad_count(), 0);
    }

    use crate::wire::WireError;

    #[test]
    fn connection_limit_refuses_with_error() {
        let mut daemon = MatchmakerDaemon::spawn(DaemonConfig {
            max_connections: 0,
            cycle_interval: Duration::from_secs(3600),
            ..DaemonConfig::default()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let err = wire::request_reply(
            &addr,
            &Message::Query {
                constraint: "true".into(),
                kind: None,
                projection: vec![],
            },
            &IoConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref d) if d.contains("limit")),
            "{err}"
        );
        daemon.shutdown();
        assert_eq!(daemon.stats().connections_refused, 1);
        assert_eq!(daemon.stats().connections_accepted, 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut daemon = quiet_daemon();
        let addr = daemon.addr().to_string();
        let _ = wire::send_oneway(
            &addr,
            &Message::Advertise(machine_adv("m", "127.0.0.1:9")),
            &IoConfig::default(),
        );
        daemon.shutdown();
        daemon.shutdown();
        // Post-shutdown dials fail (listener gone).
        assert!(wire::connect(&addr, &IoConfig::default()).is_err());
    }
}
