//! The resource agent (RA): a provider's live runtime.
//!
//! Owns the machine's *current* classad and a [`ClaimHandler`], refreshes
//! the matchmaker's copy on a heartbeat (renewing the soft-state lease),
//! and serves **direct** claim connections from matched customers — the
//! paper's step 4, which never passes through the matchmaker. Claims are
//! adjudicated against the current ad, so a stale advertisement costs a
//! rejected claim, never a wrong allocation.
//!
//! Ticket discipline: the outstanding ticket is *reused* across lease
//! renewals and only replaced after an accepted claim consumes it —
//! otherwise a claim racing an ad refresh would spuriously fail ticket
//! verification.

use crate::failover::{self, Probe};
use crate::observe::{self_ad_name, Observer, WireCounters};
use crate::retry::Backoff;
use crate::wire::{self, IoConfig};
use classad::ClassAd;
use condor_obs::{schema, Event, JournalConfig, TraceContext};
use matchmaker::claim::ClaimHandler;
use matchmaker::protocol::{Advertisement, EntityKind, Message};
use matchmaker::ticket::TicketIssuer;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resource-agent tunables.
#[derive(Debug, Clone)]
pub struct ResourceConfig {
    /// Machine name (written into the ad's `Name` attribute).
    pub name: String,
    /// Matchmaker daemon address (`host:port`).
    pub matchmaker: String,
    /// Every matchmaker in an HA set, preferred-first. Empty (the
    /// default) means the lone [`matchmaker`] address and no probing.
    /// With two or more contacts the agent probes its current matchmaker
    /// each heartbeat and follows leader redirects (see
    /// [`crate::failover`]), so advertisements chase the lease across
    /// failovers while any established claim rides out the handover
    /// untouched.
    ///
    /// [`matchmaker`]: ResourceConfig::matchmaker
    pub matchmakers: Vec<String>,
    /// Listen address for direct claim connections; port 0 picks one.
    pub bind: String,
    /// Period between advertisement refreshes (lease renewals).
    pub heartbeat: Duration,
    /// Lease length granted with each advertisement.
    pub lease: Duration,
    /// Socket deadlines.
    pub io: IoConfig,
    /// Retry schedule for a failed advertisement dial (within one
    /// heartbeat; the next heartbeat starts a fresh budget).
    pub backoff: Backoff,
    /// Seed for the ticket issuer (distinct per agent in a pool).
    pub ticket_seed: u64,
    /// Publish a `ResourceAgentStats` self-ad to the matchmaker on every
    /// heartbeat (on by default; see `condor_obs::selfad`).
    pub publish_self_ad: bool,
    /// Event-journal destination; `None` disables journaling.
    pub journal: Option<JournalConfig>,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig {
            name: "machine".into(),
            matchmaker: String::new(),
            matchmakers: Vec::new(),
            bind: "127.0.0.1:0".into(),
            heartbeat: Duration::from_secs(60),
            lease: Duration::from_secs(300),
            io: IoConfig::default(),
            backoff: Backoff::default(),
            ticket_seed: 1,
            publish_self_ad: true,
            journal: None,
        }
    }
}

/// The agent's metric handles, registered once at spawn.
#[derive(Debug)]
struct RaMetrics {
    ads_sent: Arc<condor_obs::Counter>,
    ad_failures: Arc<condor_obs::Counter>,
    self_ads_sent: Arc<condor_obs::Counter>,
    claims_accepted: Arc<condor_obs::Counter>,
    claims_rejected: Arc<condor_obs::Counter>,
    notifications_seen: Arc<condor_obs::Counter>,
    releases: Arc<condor_obs::Counter>,
    failovers: Arc<condor_obs::Counter>,
    claimed: Arc<condor_obs::Gauge>,
    phase_notify_claim_gap_ms: Arc<condor_obs::WindowedHistogram>,
    phase_reverify_ms: Arc<condor_obs::WindowedHistogram>,
    wire: WireCounters,
}

impl RaMetrics {
    fn new(reg: &condor_obs::Registry) -> Self {
        let window = Duration::from_secs(300);
        RaMetrics {
            ads_sent: reg.counter(schema::ADS_SENT),
            ad_failures: reg.counter(schema::AD_FAILURES),
            self_ads_sent: reg.counter(schema::SELF_ADS_SENT),
            claims_accepted: reg.counter(schema::CLAIMS_ACCEPTED),
            claims_rejected: reg.counter(schema::CLAIMS_REJECTED),
            notifications_seen: reg.counter(schema::NOTIFICATIONS_SEEN),
            releases: reg.counter(schema::RELEASES),
            failovers: reg.counter(schema::MATCHMAKER_FAILOVERS),
            claimed: reg.gauge(schema::CLAIMED),
            phase_notify_claim_gap_ms: reg.histogram(schema::PHASE_NOTIFY_CLAIM_GAP_MS, window),
            phase_reverify_ms: reg.histogram(schema::PHASE_REVERIFY_MS, window),
            wire: WireCounters::new(reg),
        }
    }
}

/// Point-in-time copy of the resource-agent counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceStatsSnapshot {
    /// Advertisements delivered to the matchmaker.
    pub ads_sent: u64,
    /// Advertisement dials that exhausted their retry budget.
    pub ad_failures: u64,
    /// Claims accepted (ticket verified, constraints re-held).
    pub claims_accepted: u64,
    /// Claims rejected (bad ticket, stale state, busy).
    pub claims_rejected: u64,
    /// Match notifications received from the matchmaker.
    pub notifications_seen: u64,
    /// Release messages honored.
    pub releases: u64,
    /// Times the agent switched matchmakers after a probe or redirect.
    pub failovers: u64,
}

struct RaShared {
    cfg: ResourceConfig,
    contact: String,
    /// The matchmaker currently advertised to — rewritten by
    /// [`RaShared::ensure_matchmaker`] when the leader moves.
    matchmaker: Mutex<String>,
    ad: Mutex<ClassAd>,
    claim: Mutex<ClaimHandler>,
    issuer: Mutex<TicketIssuer>,
    shutdown: AtomicBool,
    metrics: RaMetrics,
    observer: Observer,
    /// When each traced match notification arrived, keyed by trace id:
    /// consumed when the matching claim lands to feed the notify→claim
    /// gap histogram, age-pruned on insert.
    notified_at: Mutex<HashMap<u64, Instant>>,
}

/// A live resource agent; see the module docs.
pub struct ResourceAgent {
    shared: Arc<RaShared>,
    addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ResourceAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceAgent")
            .field("name", &self.shared.cfg.name)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ResourceAgent {
    /// Start the agent: bind the claim listener, then advertise `ad`
    /// immediately and on every heartbeat. The ad's `Name` is overwritten
    /// with `cfg.name`.
    pub fn spawn(cfg: ResourceConfig, mut ad: ClassAd) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        ad.set_str("Name", &cfg.name);
        let observer = Observer::new(cfg.journal.clone())?;
        let metrics = RaMetrics::new(observer.registry());
        let matchmaker = cfg
            .matchmakers
            .first()
            .cloned()
            .unwrap_or_else(|| cfg.matchmaker.clone());
        let shared = Arc::new(RaShared {
            contact: addr.to_string(),
            matchmaker: Mutex::new(matchmaker),
            issuer: Mutex::new(TicketIssuer::new(cfg.ticket_seed)),
            cfg,
            ad: Mutex::new(ad),
            claim: Mutex::new(ClaimHandler::new()),
            shutdown: AtomicBool::new(false),
            metrics,
            observer,
            notified_at: Mutex::new(HashMap::new()),
        });
        shared.observer.emit(Event::AgentRestarted {
            agent: "ResourceAgent".into(),
            name: shared.cfg.name.clone(),
        });
        let listen_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ra-listen".into())
                .spawn(move || listen_loop(&shared, listener))?
        };
        let refresher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ra-refresh".into())
                .spawn(move || refresh_loop(&shared))?
        };
        Ok(ResourceAgent {
            shared,
            addr,
            listener: Some(listen_thread),
            refresher: Some(refresher),
        })
    }

    /// The agent's claim-listener address — also its advertised contact.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The machine name this agent advertises under.
    pub fn name(&self) -> &str {
        &self.shared.cfg.name
    }

    /// Whether a customer currently holds the resource.
    pub fn is_claimed(&self) -> bool {
        self.shared.claim.lock().is_claimed()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResourceStatsSnapshot {
        let m = &self.shared.metrics;
        ResourceStatsSnapshot {
            ads_sent: m.ads_sent.get(),
            ad_failures: m.ad_failures.get(),
            claims_accepted: m.claims_accepted.get(),
            claims_rejected: m.claims_rejected.get(),
            notifications_seen: m.notifications_seen.get(),
            releases: m.releases.get(),
            failovers: m.failovers.get(),
        }
    }

    /// The matchmaker this agent currently advertises to (the leader it
    /// last found, or the configured address).
    pub fn matchmaker_contact(&self) -> String {
        self.shared.current_matchmaker()
    }

    /// Mutate the machine's *current* state without re-advertising — the
    /// matchmaker's copy goes stale until the next heartbeat, exactly the
    /// window the claim-time re-verification exists to cover.
    pub fn update_ad(&self, f: impl FnOnce(&mut ClassAd)) {
        f(&mut self.shared.ad.lock());
    }

    /// Die abruptly: close the listener and stop all threads without
    /// withdrawing the advertisement. The matchmaker keeps matching the
    /// lingering ad until its lease lapses; customers discover the death
    /// when their direct claim dial fails.
    pub fn kill(mut self) {
        self.stop_threads();
    }

    /// Exit gracefully: collapse the lease (re-advertise with an
    /// expiry one second out, the closest the protocol has to a withdraw),
    /// withdraw the stats self-ad the same way — its lease is minutes
    /// long, and leaving it behind would keep the departed agent looking
    /// alive to the view collector (and mute the deadman alert) until it
    /// expired — then stop all threads.
    pub fn shutdown(mut self) {
        let adv = self.shared.build_advertisement(1);
        let _ = wire::send_oneway(
            &self.shared.current_matchmaker(),
            &Message::Advertise(adv),
            &self.shared.cfg.io,
        );
        if self.shared.cfg.publish_self_ad {
            self.shared.publish_self_ad(1);
        }
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.refresher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ResourceAgent {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

impl RaShared {
    /// Assemble the advertisement from current state. Reuses the
    /// outstanding ticket if one exists (see module docs); `lease_secs`
    /// overrides the configured lease for the withdraw path.
    fn build_advertisement(&self, lease_secs: u64) -> Advertisement {
        let ticket = {
            let mut claim = self.claim.lock();
            match claim.outstanding_ticket() {
                Some(t) => t,
                None => {
                    let t = self.issuer.lock().issue();
                    claim.set_ticket(t);
                    t
                }
            }
        };
        Advertisement {
            kind: EntityKind::Provider,
            ad: self.ad.lock().clone(),
            contact: self.contact.clone(),
            ticket: Some(ticket),
            expires_at: wire::unix_now() + lease_secs,
        }
    }

    /// Send the `ResourceAgentStats` self-ad to the matchmaker (best
    /// effort, no retry: the next heartbeat brings the next one).
    /// `lease_secs` is the advertised lease — heartbeats renew with a
    /// generous one, the shutdown path withdraws with 1s.
    fn publish_self_ad(&self, lease_secs: u64) {
        self.metrics
            .claimed
            .set(i64::from(self.claim.lock().is_claimed()));
        let mut ad = self
            .observer
            .build_self_ad(&self_ad_name(&self.cfg.name), schema::RESOURCE_AGENT_STATS);
        ad.set_str("Machine", &self.cfg.name);
        let adv = Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: self.contact.clone(),
            ticket: None,
            expires_at: wire::unix_now() + lease_secs,
        };
        if let Ok(n) = wire::send_oneway(
            &self.current_matchmaker(),
            &Message::Advertise(adv),
            &self.cfg.io,
        ) {
            self.metrics.self_ads_sent.inc();
            self.metrics.wire.sent(n as u64);
        }
    }

    /// The matchmaker this agent currently speaks to.
    fn current_matchmaker(&self) -> String {
        self.matchmaker.lock().clone()
    }

    /// Multi-matchmaker failover: probe the current contact and, if it no
    /// longer answers like the leader (dead socket or a standby's
    /// redirect), walk the configured set for whoever holds the lease.
    /// Single-contact agents skip the probe entirely — the classic
    /// single-matchmaker exchange pattern is untouched.
    fn ensure_matchmaker(&self) {
        if self.cfg.matchmakers.len() < 2 {
            return;
        }
        let current = self.current_matchmaker();
        if failover::probe(&current, &self.cfg.io) == Probe::Leader {
            return;
        }
        if let Some(leader) = failover::find_leader(&self.cfg.matchmakers, &self.cfg.io) {
            if leader != current {
                *self.matchmaker.lock() = leader;
                self.metrics.failovers.inc();
            }
        }
    }
}

fn refresh_loop(shared: &Arc<RaShared>) {
    loop {
        shared.ensure_matchmaker();
        // A claimed machine stops renewing: its ad was withdrawn at match
        // time and must not re-enter the pool until released.
        if !shared.claim.lock().is_claimed() {
            advertise_with_retry(shared);
        }
        // The self-ad renews even while claimed — a claimed machine is
        // exactly when an operator wants to see its telemetry.
        if shared.cfg.publish_self_ad {
            shared.publish_self_ad((3 * shared.cfg.heartbeat.as_secs()).max(300));
        }
        if wire::interruptible_sleep(&shared.shutdown, shared.cfg.heartbeat) {
            return;
        }
    }
}

fn advertise_with_retry(shared: &Arc<RaShared>) {
    let mut attempt = 0u32;
    loop {
        let adv = shared.build_advertisement(shared.cfg.lease.as_secs());
        match wire::send_oneway(
            &shared.current_matchmaker(),
            &Message::Advertise(adv),
            &shared.cfg.io,
        ) {
            Ok(n) => {
                shared.metrics.ads_sent.inc();
                shared.metrics.wire.sent(n as u64);
                return;
            }
            Err(_) => {
                attempt += 1;
                match shared.cfg.backoff.delay(attempt) {
                    Some(d) => {
                        if wire::interruptible_sleep(&shared.shutdown, d) {
                            return;
                        }
                        // The dial failed: the leader may have moved.
                        shared.ensure_matchmaker();
                    }
                    None => {
                        shared.metrics.ad_failures.inc();
                        return;
                    }
                }
            }
        }
    }
}

fn listen_loop(shared: &Arc<RaShared>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        serve_peer(shared, stream);
    }
}

/// Serve one direct connection: read messages until the peer closes or
/// goes idle past the read timeout. Claims and releases are quick, so the
/// RA handles peers sequentially — deadlines bound any one peer's hold.
fn serve_peer(shared: &Arc<RaShared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.io.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.io.write_timeout));
    let mut dec = matchmaker::framing::FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match dec.next_message_traced() {
                Ok(Some((msg, trace))) => {
                    shared.metrics.wire.frame_in();
                    if !handle_peer_message(shared, &mut stream, msg, trace) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    if let Ok(n) = wire::send(
                        &mut stream,
                        &Message::Error {
                            detail: e.to_string(),
                        },
                    ) {
                        shared.metrics.wire.sent(n as u64);
                    }
                    return;
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                shared.metrics.wire.read_bytes(n as u64);
                dec.push(&buf[..n]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Returns `false` when the connection should close. `trace` is the
/// frame's propagated context: claims carry the matchmaker-minted match
/// trace, and the RA's claim verdict is journaled as a child span under
/// it; the `ClaimReply` carries that span's child context back so the
/// customer's side of the claim lands beneath the RA's.
fn handle_peer_message(
    shared: &Arc<RaShared>,
    stream: &mut TcpStream,
    msg: Message,
    trace: Option<TraceContext>,
) -> bool {
    match msg {
        Message::Claim(req) => {
            let span = trace.map(|ctx| ctx.begin_span());
            if let Some(span) = span {
                if let Some(seen) = shared.notified_at.lock().remove(&span.trace_id) {
                    shared
                        .metrics
                        .phase_notify_claim_gap_ms
                        .record(seen.elapsed().as_secs_f64() * 1000.0);
                }
            }
            let customer = req
                .customer_ad
                .get_string("Owner")
                .or_else(|| req.customer_ad.get_string("Name"))
                .unwrap_or("?")
                .to_string();
            let current = shared.ad.lock().clone();
            let reverify_started = Instant::now();
            let (resp, _displaced) = shared.claim.lock().handle_claim(
                &req,
                &current,
                wire::unix_now(),
                |_| false, // this RA never preempts an active claim
            );
            shared
                .metrics
                .phase_reverify_ms
                .record(reverify_started.elapsed().as_secs_f64() * 1000.0);
            if resp.accepted {
                shared.metrics.claims_accepted.inc();
                shared.metrics.claimed.set(1);
                shared.observer.emit_traced(
                    Event::ClaimEstablished {
                        provider: shared.cfg.name.clone(),
                        customer,
                    },
                    span,
                );
            } else {
                shared.metrics.claims_rejected.inc();
                shared.observer.emit_traced(
                    Event::ClaimRejected {
                        provider: shared.cfg.name.clone(),
                        customer,
                        reason: resp
                            .rejection
                            .map(|r| format!("{r:?}"))
                            .unwrap_or_else(|| "unspecified".into()),
                    },
                    span,
                );
            }
            let reply_ctx = span.map(|s| s.child_context());
            match wire::send_traced(stream, &Message::ClaimReply(resp), reply_ctx.as_ref()) {
                Ok(n) => {
                    shared.metrics.wire.sent(n as u64);
                    true
                }
                Err(_) => false,
            }
        }
        Message::Release { .. } => {
            if shared.claim.lock().release().is_some() {
                shared.metrics.releases.inc();
                shared.metrics.claimed.set(0);
            }
            true
        }
        Message::Notify(_) => {
            // Informational on the provider side: the binding event is the
            // customer's direct claim, not this notification — but the
            // arrival instant starts the notify→claim gap clock.
            shared.metrics.notifications_seen.inc();
            if let Some(ctx) = trace {
                let mut notified = shared.notified_at.lock();
                notified.retain(|_, t| t.elapsed() < Duration::from_secs(600));
                notified.insert(ctx.trace_id, Instant::now());
            }
            true
        }
        Message::Error { .. } => false,
        other => {
            let _ = wire::send(
                stream,
                &Message::Error {
                    detail: format!("resource agent cannot serve {}", message_kind(&other)),
                },
            );
            false
        }
    }
}

fn message_kind(msg: &Message) -> &'static str {
    match msg {
        Message::Advertise(_) => "Advertise",
        Message::Notify(_) => "Notify",
        Message::Claim(_) => "Claim",
        Message::ClaimReply(_) => "ClaimReply",
        Message::Release { .. } => "Release",
        Message::Query { .. } => "Query",
        Message::QueryReply { .. } => "QueryReply",
        Message::Error { .. } => "Error",
        Message::Analyze { .. } => "Analyze",
        Message::AnalyzeReply { .. } => "AnalyzeReply",
        Message::ElectionBid { .. } => "ElectionBid",
        Message::LeaderLease { .. } => "LeaderLease",
        Message::FlockQuery { .. } => "FlockQuery",
        Message::FlockOffer { .. } => "FlockOffer",
        Message::HistoryQuery { .. } => "HistoryQuery",
        Message::HistoryReply { .. } => "HistoryReply",
        Message::AlertQuery { .. } => "AlertQuery",
        Message::AlertReply { .. } => "AlertReply",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classad::parse_classad;
    use matchmaker::framing::FrameDecoder;
    use matchmaker::protocol::{ClaimRejection, ClaimRequest};
    use matchmaker::ticket::Ticket;
    use std::time::Instant;

    fn idle_machine_ad() -> ClassAd {
        parse_classad(
            r#"[ Type = "Machine"; Mips = 100; KeyboardIdle = 1000;
                 Constraint = other.Type == "Job" && KeyboardIdle > 300;
                 Rank = 0 ]"#,
        )
        .unwrap()
    }

    fn job_ad() -> ClassAd {
        parse_classad(
            r#"[ Name = "job-0"; Type = "Job"; Owner = "raman";
                 Constraint = other.Type == "Machine"; Rank = 0 ]"#,
        )
        .unwrap()
    }

    /// Capture what the RA advertises by standing in for the matchmaker.
    /// Self-ads (heartbeat telemetry) are skipped: these tests watch the
    /// machine's primary advertisement.
    fn recv_one_ad(listener: &TcpListener) -> Advertisement {
        loop {
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let mut dec = FrameDecoder::new();
            let msg =
                wire::recv(&mut s, &mut dec, Instant::now() + Duration::from_secs(5)).unwrap();
            match msg {
                Message::Advertise(a) if condor_obs::is_daemon_ad(&a.ad) => continue,
                Message::Advertise(a) => return a,
                other => panic!("expected Advertise, got {other:?}"),
            }
        }
    }

    fn spawn_ra(mm_addr: String, heartbeat: Duration) -> ResourceAgent {
        ResourceAgent::spawn(
            ResourceConfig {
                name: "leonardo".into(),
                matchmaker: mm_addr,
                heartbeat,
                backoff: Backoff {
                    max_attempts: 1,
                    ..Backoff::default()
                },
                ..ResourceConfig::default()
            },
            idle_machine_ad(),
        )
        .unwrap()
    }

    #[test]
    fn advertises_and_accepts_direct_claim() {
        let mm = TcpListener::bind("127.0.0.1:0").unwrap();
        let ra = spawn_ra(
            mm.local_addr().unwrap().to_string(),
            Duration::from_secs(3600),
        );
        let adv = recv_one_ad(&mm);
        assert_eq!(adv.ad.get_string("Name"), Some("leonardo"));
        assert_eq!(adv.contact, ra.addr().to_string());
        let ticket = adv.ticket.expect("provider ads carry a ticket");

        let claim = Message::Claim(ClaimRequest {
            ticket,
            customer_ad: job_ad(),
            customer_contact: "127.0.0.1:9".into(),
        });
        let reply =
            wire::request_reply(&ra.addr().to_string(), &claim, &IoConfig::default()).unwrap();
        let Message::ClaimReply(r) = reply else {
            panic!("{reply:?}")
        };
        assert!(r.accepted, "{:?}", r.rejection);
        assert!(ra.is_claimed());
        assert_eq!(ra.stats().claims_accepted, 1);
        ra.shutdown();
    }

    #[test]
    fn stale_state_rejects_claim_and_ticket_survives_renewal() {
        let mm = TcpListener::bind("127.0.0.1:0").unwrap();
        let ra = spawn_ra(
            mm.local_addr().unwrap().to_string(),
            Duration::from_millis(50),
        );
        let first = recv_one_ad(&mm);
        let second = recv_one_ad(&mm);
        assert_eq!(
            first.ticket, second.ticket,
            "lease renewal must not rotate the ticket"
        );

        // The keyboard comes back to life after the ad went out.
        ra.update_ad(|ad| ad.set_int("KeyboardIdle", 5));
        let claim = Message::Claim(ClaimRequest {
            ticket: first.ticket.unwrap(),
            customer_ad: job_ad(),
            customer_contact: "127.0.0.1:9".into(),
        });
        let reply =
            wire::request_reply(&ra.addr().to_string(), &claim, &IoConfig::default()).unwrap();
        let Message::ClaimReply(r) = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(r.rejection, Some(ClaimRejection::ConstraintFailed));
        assert!(!ra.is_claimed());
        // The response carries the *current* ad so the customer sees why.
        assert_eq!(r.provider_ad.get_int("KeyboardIdle"), Some(5));
        ra.shutdown();
    }

    #[test]
    fn bad_ticket_rejected() {
        let mm = TcpListener::bind("127.0.0.1:0").unwrap();
        let ra = spawn_ra(
            mm.local_addr().unwrap().to_string(),
            Duration::from_secs(3600),
        );
        let adv = recv_one_ad(&mm);
        let wrong = Ticket::from_raw(adv.ticket.unwrap().raw().wrapping_add(1));
        let claim = Message::Claim(ClaimRequest {
            ticket: wrong,
            customer_ad: job_ad(),
            customer_contact: "127.0.0.1:9".into(),
        });
        let reply =
            wire::request_reply(&ra.addr().to_string(), &claim, &IoConfig::default()).unwrap();
        let Message::ClaimReply(r) = reply else {
            panic!("{reply:?}")
        };
        assert_eq!(r.rejection, Some(ClaimRejection::BadTicket));
        assert_eq!(ra.stats().claims_rejected, 1);
        ra.shutdown();
    }

    #[test]
    fn unreachable_matchmaker_exhausts_retry_budget() {
        // Bind-then-drop guarantees a dead port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let ra = ResourceAgent::spawn(
            ResourceConfig {
                name: "orphan".into(),
                matchmaker: dead,
                heartbeat: Duration::from_secs(3600),
                backoff: Backoff {
                    initial: Duration::from_millis(5),
                    max_attempts: 2,
                    ..Backoff::default()
                },
                ..ResourceConfig::default()
            },
            idle_machine_ad(),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while ra.stats().ad_failures == 0 {
            assert!(Instant::now() < deadline, "retry budget never exhausted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(ra.stats().ads_sent, 0);
        ra.kill();
    }
}
