//! Socket-level plumbing: framed messages over `std::net::TcpStream` with
//! connect/read/write deadlines.
//!
//! Every blocking operation here is bounded. Connects use
//! [`TcpStream::connect_timeout`]; reads and writes inherit the stream's
//! OS-level timeouts; [`recv`] additionally enforces a whole-message
//! deadline so a peer trickling one byte per timeout period cannot hold a
//! thread forever.

use matchmaker::framing::{encode_framed_traced, frame_body, FrameDecoder};
use matchmaker::protocol::{Message, ProtocolError, Timestamp, TraceContext};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Wall-clock seconds since the Unix epoch — the live runtime's
/// [`Timestamp`] source (the simulator uses its virtual clock instead).
pub fn unix_now() -> Timestamp {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Wall-clock milliseconds since the Unix epoch — the deadline clock for
/// the flock peer table's backoff schedule.
pub fn unix_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Connect/read/write deadlines applied to every socket operation.
#[derive(Debug, Clone)]
pub struct IoConfig {
    /// Bound on establishing a connection.
    pub connect_timeout: Duration,
    /// Bound on one blocking read — also the idle timeout after which a
    /// server closes a silent connection.
    pub read_timeout: Duration,
    /// Bound on one blocking write.
    pub write_timeout: Duration,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a socket-level exchange failed.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure (connect refused, reset, ...).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(ProtocolError),
    /// The peer sent a structured [`Message::Error`] before closing.
    Remote(String),
    /// The deadline elapsed before a complete message arrived.
    TimedOut,
    /// The peer closed the stream mid-message.
    Closed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Protocol(e) => write!(f, "undecodable peer data: {e}"),
            WireError::Remote(d) => write!(f, "peer rejected the exchange: {d}"),
            WireError::TimedOut => f.write_str("deadline elapsed awaiting a complete message"),
            WireError::Closed => f.write_str("peer closed the stream"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => WireError::TimedOut,
            _ => WireError::Io(e),
        }
    }
}

/// Resolve `addr` (a `host:port` contact string) and connect within the
/// configured deadline, leaving read/write timeouts armed on the stream.
pub fn connect(addr: &str, io: &IoConfig) -> Result<TcpStream, WireError> {
    let target = addr
        .to_socket_addrs()
        .map_err(WireError::Io)?
        .next()
        .ok_or_else(|| WireError::Io(ErrorKind::AddrNotAvailable.into()))?;
    let stream = TcpStream::connect_timeout(&target, io.connect_timeout).map_err(WireError::Io)?;
    stream
        .set_read_timeout(Some(io.read_timeout))
        .map_err(WireError::Io)?;
    stream
        .set_write_timeout(Some(io.write_timeout))
        .map_err(WireError::Io)?;
    Ok(stream)
}

/// Write one framed message. Returns the bytes written, length prefix
/// included, so callers can feed throughput counters.
pub fn send(stream: &mut TcpStream, msg: &Message) -> Result<usize, WireError> {
    send_traced(stream, msg, None)
}

/// Write one framed message with an optional trace-context trailer.
/// Returns the bytes written, length prefix included.
pub fn send_traced(
    stream: &mut TcpStream,
    msg: &Message,
    trace: Option<&TraceContext>,
) -> Result<usize, WireError> {
    let framed = encode_framed_traced(msg, trace);
    stream.write_all(&framed)?;
    Ok(framed.len())
}

/// Write an already-encoded message body with its length prefix.
/// Returns the bytes written, length prefix included.
pub fn send_body(stream: &mut TcpStream, body: &[u8]) -> Result<usize, WireError> {
    let framed = frame_body(body);
    stream.write_all(&framed)?;
    Ok(framed.len())
}

/// Read until `dec` yields one complete message or `deadline` passes.
/// `Err(Remote)` reports a peer that answered with [`Message::Error`].
pub fn recv(
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    deadline: Instant,
) -> Result<Message, WireError> {
    recv_traced(stream, dec, deadline).map(|(msg, _, _)| msg)
}

/// Like [`recv`], also yielding the frame's optional trace context and
/// how many bytes were read off the socket while waiting (framing
/// included; `0` when the message was already buffered in `dec`).
pub fn recv_traced(
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    deadline: Instant,
) -> Result<(Message, Option<TraceContext>, u64), WireError> {
    let mut buf = [0u8; 16 * 1024];
    let mut bytes_in = 0u64;
    loop {
        match dec.next_message_traced().map_err(WireError::Protocol)? {
            Some((Message::Error { detail }, _)) => return Err(WireError::Remote(detail)),
            Some((msg, trace)) => return Ok((msg, trace, bytes_in)),
            None => {}
        }
        if Instant::now() >= deadline {
            return Err(WireError::TimedOut);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(WireError::Closed),
            Ok(n) => {
                bytes_in += n as u64;
                dec.push(&buf[..n]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // One OS-level read timed out; the loop re-checks the
                // overall deadline before blocking again.
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
}

/// What a traced request/reply exchange produced: the reply, its trace
/// context, and the byte counts for throughput accounting.
#[derive(Debug)]
pub struct Exchange {
    /// The peer's reply.
    pub msg: Message,
    /// Trace context on the reply frame, if the peer attached one.
    pub trace: Option<TraceContext>,
    /// Bytes read off the socket (framing included).
    pub bytes_in: u64,
    /// Bytes written to the socket (framing included).
    pub bytes_out: u64,
}

/// Dial `addr`, send `msg`, and await a single reply within the read
/// deadline. The connection is dropped afterwards — every exchange in the
/// protocol is single-shot.
pub fn request_reply(addr: &str, msg: &Message, io: &IoConfig) -> Result<Message, WireError> {
    request_reply_traced(addr, msg, None, io).map(|x| x.msg)
}

/// Traced single-shot exchange: the request carries `trace`, and the
/// reply's context plus both directions' byte counts come back in the
/// [`Exchange`].
pub fn request_reply_traced(
    addr: &str,
    msg: &Message,
    trace: Option<&TraceContext>,
    io: &IoConfig,
) -> Result<Exchange, WireError> {
    let mut stream = connect(addr, io)?;
    let bytes_out = send_traced(&mut stream, msg, trace)? as u64;
    let mut dec = FrameDecoder::new();
    let (reply, reply_trace, bytes_in) =
        recv_traced(&mut stream, &mut dec, Instant::now() + io.read_timeout)?;
    Ok(Exchange {
        msg: reply,
        trace: reply_trace,
        bytes_in,
        bytes_out,
    })
}

/// Dial `addr`, send `msg`, and close — the fire-and-forget class of
/// traffic (advertisements, notifications). TCP's graceful close still
/// delivers the queued bytes. Returns the bytes written.
pub fn send_oneway(addr: &str, msg: &Message, io: &IoConfig) -> Result<usize, WireError> {
    send_oneway_traced(addr, msg, None, io)
}

/// [`send_oneway`] with an optional trace-context trailer on the frame.
pub fn send_oneway_traced(
    addr: &str,
    msg: &Message,
    trace: Option<&TraceContext>,
    io: &IoConfig,
) -> Result<usize, WireError> {
    let mut stream = connect(addr, io)?;
    send_traced(&mut stream, msg, trace)
}

/// Sleep for `total`, waking every few tens of milliseconds to honor a
/// shutdown flag. Returns `true` if interrupted by shutdown.
pub(crate) fn interruptible_sleep(flag: &AtomicBool, total: Duration) -> bool {
    use std::sync::atomic::Ordering;
    let deadline = Instant::now() + total;
    loop {
        if flag.load(Ordering::Relaxed) {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::ticket::Ticket;
    use std::net::TcpListener;

    #[test]
    fn request_reply_roundtrips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let msg = recv(&mut s, &mut dec, Instant::now() + Duration::from_secs(5)).unwrap();
            assert!(matches!(msg, Message::Release { .. }));
            send(&mut s, &Message::QueryReply { ads: vec![] }).unwrap();
        });
        let io = IoConfig::default();
        let reply = request_reply(
            &addr,
            &Message::Release {
                ticket: Ticket::from_raw(7),
            },
            &io,
        )
        .unwrap();
        assert_eq!(reply, Message::QueryReply { ads: vec![] });
        server.join().unwrap();
    }

    #[test]
    fn traced_exchange_carries_contexts_and_counts_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let req_ctx = TraceContext {
            trace_id: 0xCAFE,
            parent_span_id: 0x01,
        };
        let reply_ctx = TraceContext {
            trace_id: 0xCAFE,
            parent_span_id: 0x02,
        };
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut dec = FrameDecoder::new();
            let (msg, trace, bytes_in) =
                recv_traced(&mut s, &mut dec, Instant::now() + Duration::from_secs(5)).unwrap();
            assert!(matches!(msg, Message::Claim { .. }));
            assert_eq!(trace, Some(req_ctx));
            assert!(bytes_in > 0);
            send_traced(
                &mut s,
                &Message::ClaimReply(matchmaker::protocol::ClaimResponse {
                    accepted: true,
                    rejection: None,
                    provider_ad: classad::parse_classad("[ Name = \"m\" ]").unwrap(),
                }),
                Some(&reply_ctx),
            )
            .unwrap();
        });
        let io = IoConfig::default();
        let claim = Message::Claim(matchmaker::protocol::ClaimRequest {
            ticket: Ticket::from_raw(9),
            customer_ad: classad::parse_classad("[ Name = \"j\"; Constraint = true ]").unwrap(),
            customer_contact: "ca:1".into(),
        });
        let exchange = request_reply_traced(&addr, &claim, Some(&req_ctx), &io).unwrap();
        assert!(matches!(exchange.msg, Message::ClaimReply(ref r) if r.accepted));
        assert_eq!(exchange.trace, Some(reply_ctx));
        assert!(exchange.bytes_in > 0 && exchange.bytes_out > 0);
        server.join().unwrap();
    }

    #[test]
    fn remote_error_reply_surfaces_as_remote() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            send(
                &mut s,
                &Message::Error {
                    detail: "nope".into(),
                },
            )
            .unwrap();
        });
        let io = IoConfig::default();
        let err = request_reply(
            &addr,
            &Message::Release {
                ticket: Ticket::from_raw(1),
            },
            &io,
        )
        .unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref d) if d == "nope"),
            "{err}"
        );
        server.join().unwrap();
    }

    #[test]
    fn recv_times_out_against_a_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let io = IoConfig {
            read_timeout: Duration::from_millis(80),
            ..IoConfig::default()
        };
        let mut stream = connect(&addr, &io).unwrap();
        let mut dec = FrameDecoder::new();
        let started = Instant::now();
        let err = recv(
            &mut stream,
            &mut dec,
            Instant::now() + Duration::from_millis(120),
        );
        assert!(matches!(err, Err(WireError::TimedOut)), "{err:?}");
        assert!(started.elapsed() < Duration::from_secs(3));
        drop(listener);
    }

    #[test]
    fn connect_to_dead_port_fails_fast() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let io = IoConfig::default();
        let err = send_oneway(&addr, &Message::QueryReply { ads: vec![] }, &io).unwrap_err();
        assert!(
            matches!(err, WireError::Io(_) | WireError::TimedOut),
            "{err}"
        );
    }
}
