//! CondorView-style pool history: multi-resolution time series over the
//! matchmaking pool, queryable as classads.
//!
//! The paper's protocols keep only the *present*: the ad store holds the
//! current offers, requests, and daemon self-ads, and a lease expiry
//! erases a machine as if it never advertised. This crate adds the
//! *past* — the CondorView layer of the Condor ecosystem — without
//! changing any of that weak-consistency machinery:
//!
//! * [`HistoryStore`] keeps every metric at several resolutions at once
//!   (by default 10 s × 360, 1 m × 360, 10 m × 432 ring buffers).
//!   Counters are stored as per-bucket deltas so a series integrates
//!   exactly back to the live counter; gauges keep min/avg/max/last.
//!   Departed sources leave **absent tombstones**, so history can tell a
//!   machine that left the pool from one that is merely unreachable.
//! * [`Collector`] feeds the store from daemon self-ads polled through
//!   the ordinary `Query` path (pool utilization, match and flock rates,
//!   leader epochs, per-daemon gauges) and from tailed journal events,
//!   and checkpoints the whole store into a `condor-obs` journal so a
//!   restart loses at most one sample interval.
//! * Queries keep the "stats are just ads" philosophy: each (series,
//!   tier) renders as a `HistorySeries` classad, an ordinary constraint
//!   expression selects among them, and the samples travel as attributes
//!   of the matching ads — over the wire via the `HistoryQuery` /
//!   `HistoryReply` protocol messages (`docs/protocol.md` §15).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod store;

pub use collect::{metric, Collector, Resumption, LOCAL_POOL, POOL_SOURCE};
pub use store::{
    Bucket, HistoryConfig, HistoryStore, RecentWindow, SeriesKey, SeriesKind, TierSpec,
    SERIES_AD_TYPE,
};
