//! The pool-history collector: turns daemon self-ads and journal events
//! into [`HistoryStore`] series, and checkpoints the store into a journal
//! so a restart loses at most one sample interval.
//!
//! The collector owns no sockets and no clock: the embedding daemon (or a
//! test) polls self-ads through the ordinary `Query` path and hands each
//! batch to [`Collector::ingest`] together with the pool label they came
//! from — `"local"` for the home pool, the flock peer's name for a
//! federated one. Everything derived is conventional CondorView material:
//!
//! * **pool rollups** (`Source == "pool"`): `Utilization` (claimed
//!   resource agents over all resource agents), `MatchRate` /
//!   `FlockRate` / `LeaseExpiries` (from the matchmaker self-ad's
//!   cumulative counters), `LeaderEpoch`, and the `ResourceAgents` /
//!   `CustomerAgents` head-counts;
//! * **per-daemon series** (`Source` = the daemon's name): `Claimed` per
//!   resource agent, `JobsIdle` per customer agent.
//!
//! A source that was present in one ingest and missing from the next gets
//! an *absent tombstone* in every one of its series — the collector saw
//! the matchmaker expire or withdraw the ad, which is how history
//! distinguishes a departed machine from one that is merely quiet.
//!
//! [`Collector::tail_journal`] additionally follows a daemon's event
//! journal, folding `MatchMade` / `ClaimEstablished` / `LeaseExpired` /
//! flocking events into event-sourced counter series — an independent
//! view of the same activity the polled counters report.

use crate::store::{HistoryConfig, HistoryStore};
use classad::ClassAd;
use condor_obs::{recover, replay, schema, Event, Journal, JournalConfig};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pool label the embedding daemon uses for its own pool.
pub const LOCAL_POOL: &str = "local";
/// `Source` of the pool-level rollup series.
pub const POOL_SOURCE: &str = "pool";

/// Metric names the collector emits (series `Metric` attribute values).
pub mod metric {
    /// Claimed resource agents / all resource agents (gauge, 0..=1).
    pub const UTILIZATION: &str = "Utilization";
    /// Matches produced, from the matchmaker's cumulative counter.
    pub const MATCH_RATE: &str = "MatchRate";
    /// Jobs served by or granted to peer pools (flock activity).
    pub const FLOCK_RATE: &str = "FlockRate";
    /// Ads dropped by lease expiry.
    pub const LEASE_EXPIRIES: &str = "LeaseExpiries";
    /// The leadership epoch the serving matchmaker reports (gauge).
    pub const LEADER_EPOCH: &str = "LeaderEpoch";
    /// Resource agents advertising (gauge).
    pub const RESOURCE_AGENTS: &str = "ResourceAgents";
    /// Customer agents advertising (gauge).
    pub const CUSTOMER_AGENTS: &str = "CustomerAgents";
    /// Per resource agent: claimed right now (gauge, 0/1).
    pub const CLAIMED: &str = "Claimed";
    /// Per customer agent: jobs waiting for a match (gauge).
    pub const JOBS_IDLE: &str = "JobsIdle";
    /// Matches seen in the tailed event journal.
    pub const MATCH_EVENTS: &str = "MatchEvents";
    /// Claims established, from the tailed event journal.
    pub const CLAIM_EVENTS: &str = "ClaimEvents";
    /// Lease expiries, from the tailed event journal.
    pub const EXPIRY_EVENTS: &str = "ExpiryEvents";
    /// Flocked jobs and flock matches, from the tailed event journal.
    pub const FLOCK_EVENTS: &str = "FlockEvents";
}

/// How the [`Collector`] came back to life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resumption {
    /// No journal, or the journal held no decodable checkpoint.
    Fresh,
    /// The store was rebuilt from the newest journal checkpoint.
    Recovered,
}

/// Thread-safe history collector: a [`HistoryStore`] behind a mutex, an
/// optional checkpoint journal, and the bookkeeping that detects departed
/// sources between ingests.
#[derive(Debug)]
pub struct Collector {
    store: Mutex<HistoryStore>,
    journal: Option<Journal>,
    resumption: Resumption,
    /// Per pool: the sources seen by the previous ingest (tombstone
    /// candidates when they vanish).
    last_sources: Mutex<HashMap<String, BTreeSet<String>>>,
    /// Per (pool, metric): running totals for event-sourced counters.
    event_totals: Mutex<HashMap<(String, String), f64>>,
    /// Per tailed journal path: highest record seq already folded in.
    tail_seq: Mutex<HashMap<String, u64>>,
    collections: AtomicU64,
}

impl Collector {
    /// Build a collector. When `journal` is given, the newest checkpoint
    /// in it (rotated generations included) is decoded back into the
    /// store before the journal is reopened for appending, so a restarted
    /// view server resumes with everything up to its last checkpoint.
    pub fn new(cfg: HistoryConfig, journal: Option<JournalConfig>) -> std::io::Result<Collector> {
        let mut store = HistoryStore::new(cfg);
        let mut resumption = Resumption::Fresh;
        if let Some(jc) = &journal {
            if jc.path.exists() {
                if let Some(prev) = recover(&jc.path)?
                    .state
                    .as_deref()
                    .and_then(HistoryStore::decode_state)
                {
                    store = prev;
                    resumption = Resumption::Recovered;
                }
            }
        }
        let journal = journal.map(Journal::open).transpose()?;
        Ok(Collector {
            store: Mutex::new(store),
            journal,
            resumption,
            last_sources: Mutex::new(HashMap::new()),
            event_totals: Mutex::new(HashMap::new()),
            tail_seq: Mutex::new(HashMap::new()),
            collections: AtomicU64::new(0),
        })
    }

    /// A journal-less collector (unit tests, ad-hoc tooling).
    pub fn in_memory(cfg: HistoryConfig) -> Collector {
        Collector::new(cfg, None).expect("journal-less collector cannot fail")
    }

    /// Whether construction recovered state from a journal checkpoint.
    pub fn resumption(&self) -> Resumption {
        self.resumption
    }

    /// Ingest one batch of daemon self-ads polled from `pool`'s
    /// matchmaker at `unix`. Computes the pool rollups, the per-daemon
    /// series, and absent tombstones for sources that vanished since the
    /// previous ingest of the same pool.
    pub fn ingest(&self, pool: &str, ads: &[ClassAd], unix: u64) {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut ra_total = 0i64;
        let mut ra_claimed = 0i64;
        let mut ca_total = 0i64;
        {
            let mut store = self.store.lock();
            for ad in ads {
                let Some(my_type) = ad.get_string(condor_obs::selfad::MY_TYPE_ATTR) else {
                    continue;
                };
                let source = source_name(ad);
                match my_type {
                    schema::MATCHMAKER_STATS => {
                        // Counters a quiet matchmaker has not registered
                        // yet read as 0, so the pool rollup series exist
                        // from the very first pass.
                        for (metric, attr) in [
                            (metric::MATCH_RATE, "MatchesTotal"),
                            (metric::LEASE_EXPIRIES, "AdsExpiredTotal"),
                        ] {
                            let v = ad.get_int(attr).unwrap_or(0);
                            store.record_counter(pool, metric, POOL_SOURCE, unix, v as f64);
                        }
                        let flocked = ad.get_int("JobsFlocked").unwrap_or(0)
                            + ad.get_int("FlockMatches").unwrap_or(0)
                            + ad.get_int("FlockGrants").unwrap_or(0);
                        store.record_counter(
                            pool,
                            metric::FLOCK_RATE,
                            POOL_SOURCE,
                            unix,
                            flocked as f64,
                        );
                        if let Some(epoch) = ad.get_int("LeaderEpoch") {
                            store.record_gauge(
                                pool,
                                metric::LEADER_EPOCH,
                                POOL_SOURCE,
                                unix,
                                epoch as f64,
                            );
                        }
                    }
                    schema::RESOURCE_AGENT_STATS => {
                        ra_total += 1;
                        let claimed = ad.get_int("Claimed").unwrap_or(0).min(1);
                        ra_claimed += claimed;
                        store.record_gauge(pool, metric::CLAIMED, &source, unix, claimed as f64);
                        seen.insert(source);
                    }
                    schema::CUSTOMER_AGENT_STATS => {
                        ca_total += 1;
                        if let Some(idle) = ad.get_int("JobsIdle") {
                            store.record_gauge(pool, metric::JOBS_IDLE, &source, unix, idle as f64);
                        }
                        seen.insert(source);
                    }
                    _ => {}
                }
            }
            store.record_gauge(
                pool,
                metric::RESOURCE_AGENTS,
                POOL_SOURCE,
                unix,
                ra_total as f64,
            );
            store.record_gauge(
                pool,
                metric::CUSTOMER_AGENTS,
                POOL_SOURCE,
                unix,
                ca_total as f64,
            );
            // A pool with no resource agents reads utilization 0 — the
            // series must keep advancing when the last agent departs,
            // or it would freeze at its final value and read as
            // healthy-but-idle forever (the deadman problem, §7).
            let utilization = if ra_total > 0 {
                ra_claimed as f64 / ra_total as f64
            } else {
                0.0
            };
            store.record_gauge(pool, metric::UTILIZATION, POOL_SOURCE, unix, utilization);
            // Tombstone every agent that advertised last round but not
            // this one: its ad expired or was withdrawn at the
            // matchmaker, so the daemon departed (rather than going
            // quiet, which would leave its ad in place).
            let mut last = self.last_sources.lock();
            if let Some(prev) = last.get(pool) {
                for gone in prev.difference(&seen) {
                    store.record_absent(pool, gone, unix);
                }
            }
            last.insert(pool.to_string(), seen);
        }
        self.collections.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold the daemon event journal at `path` into `pool`'s
    /// event-sourced counter series. Only records with a sequence number
    /// above the last call's high-water mark are consumed, so calling
    /// this every sample interval tails the journal incrementally. Errors
    /// reading the journal are returned (a missing journal is an error —
    /// gate on existence, as the daemon does).
    pub fn tail_journal(
        &self,
        pool: &str,
        path: &std::path::Path,
        unix: u64,
    ) -> std::io::Result<usize> {
        let records = replay(path)?;
        let key = path.display().to_string();
        let mut seqs = self.tail_seq.lock();
        let high = seqs.entry(key).or_insert(0);
        let mut folded = 0usize;
        let mut totals = self.event_totals.lock();
        let mut bump = |metric: &str, by: f64| {
            let t = totals
                .entry((pool.to_string(), metric.to_string()))
                .or_insert(0.0);
            *t += by;
            *t
        };
        let mut store = self.store.lock();
        for rec in records {
            if rec.seq <= *high {
                continue;
            }
            *high = rec.seq;
            let (metric, by) = match &rec.event {
                Event::MatchMade { .. } => (metric::MATCH_EVENTS, 1.0),
                Event::ClaimEstablished { .. } => (metric::CLAIM_EVENTS, 1.0),
                Event::LeaseExpired { expired } => (metric::EXPIRY_EVENTS, *expired as f64),
                Event::JobFlocked { .. } | Event::FlockMatchMade { .. } => {
                    (metric::FLOCK_EVENTS, 1.0)
                }
                _ => continue,
            };
            let total = bump(metric, by);
            store.record_counter(pool, metric, "journal", unix, total);
            folded += 1;
        }
        Ok(folded)
    }

    /// Checkpoint the whole store into the collector's journal under the
    /// daemon's current leadership `epoch`. A no-op without a journal.
    /// Returns whether a checkpoint was written.
    pub fn checkpoint(&self, epoch: u64) -> bool {
        let Some(journal) = &self.journal else {
            return false;
        };
        let (state, series) = {
            let store = self.store.lock();
            (store.encode_state(), store.series_count() as u64)
        };
        journal
            .append_traced(
                Event::Checkpoint {
                    epoch,
                    ads: series,
                    matches: 0,
                    state,
                },
                None,
            )
            .written
    }

    /// Record that an entire peer pool has stopped answering: drop an
    /// absent tombstone into every one of `pool`'s series. The federated
    /// sampler calls this when a flock peer is unreachable, so a dead
    /// peer's rollups read as *departed* instead of silently stale.
    pub fn record_pool_absent(&self, pool: &str, unix: u64) {
        self.store.lock().record_pool_absent(pool, unix);
    }

    /// Record one gauge observation directly, bypassing ad ingestion
    /// (embedding code and tests that synthesize series).
    pub fn record_gauge(&self, pool: &str, metric: &str, source: &str, unix: u64, value: f64) {
        self.store
            .lock()
            .record_gauge(pool, metric, source, unix, value);
    }

    /// Record one cumulative-counter observation directly (see
    /// [`HistoryStore::record_counter`]).
    pub fn record_counter(&self, pool: &str, metric: &str, source: &str, unix: u64, total: f64) {
        self.store
            .lock()
            .record_counter(pool, metric, source, unix, total);
    }

    /// Answer a history query: a classad constraint over series metadata
    /// ads (see [`HistoryStore::query`]).
    pub fn query(&self, constraint: &str, limit: u32) -> Result<Vec<ClassAd>, String> {
        self.store.lock().query(constraint, limit)
    }

    /// Summarize the newest `window` finest-tier buckets of one series
    /// (see [`HistoryStore::recent_window`]) — the read path alerting
    /// history predicates are answered from.
    pub fn recent_window(
        &self,
        pool: &str,
        metric: &str,
        source: &str,
        window: usize,
    ) -> Option<crate::RecentWindow> {
        self.store
            .lock()
            .recent_window(pool, metric, source, window)
    }

    /// Every `(pool, metric, source)` series key currently retained.
    pub fn series_keys(&self) -> Vec<crate::store::SeriesKey> {
        self.store.lock().series_keys()
    }

    /// Run `f` against the store (tests, in-process renderers).
    pub fn with_store<R>(&self, f: impl FnOnce(&HistoryStore) -> R) -> R {
        f(&self.store.lock())
    }

    /// Ingest batches processed since construction.
    pub fn collections(&self) -> u64 {
        self.collections.load(Ordering::Relaxed)
    }

    /// Observations ever ingested into the store (survives recovery).
    pub fn observations(&self) -> u64 {
        self.store.lock().observations()
    }

    /// Series currently retained.
    pub fn series_count(&self) -> usize {
        self.store.lock().series_count()
    }
}

/// The series `Source` for a self-ad: its `Name` with the `#stats`
/// suffix (the self-ad naming convention) stripped.
fn source_name(ad: &ClassAd) -> String {
    let name = ad.get_string("Name").unwrap_or("unnamed");
    name.strip_suffix("#stats").unwrap_or(name).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use condor_obs::{self_ad, Registry};

    fn mm_ad(matches: i64, expired: i64, epoch: i64) -> ClassAd {
        let reg = Registry::new();
        let mut ad = self_ad("mm#stats", schema::MATCHMAKER_STATS, 1, &reg.snapshot());
        ad.set_int("MatchesTotal", matches);
        ad.set_int("AdsExpiredTotal", expired);
        ad.set_int("LeaderEpoch", epoch);
        ad
    }

    fn ra_ad(name: &str, claimed: i64) -> ClassAd {
        let reg = Registry::new();
        let mut ad = self_ad(
            &format!("{name}#stats"),
            schema::RESOURCE_AGENT_STATS,
            1,
            &reg.snapshot(),
        );
        ad.set_int("Claimed", claimed);
        ad
    }

    fn ca_ad(name: &str, idle: i64) -> ClassAd {
        let reg = Registry::new();
        let mut ad = self_ad(
            &format!("{name}#stats"),
            schema::CUSTOMER_AGENT_STATS,
            1,
            &reg.snapshot(),
        );
        ad.set_int("JobsIdle", idle);
        ad
    }

    #[test]
    fn ingest_rolls_up_utilization_and_match_rate() {
        let c = Collector::in_memory(HistoryConfig::single(10, 16));
        c.ingest(
            LOCAL_POOL,
            &[
                mm_ad(0, 0, 1),
                ra_ad("ra-1", 0),
                ra_ad("ra-2", 0),
                ca_ad("ca", 3),
            ],
            100,
        );
        c.ingest(
            LOCAL_POOL,
            &[
                mm_ad(5, 2, 1),
                ra_ad("ra-1", 1),
                ra_ad("ra-2", 0),
                ca_ad("ca", 1),
            ],
            110,
        );
        let util = c.with_store(|s| s.buckets(LOCAL_POOL, metric::UTILIZATION, POOL_SOURCE, 0));
        let util = util.unwrap();
        assert_eq!(util.last().unwrap().last, 0.5);
        let match_growth: f64 = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::MATCH_RATE, POOL_SOURCE, 0))
            .unwrap()
            .iter()
            .map(|b| b.sum)
            .sum();
        assert_eq!(match_growth, 5.0);
        let idle = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::JOBS_IDLE, "ca", 0))
            .unwrap();
        assert_eq!(idle.last().unwrap().last, 1.0);
        assert_eq!(c.collections(), 2);
    }

    #[test]
    fn vanished_sources_get_absent_tombstones() {
        let c = Collector::in_memory(HistoryConfig::single(10, 16));
        c.ingest(LOCAL_POOL, &[ra_ad("ra-1", 0), ra_ad("ra-2", 0)], 100);
        c.ingest(LOCAL_POOL, &[ra_ad("ra-2", 0)], 110);
        let gone = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::CLAIMED, "ra-1", 0))
            .unwrap();
        assert!(gone.iter().any(|b| b.absent), "departed agent tombstoned");
        let alive = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::CLAIMED, "ra-2", 0))
            .unwrap();
        assert!(alive.iter().all(|b| !b.absent));
    }

    #[test]
    fn checkpoint_and_recover_round_trip() {
        let dir = std::env::temp_dir().join(format!("view-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jc = JournalConfig::new(dir.join("view.journal"));
        {
            let c = Collector::new(HistoryConfig::single(10, 16), Some(jc.clone())).unwrap();
            assert_eq!(c.resumption(), Resumption::Fresh);
            c.ingest(LOCAL_POOL, &[mm_ad(3, 0, 2), ra_ad("ra-1", 1)], 100);
            assert!(c.checkpoint(2));
        }
        let c = Collector::new(HistoryConfig::single(10, 16), Some(jc)).unwrap();
        assert_eq!(c.resumption(), Resumption::Recovered);
        let util = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::UTILIZATION, POOL_SOURCE, 0))
            .unwrap();
        assert_eq!(util.last().unwrap().last, 1.0);
        // The recovered store keeps ingesting where it left off.
        c.ingest(LOCAL_POOL, &[mm_ad(8, 0, 2), ra_ad("ra-1", 1)], 110);
        let growth: f64 = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::MATCH_RATE, POOL_SOURCE, 0))
            .unwrap()
            .iter()
            .map(|b| b.sum)
            .sum();
        // The pre-restart baseline (3) survived, so this ingest records
        // the delta 8 - 3 rather than re-baselining at 8.
        assert_eq!(growth, 5.0, "counter baseline survived the restart");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_tailing_is_incremental() {
        let dir = std::env::temp_dir().join(format!("view-tail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mm.journal");
        let journal = Journal::open(JournalConfig::new(path.clone())).unwrap();
        journal.append(Event::LeaseExpired { expired: 3 });
        let c = Collector::in_memory(HistoryConfig::single(10, 16));
        assert_eq!(c.tail_journal(LOCAL_POOL, &path, 100).unwrap(), 1);
        assert_eq!(c.tail_journal(LOCAL_POOL, &path, 110).unwrap(), 0);
        journal.append(Event::LeaseExpired { expired: 2 });
        assert_eq!(c.tail_journal(LOCAL_POOL, &path, 120).unwrap(), 1);
        let growth: f64 = c
            .with_store(|s| s.buckets(LOCAL_POOL, metric::EXPIRY_EVENTS, "journal", 0))
            .unwrap()
            .iter()
            .map(|b| b.sum)
            .sum();
        assert_eq!(growth, 2.0, "first tail set the baseline, second added 2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
