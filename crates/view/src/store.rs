//! The multi-resolution history store: downsampled ring-buffer time
//! series, queryable as classads.
//!
//! Every series is kept at several resolutions at once ("tiers"): each
//! observation lands in every tier's current bucket, so a coarse tier is
//! always the exact merge of the fine tier over its window — there is no
//! deferred compaction step to fall behind or lose samples. A tier is a
//! bounded ring of buckets; when it is full the oldest bucket falls off.
//! The default tiers — 10 s × 360, 1 m × 360, 10 m × 432 — retain one
//! hour at full resolution, six hours at a minute, and three days at ten
//! minutes, in a few kilobytes per series.
//!
//! Two series kinds:
//!
//! * **counters** are ingested as cumulative totals and stored as
//!   *deltas* per bucket (rate = delta / interval). Storing the delta —
//!   not the rate — makes the series integrable: the sum of a counter
//!   series' deltas is exactly the counter's observed growth, whatever
//!   the tier. Counter resets (a restarted daemon) are detected and
//!   treated as growth from zero.
//! * **gauges** store min/avg/max/last per bucket.
//!
//! A bucket can also be marked **absent**: the collector writes such a
//! tombstone when a source's ad expired or was withdrawn, so history
//! distinguishes a machine that *departed* (tombstone) from one that is
//! merely unreachable (no samples at all).
//!
//! Queries keep the paper's "stats are just ads" philosophy: each
//! (series, tier) renders as a metadata classad (`MyType =
//! "HistorySeries"`, `Metric`, `Source`, `Pool`, `Tier`, ...), an
//! ordinary classad constraint selects among them, and samples travel as
//! attributes of the same ad.

use classad::{constraint_holds, parse_expr, ClassAd, EvalPolicy, Expr, MatchConventions};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// `MyType` of every series metadata ad a query returns.
pub const SERIES_AD_TYPE: &str = "HistorySeries";

/// What a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Ingested as a cumulative total, stored as per-bucket deltas.
    Counter,
    /// Ingested as an instantaneous value, stored as min/avg/max/last.
    Gauge,
}

impl SeriesKind {
    /// The kind's name as it appears in series metadata ads.
    pub fn label(&self) -> &'static str {
        match self {
            SeriesKind::Counter => "Counter",
            SeriesKind::Gauge => "Gauge",
        }
    }
}

/// One resolution level of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSpec {
    /// Bucket width, seconds.
    pub interval_secs: u64,
    /// Ring capacity: how many buckets this tier retains.
    pub capacity: usize,
}

/// Store-wide configuration: the downsampling tiers, finest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryConfig {
    /// The resolution tiers, finest first.
    pub tiers: Vec<TierSpec>,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            tiers: vec![
                TierSpec {
                    interval_secs: 10,
                    capacity: 360,
                },
                TierSpec {
                    interval_secs: 60,
                    capacity: 360,
                },
                TierSpec {
                    interval_secs: 600,
                    capacity: 432,
                },
            ],
        }
    }
}

impl HistoryConfig {
    /// A single-tier config — handy for tests that want a fast cadence.
    pub fn single(interval_secs: u64, capacity: usize) -> Self {
        HistoryConfig {
            tiers: vec![TierSpec {
                interval_secs,
                capacity,
            }],
        }
    }
}

/// One downsampled bucket of a series at one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start (unix seconds, aligned to the tier interval).
    pub start: u64,
    /// Smallest observation (gauge value or instantaneous rate).
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sum of observations: gauge values for gauges, *deltas* for
    /// counters (so the series integrates exactly).
    pub sum: f64,
    /// Observations merged into this bucket.
    pub count: u64,
    /// The newest observation.
    pub last: f64,
    /// An absent tombstone landed in this window: the source's ad
    /// expired or was withdrawn (departed, not merely unreachable).
    pub absent: bool,
}

impl Bucket {
    /// The bucket's representative value: average for gauges, the summed
    /// delta divided by the bucket width (= rate/second) for counters.
    pub fn value(&self, kind: SeriesKind, interval_secs: u64) -> f64 {
        match kind {
            SeriesKind::Gauge if self.count > 0 => self.sum / self.count as f64,
            SeriesKind::Counter => self.sum / interval_secs.max(1) as f64,
            _ => 0.0,
        }
    }

    fn merge_observation(&mut self, value: f64, add: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.sum += add;
        self.count += 1;
        self.last = value;
    }
}

/// What [`HistoryStore::recent_window`] distills from the newest buckets
/// of one series' finest tier: the numbers history predicates (alert
/// rules, `pool_doctor`) are written against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecentWindow {
    /// Buckets summarized (≤ the requested window).
    pub points: usize,
    /// The finest tier's bucket width, seconds.
    pub interval_secs: u64,
    /// Oldest summarized bucket's start (unix seconds).
    pub start: u64,
    /// Newest summarized bucket's start (unix seconds).
    pub end: u64,
    /// The newest raw observation.
    pub last: f64,
    /// Mean of per-bucket representative values.
    pub mean: f64,
    /// Smallest per-bucket representative value.
    pub min: f64,
    /// Largest per-bucket representative value.
    pub max: f64,
    /// Rate of change per second: for counters the mean event rate over
    /// the window; for gauges the end-to-end slope.
    pub rate: f64,
    /// Counters: total events in the window (exact, from stored deltas).
    /// Gauges: the time-integral of the value (value·seconds).
    pub integral: f64,
    /// How many of the *newest* buckets carry an absent tombstone — the
    /// deadman signal: a departed source grows this tail every interval.
    pub absent_tail: usize,
    /// Absent tombstones anywhere in the window. A source with tombstones
    /// behind live buckets (`absent_count > absent_tail`) kept dying and
    /// coming back — the flapping signal.
    pub absent_count: usize,
}

#[derive(Debug, Clone)]
struct Tier {
    spec: TierSpec,
    buckets: VecDeque<Bucket>,
}

impl Tier {
    fn new(spec: TierSpec) -> Tier {
        Tier {
            spec,
            buckets: VecDeque::new(),
        }
    }

    fn bucket_at(&mut self, unix: u64) -> Option<&mut Bucket> {
        let start = unix - unix % self.spec.interval_secs.max(1);
        match self.buckets.back().map(|b| b.start) {
            Some(newest) if start < newest => {
                // A late sample: merge if its bucket is still retained.
                self.buckets.iter_mut().rev().find(|b| b.start == start)
            }
            Some(newest) if start == newest => self.buckets.back_mut(),
            _ => {
                if self.buckets.len() == self.spec.capacity {
                    self.buckets.pop_front();
                }
                self.buckets.push_back(Bucket {
                    start,
                    min: 0.0,
                    max: 0.0,
                    sum: 0.0,
                    count: 0,
                    last: 0.0,
                    absent: false,
                });
                self.buckets.back_mut()
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Series {
    kind: SeriesKind,
    /// Last raw cumulative observation (counters only): the baseline the
    /// next delta is computed against.
    last_raw: Option<(u64, f64)>,
    tiers: Vec<Tier>,
}

impl Series {
    fn new(kind: SeriesKind, cfg: &HistoryConfig) -> Series {
        Series {
            kind,
            last_raw: None,
            tiers: cfg.tiers.iter().map(|&spec| Tier::new(spec)).collect(),
        }
    }

    fn observe(&mut self, unix: u64, value: f64, add: f64) {
        for tier in &mut self.tiers {
            if let Some(b) = tier.bucket_at(unix) {
                b.merge_observation(value, add);
            }
        }
    }

    fn tombstone(&mut self, unix: u64) {
        for tier in &mut self.tiers {
            if let Some(b) = tier.bucket_at(unix) {
                b.absent = true;
            }
        }
    }
}

/// A key naming one series: which pool it describes, what it measures,
/// and which daemon (or pool-level rollup) it came from.
pub type SeriesKey = (String, String, String);

/// The multi-resolution time-series store. Not internally synchronized —
/// wrap it in a mutex to share (see [`crate::Collector`]).
#[derive(Debug, Clone)]
pub struct HistoryStore {
    cfg: HistoryConfig,
    /// Keyed `(pool, metric, source)`; a `BTreeMap` so serialization and
    /// query replies are deterministic.
    series: BTreeMap<SeriesKey, Series>,
    observations: u64,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore::new(HistoryConfig::default())
    }
}

impl HistoryStore {
    /// An empty store with the given tier layout.
    pub fn new(cfg: HistoryConfig) -> HistoryStore {
        HistoryStore {
            cfg,
            series: BTreeMap::new(),
            observations: 0,
        }
    }

    /// The tier layout in force.
    pub fn config(&self) -> &HistoryConfig {
        &self.cfg
    }

    /// Number of series retained.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total observations ingested over the store's lifetime (survives
    /// checkpoint/recover).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    fn series_mut(
        &mut self,
        pool: &str,
        metric: &str,
        source: &str,
        kind: SeriesKind,
    ) -> &mut Series {
        let key = (pool.to_string(), metric.to_string(), source.to_string());
        let cfg = &self.cfg;
        self.series
            .entry(key)
            .or_insert_with(|| Series::new(kind, cfg))
    }

    /// Record a gauge observation.
    pub fn record_gauge(&mut self, pool: &str, metric: &str, source: &str, unix: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.observations += 1;
        self.series_mut(pool, metric, source, SeriesKind::Gauge)
            .observe(unix, value, value);
    }

    /// Record a counter observation from its *cumulative* total. The
    /// first observation of a series establishes the baseline and lands
    /// no bucket; later ones store the delta since the previous
    /// observation (so the series' integral equals the counter's growth
    /// over the observed window). A total below the baseline means the
    /// counter reset (daemon restart): growth restarts from zero.
    pub fn record_counter(
        &mut self,
        pool: &str,
        metric: &str,
        source: &str,
        unix: u64,
        total: f64,
    ) {
        if !total.is_finite() {
            return;
        }
        self.observations += 1;
        let series = self.series_mut(pool, metric, source, SeriesKind::Counter);
        let Some((prev_unix, prev_total)) = series.last_raw.replace((unix, total)) else {
            return;
        };
        let delta = if total >= prev_total {
            total - prev_total
        } else {
            total // reset: the counter restarted from zero
        };
        let elapsed = unix.saturating_sub(prev_unix).max(1);
        series.observe(unix, delta / elapsed as f64, delta);
    }

    /// Drop an absent tombstone into every series of `source` in `pool`:
    /// the source's ad expired or was withdrawn, i.e. the daemon
    /// *departed* rather than going quiet.
    pub fn record_absent(&mut self, pool: &str, source: &str, unix: u64) {
        for ((p, _, s), series) in self.series.iter_mut() {
            if p == pool && s == source {
                series.tombstone(unix);
            }
        }
    }

    /// Drop an absent tombstone into **every** series of `pool`,
    /// regardless of source: the whole pool stopped answering (an
    /// unreachable flock peer), so all of its rollups are stale together.
    /// Without this, a dead peer's series would simply stop advancing —
    /// indistinguishable from a healthy-but-idle pool.
    pub fn record_pool_absent(&mut self, pool: &str, unix: u64) {
        for ((p, _, _), series) in self.series.iter_mut() {
            if p == pool {
                series.tombstone(unix);
            }
        }
    }

    /// Run a classad constraint over every (series, tier) metadata ad and
    /// return the matching series ads, samples included. `limit` caps the
    /// samples returned per series (newest kept); `0` returns whole
    /// tiers. The constraint references series metadata through `other`,
    /// e.g. `other.Metric == "Utilization" && other.Tier == 0`.
    pub fn query(&self, constraint: &str, limit: u32) -> Result<Vec<ClassAd>, String> {
        let expr = parse_expr(constraint).map_err(|e| format!("bad history constraint: {e}"))?;
        let mut query_ad = ClassAd::new();
        query_ad.set("Name", Expr::str("history-query"));
        query_ad.set("Constraint", expr);
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        let mut out = Vec::new();
        for ((pool, metric, source), series) in &self.series {
            for (tier_idx, tier) in series.tiers.iter().enumerate() {
                let ad = self.series_ad(pool, metric, source, series, tier_idx, tier, limit);
                if constraint_holds(&query_ad, &ad, &policy, &conv) {
                    out.push(ad);
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn series_ad(
        &self,
        pool: &str,
        metric: &str,
        source: &str,
        series: &Series,
        tier_idx: usize,
        tier: &Tier,
        limit: u32,
    ) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.set_str("MyType", SERIES_AD_TYPE);
        ad.set_str("Name", &format!("{pool}/{metric}/{source}@{tier_idx}"));
        ad.set_str("Pool", pool);
        ad.set_str("Metric", metric);
        ad.set_str("Source", source);
        ad.set_str("Kind", series.kind.label());
        ad.set_int("Tier", tier_idx as i64);
        ad.set_int("IntervalSecs", tier.spec.interval_secs as i64);
        ad.set_int("Capacity", tier.spec.capacity as i64);
        // Series ads are inert data: they satisfy the advertising
        // protocol's conventions without ever matching anything.
        ad.set_bool("Constraint", false);
        ad.set_int("Rank", 0);
        let skip = if limit > 0 {
            tier.buckets.len().saturating_sub(limit as usize)
        } else {
            0
        };
        let buckets: Vec<&Bucket> = tier.buckets.iter().skip(skip).collect();
        ad.set_int("Points", buckets.len() as i64);
        if let (Some(first), Some(last)) = (buckets.first(), buckets.last()) {
            ad.set_int("StartUnix", first.start as i64);
            ad.set_int("EndUnix", (last.start + tier.spec.interval_secs) as i64);
        }
        let mut times = String::new();
        let mut data = String::new();
        let mut mins = String::new();
        let mut maxs = String::new();
        let mut lasts = String::new();
        let mut counts = String::new();
        let mut absents = String::new();
        let mut integral = 0.0;
        for (i, b) in buckets.iter().enumerate() {
            if i > 0 {
                for s in [
                    &mut times,
                    &mut data,
                    &mut mins,
                    &mut maxs,
                    &mut lasts,
                    &mut counts,
                    &mut absents,
                ] {
                    s.push(',');
                }
            }
            let _ = write!(times, "{}", b.start);
            let _ = write!(
                data,
                "{}",
                trim_f64(b.value(series.kind, tier.spec.interval_secs))
            );
            let _ = write!(mins, "{}", trim_f64(b.min));
            let _ = write!(maxs, "{}", trim_f64(b.max));
            let _ = write!(lasts, "{}", trim_f64(b.last));
            let _ = write!(counts, "{}", b.count);
            absents.push(if b.absent { '1' } else { '0' });
            integral += b.sum;
        }
        ad.set_str("Times", &times);
        ad.set_str("Data", &data);
        ad.set_str("DataMin", &mins);
        ad.set_str("DataMax", &maxs);
        ad.set_str("DataLast", &lasts);
        ad.set_str("Counts", &counts);
        ad.set_str("Absent", &absents);
        // For counters the buckets store raw deltas, so this is exactly
        // the counter's growth over the retained window — comparable to
        // the live self-ad counter to within one sample interval.
        if series.kind == SeriesKind::Counter {
            ad.set_real("Integral", integral);
        }
        ad
    }

    /// Direct read access to one series' buckets at one tier (tests and
    /// in-process consumers; the wire path goes through [`Self::query`]).
    pub fn buckets(
        &self,
        pool: &str,
        metric: &str,
        source: &str,
        tier_idx: usize,
    ) -> Option<Vec<Bucket>> {
        let key = (pool.to_string(), metric.to_string(), source.to_string());
        self.series
            .get(&key)
            .and_then(|s| s.tiers.get(tier_idx))
            .map(|t| t.buckets.iter().copied().collect())
    }

    /// Every series key currently retained, in store order.
    pub fn series_keys(&self) -> Vec<SeriesKey> {
        self.series.keys().cloned().collect()
    }

    /// Summarize the newest `window` finest-tier buckets of one series
    /// into the numbers alerting predicates are written against:
    /// rate-of-change, integral, mean, and the absent-tombstone tail.
    /// `None` when the series does not exist or has no buckets yet.
    pub fn recent_window(
        &self,
        pool: &str,
        metric: &str,
        source: &str,
        window: usize,
    ) -> Option<RecentWindow> {
        let key = (pool.to_string(), metric.to_string(), source.to_string());
        let series = self.series.get(&key)?;
        let tier = series.tiers.first()?;
        let n = window.max(1).min(tier.buckets.len());
        if n == 0 {
            return None;
        }
        let interval = tier.spec.interval_secs.max(1);
        let buckets: Vec<&Bucket> = tier.buckets.iter().rev().take(n).collect();
        // `buckets` is newest-first; walk it once for the aggregates.
        let newest = buckets.first()?;
        let oldest = buckets.last()?;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut integral = 0.0;
        let mut absent_tail = 0;
        let mut absent_count = 0;
        let mut tail_open = true;
        for b in &buckets {
            let v = b.value(series.kind, interval);
            sum += v;
            min = min.min(v);
            max = max.max(v);
            if series.kind == SeriesKind::Counter {
                integral += b.sum;
            } else {
                integral += v * interval as f64;
            }
            if b.absent {
                absent_count += 1;
                if tail_open {
                    absent_tail += 1;
                }
            } else {
                tail_open = false;
            }
        }
        let elapsed = (newest.start.saturating_sub(oldest.start)).max(interval) as f64;
        let (first_v, last_v) = (
            oldest.value(series.kind, interval),
            newest.value(series.kind, interval),
        );
        let rate = match series.kind {
            // Each counter bucket holds a delta over one interval, so the
            // window's mean event rate divides the summed deltas by the
            // time the buckets cover.
            SeriesKind::Counter => integral / (n as u64 * interval) as f64,
            SeriesKind::Gauge => (last_v - first_v) / elapsed,
        };
        Some(RecentWindow {
            points: n,
            interval_secs: interval,
            start: oldest.start,
            end: newest.start,
            last: newest.last,
            mean: sum / n as f64,
            min,
            max,
            rate,
            integral,
            absent_tail,
            absent_count,
        })
    }

    // ---- checkpoint state ----

    /// Serialize the whole store into an opaque single-string state
    /// (newline-framed, tab-separated) suitable for a journal
    /// `Checkpoint` event's payload.
    pub fn encode_state(&self) -> String {
        let mut out = String::from("condor-view-state v1\n");
        let _ = writeln!(out, "observations\t{}", self.observations);
        out.push_str("tiers");
        for t in &self.cfg.tiers {
            let _ = write!(out, "\t{}x{}", t.interval_secs, t.capacity);
        }
        out.push('\n');
        for ((pool, metric, source), series) in &self.series {
            let _ = write!(
                out,
                "series\t{}\t{}\t{}\t{}",
                clean(pool),
                clean(metric),
                clean(source),
                series.kind.label()
            );
            match series.last_raw {
                Some((u, v)) => {
                    let _ = write!(out, "\t{u}\t{v}");
                }
                None => out.push_str("\t-\t-"),
            }
            out.push('\n');
            for (ti, tier) in series.tiers.iter().enumerate() {
                for b in &tier.buckets {
                    let _ = writeln!(
                        out,
                        "b\t{ti}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                        b.start, b.min, b.max, b.sum, b.count, b.last, b.absent as u8
                    );
                }
            }
        }
        out
    }

    /// Rebuild a store from [`Self::encode_state`] output. `None` when
    /// the payload is not a view-state blob (wrong magic, torn content).
    pub fn decode_state(state: &str) -> Option<HistoryStore> {
        let mut lines = state.lines();
        if lines.next()? != "condor-view-state v1" {
            return None;
        }
        let mut store = HistoryStore::new(HistoryConfig { tiers: Vec::new() });
        let mut current: Option<SeriesKey> = None;
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.first().copied()? {
                "observations" => store.observations = fields.get(1)?.parse().ok()?,
                "tiers" => {
                    for spec in &fields[1..] {
                        let (i, c) = spec.split_once('x')?;
                        store.cfg.tiers.push(TierSpec {
                            interval_secs: i.parse().ok()?,
                            capacity: c.parse().ok()?,
                        });
                    }
                }
                "series" => {
                    let kind = match *fields.get(4)? {
                        "Counter" => SeriesKind::Counter,
                        "Gauge" => SeriesKind::Gauge,
                        _ => return None,
                    };
                    let key = (
                        fields.get(1)?.to_string(),
                        fields.get(2)?.to_string(),
                        fields.get(3)?.to_string(),
                    );
                    let mut series = Series::new(kind, &store.cfg);
                    if let (Ok(u), Ok(v)) =
                        (fields.get(5)?.parse::<u64>(), fields.get(6)?.parse::<f64>())
                    {
                        series.last_raw = Some((u, v));
                    }
                    store.series.insert(key.clone(), series);
                    current = Some(key);
                }
                "b" => {
                    let key = current.as_ref()?;
                    let series = store.series.get_mut(key)?;
                    let tier = series
                        .tiers
                        .get_mut(fields.get(1)?.parse::<usize>().ok()?)?;
                    let bucket = Bucket {
                        start: fields.get(2)?.parse().ok()?,
                        min: fields.get(3)?.parse().ok()?,
                        max: fields.get(4)?.parse().ok()?,
                        sum: fields.get(5)?.parse().ok()?,
                        count: fields.get(6)?.parse().ok()?,
                        last: fields.get(7)?.parse().ok()?,
                        absent: fields.get(8)? == &"1",
                    };
                    if tier.buckets.len() == tier.spec.capacity {
                        tier.buckets.pop_front();
                    }
                    tier.buckets.push_back(bucket);
                }
                _ => return None,
            }
        }
        Some(store)
    }
}

/// Render an `f64` compactly: integers drop the fraction, everything
/// else keeps Rust's shortest round-trip form.
fn trim_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn clean(s: &str) -> String {
    s.replace(['\t', '\n'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> HistoryConfig {
        HistoryConfig {
            tiers: vec![
                TierSpec {
                    interval_secs: 10,
                    capacity: 8,
                },
                TierSpec {
                    interval_secs: 60,
                    capacity: 4,
                },
            ],
        }
    }

    #[test]
    fn gauges_downsample_to_min_avg_max_last() {
        let mut store = HistoryStore::new(two_tier());
        for (t, v) in [(100, 4.0), (103, 8.0), (107, 6.0)] {
            store.record_gauge("local", "Utilization", "pool", t, v);
        }
        let fine = store.buckets("local", "Utilization", "pool", 0).unwrap();
        assert_eq!(fine.len(), 1);
        let b = fine[0];
        assert_eq!(b.start, 100);
        assert_eq!((b.min, b.max, b.last), (4.0, 8.0, 6.0));
        assert_eq!(b.value(SeriesKind::Gauge, 10), 6.0);
        // The coarse tier merged the same observations.
        let coarse = store.buckets("local", "Utilization", "pool", 1).unwrap();
        assert_eq!(coarse[0].start, 60);
        assert_eq!(coarse[0].count, 3);
        assert_eq!(coarse[0].value(SeriesKind::Gauge, 60), 6.0);
    }

    #[test]
    fn counters_store_deltas_and_integrate_exactly() {
        let mut store = HistoryStore::new(two_tier());
        // Cumulative totals 0, 5, 12, 12, 30 — growth 30.
        for (t, v) in [
            (100, 0.0),
            (110, 5.0),
            (120, 12.0),
            (130, 12.0),
            (140, 30.0),
        ] {
            store.record_counter("local", "MatchRate", "mm", t, v);
        }
        let fine = store.buckets("local", "MatchRate", "mm", 0).unwrap();
        let total: f64 = fine.iter().map(|b| b.sum).sum();
        assert_eq!(total, 30.0, "integral equals the counter's growth");
        // Rates are deltas over the bucket width.
        assert_eq!(fine[0].value(SeriesKind::Counter, 10), 0.5);
        // The coarse tier integrates to the same growth.
        let coarse = store.buckets("local", "MatchRate", "mm", 1).unwrap();
        let coarse_total: f64 = coarse.iter().map(|b| b.sum).sum();
        assert_eq!(coarse_total, 30.0);
    }

    #[test]
    fn counter_reset_counts_as_growth_from_zero() {
        let mut store = HistoryStore::new(two_tier());
        store.record_counter("local", "MatchRate", "mm", 100, 50.0);
        store.record_counter("local", "MatchRate", "mm", 110, 60.0); // +10
        store.record_counter("local", "MatchRate", "mm", 120, 3.0); // restart: +3
        let fine = store.buckets("local", "MatchRate", "mm", 0).unwrap();
        let total: f64 = fine.iter().map(|b| b.sum).sum();
        assert_eq!(total, 13.0);
    }

    #[test]
    fn rings_stay_bounded() {
        let mut store = HistoryStore::new(two_tier());
        for i in 0..2000 {
            store.record_gauge("local", "Claimed", "ra", i * 10, 1.0);
        }
        let fine = store.buckets("local", "Claimed", "ra", 0).unwrap();
        assert_eq!(fine.len(), 8);
        assert_eq!(fine.last().unwrap().start, 19990);
        let coarse = store.buckets("local", "Claimed", "ra", 1).unwrap();
        assert_eq!(coarse.len(), 4);
    }

    #[test]
    fn absent_tombstones_mark_every_series_of_the_source() {
        let mut store = HistoryStore::new(two_tier());
        store.record_gauge("local", "Claimed", "ra-1", 100, 1.0);
        store.record_gauge("local", "Claimed", "ra-2", 100, 0.0);
        store.record_absent("local", "ra-1", 112);
        let gone = store.buckets("local", "Claimed", "ra-1", 0).unwrap();
        assert!(gone.iter().any(|b| b.absent));
        let alive = store.buckets("local", "Claimed", "ra-2", 0).unwrap();
        assert!(alive.iter().all(|b| !b.absent));
    }

    #[test]
    fn pool_absent_tombstones_mark_every_series_of_the_pool() {
        // Regression: a flock peer that stops answering must tombstone
        // *all* of its rollup series, while other pools stay untouched.
        let mut store = HistoryStore::new(two_tier());
        store.record_gauge("peer:1", "Utilization", "pool", 100, 0.5);
        store.record_counter("peer:1", "MatchRate", "pool", 100, 3.0);
        store.record_gauge("local", "Utilization", "pool", 100, 0.9);
        store.record_pool_absent("peer:1", 112);
        for metric in ["Utilization", "MatchRate"] {
            let gone = store.buckets("peer:1", metric, "pool", 0).unwrap();
            assert!(
                gone.iter().any(|b| b.absent),
                "{metric} must carry the pool tombstone"
            );
        }
        let alive = store.buckets("local", "Utilization", "pool", 0).unwrap();
        assert!(alive.iter().all(|b| !b.absent));
    }

    #[test]
    fn recent_window_summarizes_rate_integral_and_absent_tail() {
        let mut store = HistoryStore::new(two_tier());
        // A counter growing 5 events per 10 s bucket: rate 0.5/s. The
        // first observation only establishes the delta baseline, so four
        // ingests make three buckets.
        for i in 0..4u64 {
            store.record_counter("local", "MatchRate", "mm", 100 + i * 10, (i * 5) as f64);
        }
        let w = store.recent_window("local", "MatchRate", "mm", 4).unwrap();
        assert_eq!(w.points, 3);
        assert_eq!(w.integral, 15.0, "sum of deltas is the counter's growth");
        assert!((w.rate - 0.5).abs() < 1e-9, "rate = {}", w.rate);
        assert_eq!(w.absent_tail, 0);
        // A gauge sliding from 1.0 to 0.0 over 30 s: slope -1/30.
        for i in 0..4u64 {
            store.record_gauge(
                "local",
                "Utilization",
                "pool",
                100 + i * 10,
                1.0 - i as f64 / 3.0,
            );
        }
        let w = store
            .recent_window("local", "Utilization", "pool", 4)
            .unwrap();
        assert!((w.rate - (-1.0 / 30.0)).abs() < 1e-9, "rate = {}", w.rate);
        assert!((w.last - 0.0).abs() < 1e-9);
        assert!((w.max - 1.0).abs() < 1e-9);
        // Absent tombstones at the newest edge grow the deadman tail; an
        // older tombstone behind a live bucket does not count.
        store.record_absent("local", "pool", 142);
        store.record_absent("local", "pool", 151);
        let w = store
            .recent_window("local", "Utilization", "pool", 6)
            .unwrap();
        assert_eq!(w.absent_tail, 2);
        // Window larger than retention clamps; unknown series is None.
        assert!(store
            .recent_window("local", "Utilization", "pool", 99)
            .is_some());
        assert!(store.recent_window("local", "Nope", "pool", 4).is_none());
    }

    #[test]
    fn query_selects_series_by_metadata_constraint() {
        let mut store = HistoryStore::new(two_tier());
        store.record_gauge("local", "Utilization", "pool", 100, 0.5);
        store.record_counter("local", "MatchRate", "mm", 100, 0.0);
        store.record_counter("local", "MatchRate", "mm", 110, 4.0);
        let ads = store
            .query(r#"other.Metric == "Utilization" && other.Tier == 0"#, 0)
            .unwrap();
        assert_eq!(ads.len(), 1);
        let ad = &ads[0];
        assert_eq!(ad.get_string("MyType"), Some(SERIES_AD_TYPE));
        assert_eq!(ad.get_string("Kind"), Some("Gauge"));
        assert_eq!(ad.get_int("IntervalSecs"), Some(10));
        assert_eq!(ad.get_int("Points"), Some(1));
        assert_eq!(ad.get_string("Data"), Some("0.5"));
        assert_eq!(ad.get_string("Times"), Some("100"));
        // Everything at every tier.
        let all = store.query("true", 0).unwrap();
        assert_eq!(all.len(), 4, "two series x two tiers");
        // A malformed constraint is an error, not a panic.
        assert!(store.query("((", 0).is_err());
    }

    #[test]
    fn query_limit_keeps_the_newest_samples() {
        let mut store = HistoryStore::new(two_tier());
        for i in 0..5 {
            store.record_gauge("local", "Utilization", "pool", 100 + i * 10, i as f64);
        }
        let ads = store
            .query(r#"other.Metric == "Utilization" && other.Tier == 0"#, 2)
            .unwrap();
        assert_eq!(ads[0].get_int("Points"), Some(2));
        assert_eq!(ads[0].get_string("Data"), Some("3,4"));
        assert_eq!(ads[0].get_string("Times"), Some("130,140"));
    }

    #[test]
    fn state_round_trips_through_encode_decode() {
        let mut store = HistoryStore::new(two_tier());
        store.record_gauge("local", "Utilization", "pool", 100, 0.25);
        store.record_counter("local", "MatchRate", "mm", 100, 0.0);
        store.record_counter("local", "MatchRate", "mm", 113, 7.0);
        store.record_absent("local", "pool", 120);
        let state = store.encode_state();
        let back = HistoryStore::decode_state(&state).expect("state decodes");
        assert_eq!(back.config(), store.config());
        assert_eq!(back.observations(), store.observations());
        assert_eq!(
            back.buckets("local", "Utilization", "pool", 0),
            store.buckets("local", "Utilization", "pool", 0)
        );
        assert_eq!(
            back.buckets("local", "MatchRate", "mm", 1),
            store.buckets("local", "MatchRate", "mm", 1)
        );
        // The counter baseline survives: the next observation continues
        // the delta chain instead of re-baselining.
        let mut resumed = back;
        resumed.record_counter("local", "MatchRate", "mm", 125, 9.0);
        let total: f64 = resumed
            .buckets("local", "MatchRate", "mm", 0)
            .unwrap()
            .iter()
            .map(|b| b.sum)
            .sum();
        assert_eq!(total, 9.0);
        // Garbage does not decode.
        assert!(HistoryStore::decode_state("not a state").is_none());
    }
}
