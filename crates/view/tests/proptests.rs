//! Property tests for the multi-resolution history store: every coarse
//! tier must stay consistent with recomputing from the fine tier. The
//! store feeds each observation to *all* tiers simultaneously, so a
//! coarse bucket is by construction a merge of the fine buckets it
//! covers — these tests pin the merge invariants (min/max/count/last
//! exact, sum within float tolerance, absent ORed) under arbitrary
//! gauge traces and arbitrary counter traces including resets.

use condor_view::{HistoryConfig, HistoryStore, TierSpec};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const POOL: &str = "prop";
const METRIC: &str = "m";
const SOURCE: &str = "s";

/// A two-tier store whose coarse interval is an exact multiple of the
/// fine one, so fine buckets nest cleanly inside coarse buckets. The
/// fine capacity is kept small to force ring eviction mid-test.
fn store(fine: u64, factor: u64) -> HistoryStore {
    HistoryStore::new(HistoryConfig {
        tiers: vec![
            TierSpec {
                interval_secs: fine,
                capacity: 16,
            },
            TierSpec {
                interval_secs: fine * factor,
                capacity: 64,
            },
        ],
    })
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Every coarse bucket that is still fully covered by surviving fine
/// buckets must equal the merge of those fine buckets. Eviction drops
/// the oldest fine buckets first, so "fully covered" means the coarse
/// bucket starts no earlier than the oldest surviving fine bucket.
fn check_merge(store: &HistoryStore, coarse_interval: u64) -> Result<(), TestCaseError> {
    let fine = store.buckets(POOL, METRIC, SOURCE, 0).unwrap_or_default();
    let coarse = store.buckets(POOL, METRIC, SOURCE, 1).unwrap_or_default();
    let Some(front) = fine.first() else {
        return Ok(());
    };
    for cb in &coarse {
        if cb.start < front.start {
            continue; // fine members already evicted
        }
        let members: Vec<_> = fine
            .iter()
            .filter(|b| b.start >= cb.start && b.start < cb.start + coarse_interval)
            .collect();
        prop_assert!(
            !members.is_empty(),
            "coarse bucket at {} has no surviving fine members",
            cb.start
        );
        let count: u64 = members.iter().map(|b| b.count).sum();
        let sum: f64 = members.iter().map(|b| b.sum).sum();
        let min = members.iter().map(|b| b.min).fold(f64::INFINITY, f64::min);
        let max = members
            .iter()
            .map(|b| b.max)
            .fold(f64::NEG_INFINITY, f64::max);
        let last = members.last().unwrap().last;
        let absent = members.iter().any(|b| b.absent);
        prop_assert_eq!(cb.count, count, "count at {}", cb.start);
        prop_assert!(
            close(cb.sum, sum),
            "sum at {}: {} vs {}",
            cb.start,
            cb.sum,
            sum
        );
        if count > 0 {
            prop_assert!(close(cb.min, min), "min at {}", cb.start);
            prop_assert!(close(cb.max, max), "max at {}", cb.start);
            prop_assert!(close(cb.last, last), "last at {}", cb.start);
            // The derived average (what a gauge series reports) follows
            // from sum and count, so it is consistent by construction —
            // asserted here anyway as the user-facing invariant.
            prop_assert!(close(cb.sum / cb.count as f64, sum / count as f64));
        }
        prop_assert_eq!(cb.absent, absent, "absent at {}", cb.start);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Gauges: arbitrary values at arbitrary (monotone) times.
    #[test]
    fn gauge_coarse_tier_matches_fine_recompute(
        fine in 1u64..5,
        factor in 2u64..6,
        trace in proptest::collection::vec((0u64..7, -1e3f64..1e3), 1..120),
    ) {
        let mut s = store(fine, factor);
        let mut t = 1_000_000u64;
        for (dt, v) in trace {
            t += dt;
            s.record_gauge(POOL, METRIC, SOURCE, t, v);
        }
        check_merge(&s, fine * factor)?;
    }

    /// Counters: arbitrary running totals, including backwards jumps
    /// (daemon restarts). The stored deltas must integrate identically
    /// at every resolution.
    #[test]
    fn counter_coarse_tier_matches_fine_recompute(
        fine in 1u64..5,
        factor in 2u64..6,
        trace in proptest::collection::vec((0u64..7, 0u64..10_000), 2..120),
    ) {
        let mut s = store(fine, factor);
        let mut t = 1_000_000u64;
        for (dt, total) in trace {
            t += dt;
            s.record_counter(POOL, METRIC, SOURCE, t, total as f64);
        }
        check_merge(&s, fine * factor)?;
    }

    /// Absent tombstones OR across the merge just like data merges.
    #[test]
    fn tombstones_survive_downsampling(
        fine in 1u64..5,
        factor in 2u64..6,
        trace in proptest::collection::vec((0u64..7, -1e3f64..1e3, 0u32..5), 1..80),
    ) {
        let mut s = store(fine, factor);
        let mut t = 1_000_000u64;
        for (dt, v, gone) in trace {
            t += dt;
            s.record_gauge(POOL, METRIC, SOURCE, t, v);
            if gone == 0 {
                s.record_absent(POOL, SOURCE, t);
            }
        }
        check_merge(&s, fine * factor)?;
    }
}
