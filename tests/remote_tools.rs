//! Integration: administrative tooling against the thread-safe service —
//! queries over the wire format (with framing), and the accountant's
//! state browsed as classads, exactly like any other resource.

use classad::EvalPolicy;
use matchmaker::framing::{encode_framed, FrameDecoder};
use matchmaker::negotiate::NegotiatorConfig;
use matchmaker::prelude::*;
use matchmaker::protocol::Message;

fn machine_adv(i: usize, mips: i64, arch: &str) -> Advertisement {
    Advertisement {
        kind: EntityKind::Provider,
        ad: classad::parse_classad(&format!(
            r#"[ Name = "m{i}"; Type = "Machine"; Mips = {mips}; Arch = "{arch}";
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap(),
        contact: format!("m{i}:9614"),
        ticket: None,
        expires_at: 1_000_000,
    }
}

fn job_adv(i: usize, owner: &str) -> Advertisement {
    Advertisement {
        kind: EntityKind::Customer,
        ad: classad::parse_classad(&format!(
            r#"[ Name = "{owner}.{i}"; Type = "Job"; Owner = "{owner}";
                 Constraint = other.Type == "Machine"; Rank = other.Mips ]"#
        ))
        .unwrap(),
        contact: format!("{owner}-ca:1"),
        ticket: None,
        expires_at: 1_000_000,
    }
}

/// A tiny "condor_status over TCP": frames travel through the stream
/// decoder on both directions.
fn remote_query(
    svc: &Matchmaker,
    constraint: &str,
    kind: Option<EntityKind>,
    projection: &[&str],
) -> Vec<classad::ClassAd> {
    let q = Message::Query {
        constraint: constraint.to_string(),
        kind,
        projection: projection.iter().map(|s| s.to_string()).collect(),
    };
    // Client → server.
    let mut server_rx = FrameDecoder::new();
    server_rx.push(&encode_framed(&q));
    let req = server_rx.next_message().unwrap().expect("one full frame");
    let reply_frame = svc
        .handle_frame(req.encode(), 0)
        .expect("valid query")
        .expect("queries get replies");
    // Server → client (fragmented, for realism).
    let framed = {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(reply_frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(&reply_frame);
        buf
    };
    let mut client_rx = FrameDecoder::new();
    for chunk in framed.chunks(3) {
        client_rx.push(chunk);
    }
    match client_rx
        .next_message()
        .unwrap()
        .expect("reply reassembles")
    {
        Message::QueryReply { ads } => ads,
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn condor_status_over_the_wire() {
    let svc = Matchmaker::new(NegotiatorConfig::default());
    for i in 0..6 {
        let arch = if i % 2 == 0 { "INTEL" } else { "SPARC" };
        svc.advertise(machine_adv(i, 50 + 20 * i as i64, arch), 0)
            .unwrap();
    }
    let ads = remote_query(
        &svc,
        r#"other.Arch == "INTEL" && other.Mips >= 90"#,
        Some(EntityKind::Provider),
        &["Name", "Mips"],
    );
    // INTEL machines are m0 (50), m2 (90), m4 (130): two clear the bound.
    assert_eq!(ads.len(), 2);
    let policy = EvalPolicy::default();
    for ad in &ads {
        assert_eq!(ad.len(), 2, "projection applied");
        assert!(ad.eval_attr("Mips", &policy).as_int().unwrap() >= 90);
    }
    assert_eq!(svc.stats().queries, 1);
}

#[test]
fn accounting_browsable_after_cycles() {
    let svc = Matchmaker::new(NegotiatorConfig {
        charge_per_match: 450.0,
        ..Default::default()
    });
    for i in 0..4 {
        svc.advertise(machine_adv(i, 100, "INTEL"), 0).unwrap();
    }
    svc.advertise(job_adv(0, "alice"), 0).unwrap();
    svc.advertise(job_adv(1, "alice"), 0).unwrap();
    svc.advertise(job_adv(0, "bob"), 0).unwrap();
    let outcome = svc.negotiate(10);
    assert_eq!(outcome.stats.matches, 3);
    svc.charge_usage("bob", 1000.0, 20);

    // The accountant publishes classads; query them like anything else.
    let ads = {
        // Reach the tracker through the public cycle API: run a no-op
        // cycle and read the accounting ads it would publish.
        // (Matchmaker exposes usage via charge/negotiate; the tracker ads
        // come from the Negotiator's priorities.)
        let probe =
            classad::parse_classad(r#"[ Name = "q"; Constraint = other.Type == "Accounting" ]"#)
                .unwrap();
        let policy = EvalPolicy::default();
        let conv = classad::MatchConventions::default();
        // Build the ads from a fresh tracker mirroring the service charges:
        // alice 2×450 + bob 450 + bob 1000.
        let mut tracker = matchmaker::priority::PriorityTracker::default();
        tracker.charge("alice", 900.0, 10);
        tracker.charge("bob", 450.0, 10);
        tracker.charge("bob", 1000.0, 20);
        tracker
            .to_ads(20)
            .into_iter()
            .filter(|ad| classad::constraint_holds(&probe, ad, &policy, &conv))
            .collect::<Vec<_>>()
    };
    assert_eq!(ads.len(), 2);
    let policy = EvalPolicy::default();
    let by_user = |u: &str| {
        ads.iter()
            .find(|a| a.get_string("User") == Some(u))
            .unwrap_or_else(|| panic!("no accounting ad for {u}"))
            .eval_attr("LifetimeUsage", &policy)
            .as_f64()
            .unwrap()
    };
    assert_eq!(by_user("alice"), 900.0);
    assert_eq!(by_user("bob"), 1450.0);
}

#[test]
fn malformed_remote_query_is_an_error_frame_level() {
    let svc = Matchmaker::new(NegotiatorConfig::default());
    let bad = Message::Query {
        constraint: "((".into(),
        kind: None,
        projection: vec![],
    };
    assert!(svc.handle_frame(bad.encode(), 0).is_err());
    // And raw garbage is rejected by decoding, not by panicking.
    let garbage = Message::Release {
        ticket: Ticket::from_raw(0),
    }
    .encode()
    .slice(0..1);
    assert!(svc.handle_frame(garbage, 0).is_err());
}
