//! Shared harness for the live-socket integration tests.
//!
//! Every daemon and agent here binds an ephemeral loopback port (bind
//! `127.0.0.1:0`, read the OS-assigned address back) — the tests never
//! pick port numbers themselves, so parallel test binaries cannot
//! collide. `live_pool`, `ha_failover`, and `flocking` all spawn through
//! these helpers instead of keeping three drifting copies.

#![allow(dead_code)] // each test binary uses its own subset

use classad::{parse_classad, ClassAd};
use condor_pool::{
    CustomerAgent, CustomerConfig, DaemonConfig, IoConfig, MatchmakerDaemon, ResourceAgent,
    ResourceConfig,
};
use std::time::{Duration, Instant};

/// Generous convergence bound: loopback pools settle in well under a
/// second, but CI machines stall.
pub const WAIT: Duration = Duration::from_secs(60);

/// A machine ad whose constraint checks both the peer's type and its own
/// `KeyboardIdle` — so tests can flip the machine "busy" by mutating one
/// attribute and watch claim-time re-verification reject stale matches.
pub fn machine_ad(mips: i64) -> ClassAd {
    parse_classad(&format!(
        r#"[ Type = "Machine"; Mips = {mips}; KeyboardIdle = 1000;
             Constraint = other.Type == "Job" && KeyboardIdle > 300;
             Rank = 0 ]"#
    ))
    .unwrap()
}

/// A job that prefers faster machines — `Rank = other.Mips` makes match
/// order deterministic when several machines are available.
pub fn job_ad() -> ClassAd {
    parse_classad(
        r#"[ Type = "Job"; ImageSize = 8;
             Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
    )
    .unwrap()
}

/// Poll `cond` until it holds or [`WAIT`] expires (then panic, naming
/// `what` never happened).
pub fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Tight loopback deadlines for failure-heavy tests: dead sockets are
/// discovered in half a second instead of the production defaults.
pub fn fast_io() -> IoConfig {
    IoConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
    }
}

/// A daemon config for tests: ephemeral loopback bind, fast cycles, fast
/// sockets. Callers layer journal/HA/flock knobs on top.
pub fn daemon_config(name: &str) -> DaemonConfig {
    DaemonConfig {
        name: name.into(),
        bind: "127.0.0.1:0".into(),
        cycle_interval: Duration::from_millis(150),
        io: fast_io(),
        ..DaemonConfig::default()
    }
}

/// Spawn a matchmaker on an ephemeral port and return it with the
/// address it actually bound.
pub fn spawn_daemon(cfg: DaemonConfig) -> (MatchmakerDaemon, String) {
    let daemon = MatchmakerDaemon::spawn(cfg).unwrap();
    let addr = daemon.addr().to_string();
    (daemon, addr)
}

/// Spawn a resource agent heartbeating `ad` into `matchmakers`
/// (preferred-first; one entry is the lone-matchmaker case).
/// `ticket_seed` must be distinct per agent in a pool.
pub fn spawn_resource(
    name: &str,
    matchmakers: &[String],
    ticket_seed: u64,
    ad: ClassAd,
) -> ResourceAgent {
    ResourceAgent::spawn(
        ResourceConfig {
            name: name.into(),
            matchmaker: matchmakers[0].clone(),
            matchmakers: if matchmakers.len() > 1 {
                matchmakers.to_vec()
            } else {
                Vec::new()
            },
            heartbeat: Duration::from_millis(100),
            ticket_seed,
            io: fast_io(),
            ..ResourceConfig::default()
        },
        ad,
    )
    .unwrap()
}

/// Spawn a customer agent submitting `jobs` through `matchmakers`.
pub fn spawn_customer(
    user: &str,
    matchmakers: &[String],
    jobs: Vec<(String, ClassAd)>,
) -> CustomerAgent {
    CustomerAgent::spawn(
        CustomerConfig {
            user: user.into(),
            matchmaker: matchmakers[0].clone(),
            matchmakers: if matchmakers.len() > 1 {
                matchmakers.to_vec()
            } else {
                Vec::new()
            },
            heartbeat: Duration::from_millis(100),
            io: fast_io(),
            ..CustomerConfig::default()
        },
        jobs,
    )
    .unwrap()
}
