//! Acceptance tests for pool federation (flocking): two live pools, each
//! with its own matchmaker, federated over `FlockQuery`/`FlockOffer`.
//!
//! The headline scenario is the issue's acceptance bar: a job that is
//! unmatchable in pool A (which has no machines at all) flocks to pool B,
//! claims B's machine *directly* — agent to remote agent, delegated
//! ticket re-verified by B's resource agent — and the claim survives
//! pool A's matchmaker dying, because no matchmaker holds claim state.
//! The journals of all four daemons stitch into one span tree: the
//! cross-pool lifecycle is a single causal chain.
//!
//! The second test pins the mixed-pool degradation path: a pre-flock
//! peer (simulated at the wire level, the same way `tracing.rs` fakes an
//! old provider) answers the flock tag with a structured `Error`, the
//! origin marks it non-flocking permanently, and both normal traffic to
//! the peer and local matching in the origin pool keep working.

mod util;

use condor_obs::{replay, schema, self_ad_constraint, Event, JournalConfig, TraceAssembler};
use condor_pool::wire::{self, IoConfig};
use condor_pool::{CustomerAgent, CustomerConfig, DaemonConfig, ResourceAgent, ResourceConfig};
use matchmaker::framing::{frame_body, FrameDecoder};
use matchmaker::protocol::Message;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use util::{fast_io, job_ad, machine_ad, wait_until};

/// Journal directory shared with CI's flocking smoke run.
fn journal_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("flocking-acceptance");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn self_ad(addr: &str) -> classad::ClassAd {
    let reply = wire::request_reply(
        addr,
        &Message::Query {
            constraint: self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::QueryReply { ads } = reply else {
        panic!("unexpected reply: {reply:?}")
    };
    ads.first().expect("matchmaker self-ad").clone()
}

/// The two-pool acceptance run: pool A has one job and zero machines;
/// pool B has one machine and no jobs. A's cycle leaves the job's
/// autocluster unmatched, the flock hook forwards its representative to
/// B, B grants its machine with the delegated ticket, and the customer
/// claims across the pool boundary. Then A's matchmaker is killed and
/// the claim must not notice.
#[test]
fn job_flocks_to_peer_pool_and_claim_survives_origin_matchmaker_death() {
    let dir = journal_dir();
    let mm_a_journal = dir.join("mmA.jsonl");
    let mm_b_journal = dir.join("mmB.jsonl");
    let ra_journal = dir.join("ra.jsonl");
    let ca_journal = dir.join("ca.jsonl");

    // Pool B: grant-only flocking (FlockConfig with no peers answers
    // inbound queries without forwarding any of its own).
    let (mm_b, addr_b) = util::spawn_daemon(DaemonConfig {
        journal: Some(JournalConfig::new(&mm_b_journal)),
        flock: Some(condor_flock::FlockConfig::default()),
        ..util::daemon_config("mmB")
    });
    let ra_b = ResourceAgent::spawn(
        ResourceConfig {
            name: "bm0".into(),
            matchmaker: addr_b.clone(),
            heartbeat: Duration::from_millis(100),
            ticket_seed: 77,
            io: fast_io(),
            journal: Some(JournalConfig::new(&ra_journal)),
            ..ResourceConfig::default()
        },
        machine_ad(400),
    )
    .unwrap();

    // Pool A: flocks to B, owns the job, has no machines of its own.
    let (mut mm_a, addr_a) = util::spawn_daemon(DaemonConfig {
        journal: Some(JournalConfig::new(&mm_a_journal)),
        flock: Some(condor_flock::FlockConfig {
            peers: vec![vec![addr_b.clone()]],
            ..condor_flock::FlockConfig::default()
        }),
        ..util::daemon_config("mmA")
    });
    let ca = CustomerAgent::spawn(
        CustomerConfig {
            user: "flo".into(),
            matchmaker: addr_a.clone(),
            heartbeat: Duration::from_millis(100),
            io: fast_io(),
            journal: Some(JournalConfig::new(&ca_journal)),
            ..CustomerConfig::default()
        },
        vec![("flo-0".into(), job_ad())],
    )
    .unwrap();

    // The job lands on pool B's machine, claimed directly.
    wait_until("the job claims across the pool boundary", || {
        matches!(
            &ca.jobs()[0].1,
            condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "bm0"
        )
    });
    assert!(ra_b.is_claimed(), "B's machine holds the direct claim");
    assert_eq!(
        ra_b.stats().claims_rejected,
        0,
        "the delegated ticket must verify on B's resource agent"
    );

    // Both sides counted the federation traffic.
    let a = mm_a.stats();
    assert!(a.flock_queries_sent >= 1, "{a:?}");
    assert!(a.flock_matches >= 1, "{a:?}");
    let b = mm_b.stats();
    assert!(b.flock_queries_received >= 1, "{b:?}");
    assert!(b.flock_grants >= 1, "{b:?}");
    let peers = mm_a.flock_peers();
    assert_eq!(peers.len(), 1);
    assert_eq!(peers[0].name, addr_b);
    assert_eq!(peers[0].health, condor_flock::PeerHealth::Up);
    assert!(peers[0].grants >= 1, "{peers:?}");

    // The peer table and counters surface in A's self-ad — the view
    // `status_query --peers` and `pool_top` print.
    let ad_a = self_ad(&addr_a);
    let table = ad_a
        .get_string("FlockPeerTable")
        .unwrap_or_else(|| panic!("self-ad lacks FlockPeerTable: {ad_a}"));
    assert!(table.contains(&addr_b), "{table}");
    assert!(table.contains("up"), "{table}");
    assert!(ad_a.get_int("FlockQueriesSent").unwrap_or(0) >= 1, "{ad_a}");
    assert!(ad_a.get_int("JobsFlocked").unwrap_or(0) >= 1, "{ad_a}");

    // Kill pool A's matchmaker mid-lease. The claim is a direct
    // agent-to-agent lease between A's customer and B's resource agent —
    // it must survive untouched.
    mm_a.shutdown();
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        ra_b.is_claimed(),
        "origin matchmaker death must not disturb the cross-pool claim"
    );
    assert_eq!(ra_b.stats().releases, 0);
    assert!(matches!(
        &ca.jobs()[0].1,
        condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "bm0"
    ));

    ca.shutdown();
    ra_b.shutdown();
    let mut mm_b = mm_b;
    mm_b.shutdown();

    // --- Journals: A relayed the grant, B made the remote match.
    let a_records = replay(&mm_a_journal).unwrap();
    assert!(
        a_records.iter().any(|r| matches!(
            &r.event,
            Event::JobFlocked { request, offer, peer }
                if request == "flo-0" && offer == "bm0" && peer == &addr_b
        )),
        "A's journal lacks JobFlocked: {a_records:?}"
    );
    let b_records = replay(&mm_b_journal).unwrap();
    assert!(
        b_records.iter().any(|r| matches!(
            &r.event,
            Event::FlockMatchMade { request, offer, origin }
                if request == "flo-0" && offer == "bm0" && origin == &addr_a
        )),
        "B's journal lacks FlockMatchMade: {b_records:?}"
    );

    // --- The cross-pool lifecycle stitches into ONE span tree: the
    // trace crosses two matchmakers and two agents, and the customer's
    // ClaimEstablished descends from the origin's JobFlocked relay.
    let mut asm = TraceAssembler::new();
    asm.add_journal_file("mmA", &mm_a_journal).unwrap();
    asm.add_journal_file("mmB", &mm_b_journal).unwrap();
    asm.add_journal_file("ra", &ra_journal).unwrap();
    asm.add_journal_file("ca", &ca_journal).unwrap();
    let tree = asm
        .trace_ids()
        .into_iter()
        .filter_map(|id| asm.assemble(id))
        .find(|t| {
            t.spans
                .iter()
                .any(|s| s.source == "ca" && s.event.kind() == "ClaimEstablished")
        })
        .expect("a trace holding the customer's ClaimEstablished span");
    let has = |source: &str, kind: &str| {
        tree.spans
            .iter()
            .any(|s| s.source == source && s.event.kind() == kind)
    };
    assert!(has("mmA", "JobFlocked"), "{}", tree.render());
    assert!(has("mmB", "FlockMatchMade"), "{}", tree.render());
    assert!(has("ra", "ClaimEstablished"), "{}", tree.render());
    let claim_idx = tree
        .spans
        .iter()
        .position(|s| s.source == "ca" && s.event.kind() == "ClaimEstablished")
        .unwrap();
    let chain: Vec<(&str, &str)> = tree
        .ancestry(claim_idx)
        .iter()
        .map(|s| (s.source.as_str(), s.event.kind()))
        .collect();
    assert!(
        chain.contains(&("mmA", "JobFlocked")),
        "the claim must descend from the flock relay: {chain:?}\n{}",
        tree.render()
    );
}

/// Mixed-pool degradation: a pre-flock peer rejects the flock tag with a
/// structured `Error` (`unknown tag 13` — exactly what an old decoder
/// raises), the origin marks it non-flocking *permanently*, normal
/// traffic to the peer still works, and the origin pool keeps matching
/// locally as if nothing happened.
#[test]
fn pre_flock_peer_is_marked_non_flocking_without_disturbing_traffic() {
    // A wire-level simulation of an old matchmaker: answers the leader
    // probe (a plain Query) like any pre-HA daemon, and rejects every
    // other tag the way an old decoder would.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let old_addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let mut dec = FrameDecoder::new();
            loop {
                let deadline = Instant::now() + Duration::from_millis(500);
                let reply = match wire::recv(&mut stream, &mut dec, deadline) {
                    Ok(Message::Query { .. }) => Message::QueryReply { ads: vec![] },
                    Ok(_) => Message::Error {
                        detail: "malformed frame: unknown tag 13".into(),
                    },
                    Err(_) => break,
                };
                if std::io::Write::write_all(&mut stream, &frame_body(&reply.encode())).is_err() {
                    break;
                }
            }
        }
    });

    let (mut mm, addr) = util::spawn_daemon(DaemonConfig {
        flock: Some(condor_flock::FlockConfig {
            peers: vec![vec![old_addr.clone()]],
            ..condor_flock::FlockConfig::default()
        }),
        ..util::daemon_config("mm-new")
    });
    // An unmatchable job (no machines yet) forces a flock attempt at the
    // old peer every cycle.
    let ca = util::spawn_customer(
        "mixed",
        std::slice::from_ref(&addr),
        vec![("mix-0".into(), job_ad())],
    );

    wait_until("the old peer is marked non-flocking", || {
        mm.flock_peers()
            .first()
            .is_some_and(|p| p.health == condor_flock::PeerHealth::NonFlocking)
    });
    let stats = mm.stats();
    assert!(stats.flock_queries_sent >= 1, "{stats:?}");
    let peers = mm.flock_peers();
    assert_eq!(peers[0].grants, 0, "{peers:?}");

    // Non-flocking is permanent: the peer is never dialed for flocking
    // again, so the sent counter freezes even though the job stays
    // unmatched for further cycles.
    let sent_frozen = mm.flock_peers()[0].sent;
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(
        mm.flock_peers()[0].sent,
        sent_frozen,
        "a non-flocking peer must not be dialed again"
    );

    // Normal (non-flock) traffic to the old peer is untouched.
    let reply = wire::request_reply(
        &old_addr,
        &condor_pool::failover::probe_query(),
        &util::fast_io(),
    )
    .unwrap();
    assert!(matches!(reply, Message::QueryReply { .. }), "{reply:?}");

    // And the origin pool still matches locally: give it a machine and
    // the stuck job lands on it.
    let ra = util::spawn_resource("local-m", std::slice::from_ref(&addr), 5, machine_ad(100));
    wait_until("the job matches locally after the flock failure", || {
        ca.all_claimed()
    });
    assert!(matches!(
        &ca.jobs()[0].1,
        condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "local-m"
    ));

    ca.shutdown();
    ra.shutdown();
    mm.shutdown();
}
