//! End-to-end tests of the live TCP pool (`condor-pool`): the paper's
//! Figure 3 flow — advertise → negotiate → notify → direct claim → ticket
//! verify — over real loopback sockets, plus the fault cases weak
//! consistency is designed to absorb (stale ads, agents dying mid-cycle).

mod util;

use condor_pool::wire::{self, IoConfig};
use condor_pool::{PoolBuilder, PoolHandle};
use matchmaker::framing::{frame_body, FrameDecoder};
use matchmaker::protocol::{EntityKind, Message};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use util::{job_ad, machine_ad, WAIT};

fn claimed_provider_names(pool: &PoolHandle) -> Vec<String> {
    let mut names = Vec::new();
    for ca in pool.customers() {
        for (_, status) in ca.jobs() {
            if let condor_pool::JobStatus::Claimed { provider_name, .. } = status {
                names.push(provider_name);
            }
        }
    }
    names.sort();
    names
}

/// Figure 3 over real sockets: four machines, two customers with two jobs
/// each. Every step of the protocol must complete — ads arrive over TCP,
/// the ticker matches them, notifications are dialed back, customers claim
/// the providers directly, and the providers verify tickets and constraints
/// before accepting.
#[test]
fn figure3_full_cycle_over_loopback() {
    let mut builder = PoolBuilder::new();
    for i in 0..4 {
        builder = builder.machine(format!("m{i}"), machine_ad(100 + i));
    }
    let pool = builder
        .user(
            "raman",
            vec![("raman-0".into(), job_ad()), ("raman-1".into(), job_ad())],
        )
        .user(
            "miron",
            vec![("miron-0".into(), job_ad()), ("miron-1".into(), job_ad())],
        )
        .spawn()
        .unwrap();

    assert!(
        pool.wait_for(WAIT, |p| p.all_claimed()),
        "pool never converged: {:?}",
        pool.customers()
            .iter()
            .map(|c| c.jobs())
            .collect::<Vec<_>>()
    );

    // Four jobs on four distinct machines.
    let names = claimed_provider_names(&pool);
    assert_eq!(names, vec!["m0", "m1", "m2", "m3"]);
    for ra in pool.resources() {
        assert!(ra.is_claimed(), "{} should be claimed", ra.name());
        assert_eq!(ra.stats().claims_accepted, 1);
        assert_eq!(ra.stats().claims_rejected, 0);
    }
    let d = pool.daemon().stats();
    assert!(d.cycles >= 1);
    // Each match notifies both parties.
    assert!(d.notifications_sent >= 8, "{d:?}");

    // Graceful teardown joins every thread; customers release their claims
    // on the way out.
    let released: Vec<_> = pool
        .resources()
        .iter()
        .map(|r| r.name().to_owned())
        .collect();
    assert_eq!(released.len(), 4);
    pool.shutdown();
}

/// Weak consistency, step 5: the matchmaker matches against a stale ad;
/// the provider's claim-time re-verification rejects it, and the customer
/// resubmits and lands on the (less preferred) machine whose ad is honest.
#[test]
fn stale_ad_rejected_at_claim_time_and_job_lands_elsewhere() {
    let mut builder = PoolBuilder::new()
        .machine("flashy", machine_ad(1000))
        .machine("honest", machine_ad(100));
    // One advertisement each, never refreshed: the staleness window is the
    // whole test.
    builder.resource_template.heartbeat = Duration::from_secs(3600);
    let mut pool = builder.spawn().unwrap();
    assert!(
        pool.wait_for(WAIT, |p| p.daemon().service().ad_count() >= 2),
        "machine ads never arrived"
    );

    // The owner comes back to the keyboard on `flashy` *after* it
    // advertised: the matchmaker's copy still says KeyboardIdle = 1000.
    pool.resource("flashy")
        .unwrap()
        .update_ad(|ad| ad.set_int("KeyboardIdle", 5));

    // The job ranks by Mips, so the first match is the stale `flashy`.
    pool.add_customer("alice", vec![("job-0".into(), job_ad())])
        .unwrap();
    assert!(
        pool.wait_for(WAIT, |p| p.all_claimed()),
        "job never placed: {:?}",
        pool.customer("alice").unwrap().jobs()
    );

    match &pool.customer("alice").unwrap().jobs()[0].1 {
        condor_pool::JobStatus::Claimed { provider_name, .. } => {
            assert_eq!(provider_name, "honest");
        }
        s => panic!("{s:?}"),
    }
    let flashy = pool.resource("flashy").unwrap().stats();
    assert_eq!(
        flashy.claims_rejected, 1,
        "stale machine must have rejected the claim"
    );
    assert_eq!(flashy.claims_accepted, 0);
    assert!(!pool.resource("flashy").unwrap().is_claimed());
    assert!(pool.resource("honest").unwrap().is_claimed());
    assert_eq!(pool.customer("alice").unwrap().stats().claims_rejected, 1);
    pool.shutdown();
}

/// Fault tolerance: the preferred machine's RA dies abruptly after
/// advertising. The claim dial fails, the customer backs off and
/// resubmits, and the job lands on the surviving machine.
#[test]
fn ra_death_mid_claim_survived_by_retry_and_backoff() {
    let mut builder = PoolBuilder::new()
        .machine("doomed", machine_ad(1000))
        .machine("survivor", machine_ad(100));
    builder.resource_template.heartbeat = Duration::from_secs(3600);
    let mut pool = builder.spawn().unwrap();
    assert!(
        pool.wait_for(WAIT, |p| p.daemon().service().ad_count() >= 2),
        "machine ads never arrived"
    );

    // Abrupt death: no withdraw, the stale ad lingers in the matchmaker.
    assert!(pool.kill_resource("doomed"));

    pool.add_customer("bob", vec![("job-0".into(), job_ad())])
        .unwrap();
    assert!(
        pool.wait_for(WAIT, |p| p.all_claimed()),
        "job never placed: {:?}",
        pool.customer("bob").unwrap().jobs()
    );

    match &pool.customer("bob").unwrap().jobs()[0].1 {
        condor_pool::JobStatus::Claimed { provider_name, .. } => {
            assert_eq!(provider_name, "survivor");
        }
        s => panic!("{s:?}"),
    }
    let ca = pool.customer("bob").unwrap().stats();
    assert!(ca.claim_dial_failures >= 1, "{ca:?}");
    assert!(
        ca.ads_sent >= 2,
        "the job must have been resubmitted: {ca:?}"
    );
    pool.shutdown();
}

/// Protocol violations over TCP get a structured `Error` reply before the
/// daemon closes the connection — both undecodable bytes and frames whose
/// announced length exceeds the daemon's limit.
#[test]
fn daemon_answers_garbage_with_structured_errors() {
    let pool = PoolBuilder::new().spawn().unwrap();
    let addr = pool.daemon().addr().to_string();
    let io = IoConfig::default();

    // Well-framed garbage: an unknown message tag.
    let mut stream = wire::connect(&addr, &io).unwrap();
    stream.write_all(&frame_body(&[0xEE, 1, 2, 3])).unwrap();
    let mut dec = FrameDecoder::new();
    let err = wire::recv(&mut stream, &mut dec, Instant::now() + io.read_timeout).unwrap_err();
    assert!(
        matches!(err, condor_pool::WireError::Remote(ref d) if d.contains("tag")),
        "{err}"
    );

    // A length prefix past the daemon's frame limit (default 4 MiB).
    let mut stream = TcpStream::connect(pool.daemon().addr()).unwrap();
    stream.set_read_timeout(Some(io.read_timeout)).unwrap();
    stream
        .write_all(&(16u32 * 1024 * 1024).to_be_bytes())
        .unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    let mut dec = FrameDecoder::new();
    let err = wire::recv(&mut stream, &mut dec, Instant::now() + io.read_timeout).unwrap_err();
    assert!(
        matches!(err, condor_pool::WireError::Remote(ref d) if d.contains("exceeds")),
        "{err}"
    );

    let stats = pool.daemon().stats();
    assert!(stats.error_replies >= 2, "{stats:?}");
    pool.shutdown();
}

/// Soft state heals a *matchmaker* restart too (weak consistency, the
/// other direction): kill the lone matchmaker and bring a new one up at
/// the same address over the same journal. The incarnation is journaled
/// as a second `AgentRestarted`, the store resumes from the last
/// checkpoint plus tail, the free machine's heartbeat re-advertisements
/// land in the new daemon, and a job submitted after the restart matches.
#[test]
fn lone_matchmaker_restart_recovers_and_rematches() {
    use condor_obs::journal::{replay, Event, JournalConfig};
    use condor_pool::{
        CustomerAgent, CustomerConfig, DaemonConfig, MatchmakerDaemon, ResourceAgent,
        ResourceConfig,
    };

    let dir = std::env::temp_dir().join(format!("condor-live-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = JournalConfig::new(dir.join("journal.jsonl"));
    let daemon_cfg = |bind: String| DaemonConfig {
        name: "lone".into(),
        bind,
        cycle_interval: Duration::from_millis(150),
        journal: Some(journal.clone()),
        checkpoint_every: 2,
        ..DaemonConfig::default()
    };

    let mut mm = MatchmakerDaemon::spawn(daemon_cfg("127.0.0.1:0".into())).unwrap();
    let addr = mm.addr().to_string();

    // `busy` is claimed before the restart; `idle` stays free and keeps
    // heartbeating its ad into whatever listens at the contact address.
    let busy = ResourceAgent::spawn(
        ResourceConfig {
            name: "busy".into(),
            matchmaker: addr.clone(),
            heartbeat: Duration::from_millis(100),
            ..ResourceConfig::default()
        },
        machine_ad(1000),
    )
    .unwrap();
    let idle = ResourceAgent::spawn(
        ResourceConfig {
            name: "idle".into(),
            matchmaker: addr.clone(),
            heartbeat: Duration::from_millis(100),
            ticket_seed: 2,
            ..ResourceConfig::default()
        },
        machine_ad(100),
    )
    .unwrap();
    let ca = CustomerAgent::spawn(
        CustomerConfig {
            user: "alice".into(),
            matchmaker: addr.clone(),
            heartbeat: Duration::from_millis(100),
            ..CustomerConfig::default()
        },
        vec![("j0".into(), job_ad())],
    )
    .unwrap();

    let deadline = Instant::now() + WAIT;
    while !ca.all_claimed() || mm.stats().checkpoints_written < 1 {
        assert!(
            Instant::now() < deadline,
            "pool never converged before the restart: {:?}",
            ca.jobs()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(busy.is_claimed());

    // Restart: same address, same journal, no agent cooperation asked.
    mm.shutdown();
    let restart_deadline = Instant::now() + WAIT;
    let mm = loop {
        // The freed port can linger in TIME_WAIT for a moment.
        match MatchmakerDaemon::spawn(daemon_cfg(addr.clone())) {
            Ok(d) => break d,
            Err(e) => {
                assert!(Instant::now() < restart_deadline, "rebind failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };

    // A post-restart job matches the surviving free machine — which
    // requires `idle`'s re-advertisement to have reached the new daemon.
    ca.add_job("j1", job_ad());
    let deadline = Instant::now() + WAIT;
    while !ca.all_claimed() {
        assert!(
            Instant::now() < deadline,
            "job never re-matched after the restart: {:?}",
            ca.jobs()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    match &ca.jobs()[1].1 {
        condor_pool::JobStatus::Claimed { provider_name, .. } => {
            assert_eq!(provider_name, "idle");
        }
        s => panic!("{s:?}"),
    }
    // The pre-restart claim was never disturbed.
    assert!(busy.is_claimed());
    assert_eq!(busy.stats().releases, 0);

    ca.shutdown();
    busy.shutdown();
    idle.shutdown();
    let mut mm = mm;
    mm.shutdown();

    // Both incarnations left their restart marker in the shared journal.
    let records = replay(&journal.path).unwrap();
    let restarts = records
        .iter()
        .filter(|r| {
            matches!(&r.event, Event::AgentRestarted { agent, .. } if agent == "MatchmakerDaemon")
        })
        .count();
    assert_eq!(restarts, 2, "one marker per incarnation");
    assert!(
        records
            .iter()
            .any(|r| matches!(&r.event, Event::Checkpoint { .. })),
        "the first incarnation checkpointed its store"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Status tools query the live daemon over TCP exactly like the in-memory
/// facade (paper §4's `condor_status` analogue; see
/// `examples/status_query.rs --connect`).
#[test]
fn live_query_over_tcp() {
    let pool = PoolBuilder::new()
        .machine("q0", machine_ad(100))
        .machine("q1", machine_ad(400))
        .spawn()
        .unwrap();
    assert!(pool.wait_for(WAIT, |p| p.daemon().service().ad_count() >= 2));

    let reply = wire::request_reply(
        &pool.daemon().addr().to_string(),
        &Message::Query {
            constraint: "other.Mips >= 200".into(),
            kind: Some(EntityKind::Provider),
            projection: vec!["Name".into(), "Mips".into()],
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::QueryReply { ads } = reply else {
        panic!("{reply:?}")
    };
    assert_eq!(ads.len(), 1);
    assert_eq!(ads[0].get_string("Name"), Some("q1"));
    assert_eq!(ads[0].get_int("Mips"), Some(400));
    assert_eq!(ads[0].len(), 2, "projection should strip other attributes");
    pool.shutdown();
}
