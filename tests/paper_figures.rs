//! Integration tests reproducing the paper's figures end to end across
//! crates: the Figure 1/2 ads travel the real wire format, through a real
//! ad store and negotiation cycle, into a real claim handshake (Figure 3's
//! four steps).

use classad::fixtures::{FIGURE1_MACHINE, FIGURE2_JOB};
use classad::{parse_classad, EvalPolicy, MatchConventions};
use matchmaker::prelude::*;
use matchmaker::protocol::{ClaimRejection, Message};

fn figure_ads() -> (classad::ClassAd, classad::ClassAd) {
    let machine = parse_classad(FIGURE1_MACHINE).unwrap();
    let mut job = parse_classad(FIGURE2_JOB).unwrap();
    // Figure 2 carries no Name; the advertising protocol requires one (it
    // keys the ad store), and a real CA names each request ad it submits.
    job.set_str("Name", "raman.sim2.0");
    (machine, job)
}

/// Figure 3, step 1: advertisements reach the matchmaker over the wire
/// format and are admitted by the advertising protocol.
#[test]
fn figure3_step1_advertise() {
    let (machine, job) = figure_ads();
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    let mut tickets = TicketIssuer::new(1);

    // Frame, ship, decode — exactly what agents would do.
    let m_msg = Message::Advertise(Advertisement {
        kind: EntityKind::Provider,
        ad: machine,
        contact: "leonardo.cs.wisc.edu:9614".into(),
        ticket: Some(tickets.issue()),
        expires_at: 600,
    });
    let j_msg = Message::Advertise(Advertisement {
        kind: EntityKind::Customer,
        ad: job,
        contact: "raman-ca:1".into(),
        ticket: None,
        expires_at: 600,
    });
    for msg in [m_msg, j_msg] {
        let decoded = Message::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        let Message::Advertise(adv) = decoded else {
            panic!()
        };
        store.advertise(adv, 0, &proto).unwrap();
    }
    assert_eq!(store.len(), 2);
}

/// Figure 3, steps 2–3: the matchmaking algorithm pairs the figure ads and
/// notifies both parties with each other's ads and the ticket.
#[test]
fn figure3_step2_3_match_and_notify() {
    let (machine, job) = figure_ads();
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    let mut tickets = TicketIssuer::new(2);
    let ticket = tickets.issue();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Provider,
                ad: machine.clone(),
                contact: "leonardo:9614".into(),
                ticket: Some(ticket),
                expires_at: 600,
            },
            0,
            &proto,
        )
        .unwrap();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: job.clone(),
                contact: "raman-ca:1".into(),
                ticket: None,
                expires_at: 600,
            },
            0,
            &proto,
        )
        .unwrap();

    let mut negotiator = Negotiator::default();
    let outcome = negotiator.negotiate(&store, 0);
    assert_eq!(outcome.stats.matches, 1);
    let m = &outcome.matches[0];
    // The paper's numbers: job rank = 21893/1000 + 64/32 = 23.893; machine
    // rank of a research-group job = 10.
    assert!((m.request_rank - 23.893).abs() < 1e-9);
    assert_eq!(m.offer_rank, 10.0);

    let (to_customer, to_provider) = m.notifications();
    assert_eq!(
        to_customer.ticket,
        Some(ticket),
        "ticket relayed to the customer"
    );
    assert_eq!(to_provider.ticket, None);
    assert_eq!(to_customer.peer_ad, machine);
    assert_eq!(to_provider.peer_ad, job);

    // Notifications also survive the wire.
    let msg = Message::Notify(to_customer);
    assert_eq!(Message::decode(msg.encode()).unwrap(), msg);
}

/// Figure 3, step 4: claiming — ticket verification plus constraint
/// re-verification against current state.
#[test]
fn figure3_step4_claim() {
    let (machine, job) = figure_ads();
    let mut tickets = TicketIssuer::new(3);
    let ticket = tickets.issue();
    let mut handler = ClaimHandler::new();
    handler.set_ticket(ticket);

    let claim = Message::Claim(ClaimRequest {
        ticket,
        customer_ad: job.clone(),
        customer_contact: "raman-ca:1".into(),
    });
    let Message::Claim(req) = Message::decode(claim.encode()).unwrap() else {
        panic!()
    };
    let (resp, _) = handler.handle_claim(&req, &machine, 100, |_| false);
    assert!(resp.accepted);
    match handler.state() {
        ClaimState::Claimed { owner, .. } => assert_eq!(owner, "raman"),
        s => panic!("{s:?}"),
    }
}

/// Weak consistency: the machine state changed between advertisement and
/// claim (owner came back → `KeyboardIdle` collapsed), so the claim is
/// refused even though the matchmaker produced the match.
#[test]
fn stale_ad_claim_rejected() {
    let (machine, job) = figure_ads();
    let mut tickets = TicketIssuer::new(4);
    let ticket = tickets.issue();
    let mut handler = ClaimHandler::new();
    handler.set_ticket(ticket);

    // Current state at claim time: owner active 30 s ago, load high, and
    // the job's owner is no longer rank-10 (simulate by keyboard/daytime:
    // the Figure 1 constraint still admits research members, so flip the
    // job owner to a stranger during work hours instead).
    let mut stale_machine = machine.clone();
    stale_machine.set_int("KeyboardIdle", 30);
    stale_machine.set_real("LoadAvg", 1.9);
    stale_machine.set_int("DayTime", 14 * 3600);
    let mut stranger_job = job.clone();
    stranger_job.set_str("Owner", "stranger");

    let (resp, _) = handler.handle_claim(
        &ClaimRequest {
            ticket,
            customer_ad: stranger_job,
            customer_contact: "x:1".into(),
        },
        &stale_machine,
        0,
        |_| false,
    );
    assert!(!resp.accepted);
    assert_eq!(resp.rejection, Some(ClaimRejection::ConstraintFailed));
}

/// The complete four-step flow in one test, asserting each transition.
#[test]
fn figure3_full_protocol_flow() {
    let (machine, job) = figure_ads();
    let proto = AdvertisingProtocol::default();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();

    // Provider side state.
    let mut tickets = TicketIssuer::new(5);
    let ticket = tickets.issue();
    let mut handler = ClaimHandler::new();
    handler.set_ticket(ticket);

    // Step 1: advertise.
    let mut store = AdStore::new();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Provider,
                ad: machine.clone(),
                contact: "leonardo:9614".into(),
                ticket: Some(ticket),
                expires_at: 600,
            },
            0,
            &proto,
        )
        .unwrap();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: job.clone(),
                contact: "raman-ca:1".into(),
                ticket: None,
                expires_at: 600,
            },
            0,
            &proto,
        )
        .unwrap();

    // Step 2: match.
    let mut negotiator = Negotiator::default();
    let outcome = negotiator.negotiate(&store, 1);
    assert_eq!(outcome.matches.len(), 1);

    // Step 3: notify (customer receives provider ad + ticket).
    let (to_customer, _) = outcome.matches[0].notifications();

    // Step 4: claim, directly between the entities.
    let (resp, displaced) = handler.handle_claim(
        &ClaimRequest {
            ticket: to_customer.ticket.unwrap(),
            customer_ad: job.clone(),
            customer_contact: "raman-ca:1".into(),
        },
        &machine,
        2,
        |_| false,
    );
    assert!(resp.accepted);
    assert!(displaced.is_none());

    // The match was a *hint*: the matchmaker retained no claim state, and
    // releasing is also purely bilateral.
    assert!(handler.release().is_some());
    assert!(!handler.is_claimed());

    // Sanity: both constraints indeed held at claim time.
    assert!(classad::symmetric_match(&job, &machine, &policy, &conv));
}

/// The paper's strictness examples hold across the public API surface.
#[test]
fn strictness_examples_via_public_api() {
    let ad = parse_classad("[]").unwrap();
    let policy = EvalPolicy::default();
    for src in [
        "other.Memory > 32",
        "other.Memory == 32",
        "other.Memory != 32",
        "!(other.Memory == 32)",
    ] {
        let e = classad::parse_expr(src).unwrap();
        assert!(ad.eval_expr(&e, &policy).is_undefined(), "{src}");
    }
    let e = classad::parse_expr("Mips >= 10 || Kflops >= 1000").unwrap();
    let with_kflops = parse_classad("[Kflops = 21893]").unwrap();
    assert_eq!(
        with_kflops.eval_expr(&e, &policy),
        classad::Value::Bool(true)
    );
}
