//! Acceptance test for live match-failure attribution: a job whose
//! `Constraint` can never match is submitted to a live pool, `Analyze`
//! goes over the wire, and the reply must
//!
//! 1. name the failing clause and the side it belongs to;
//! 2. carry per-autocluster rejection counts that agree with what the
//!    matchmaker's journal preserved in `CycleRejections` events;
//! 3. degrade cleanly against a pre-`Analyze` peer, which answers the
//!    unknown tag with a structured error instead of hanging or crashing
//!    the connection.

use classad::{parse_classad, ClassAd};
use condor_obs::{replay_with_stats, Event, JournalConfig};
use condor_pool::wire::{self, IoConfig, WireError};
use condor_pool::PoolBuilder;
use matchmaker::framing::encode_framed;
use matchmaker::protocol::Message;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(30);

fn machine_ad(mips: i64) -> ClassAd {
    parse_classad(&format!(
        r#"[ Type = "Machine"; Mips = {mips}; State = "Unclaimed";
             Constraint = other.Type == "Job"; Rank = 0 ]"#
    ))
    .unwrap()
}

/// A job no machine in this pool can ever satisfy.
fn impossible_job() -> ClassAd {
    parse_classad(
        r#"[ Type = "Job"; Constraint = other.Type == "Machine" && other.Mips >= 100000;
             Rank = 0 ]"#,
    )
    .unwrap()
}

fn journal_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("analyze-acceptance");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn analyze(addr: &str, name: &str) -> ClassAd {
    let reply = wire::request_reply(
        addr,
        &Message::Analyze {
            name: name.to_string(),
        },
        &IoConfig::default(),
    )
    .unwrap();
    match reply {
        Message::AnalyzeReply { ad } => ad,
        other => panic!("unexpected reply: {other:?}"),
    }
}

#[test]
fn analyze_names_the_clause_and_agrees_with_the_journal() {
    let mm_journal = journal_dir().join("matchmaker.jsonl");
    let mut builder = PoolBuilder::new()
        .machine("ana-m0", machine_ad(80))
        .machine("ana-m1", machine_ad(120))
        .user("ana", vec![("ana-0".into(), impossible_job())]);
    builder.daemon.journal = Some(JournalConfig::new(&mm_journal));
    let pool = builder.spawn().unwrap();
    let addr = pool.daemon().addr().to_string();

    // Poll until the job is advertised AND at least one negotiation cycle
    // has attributed its rejection (the reply then carries last-cycle
    // context next to the live scan).
    let deadline = Instant::now() + WAIT;
    let ad = loop {
        let ad = analyze(&addr, "ana-0");
        let found = ad.get("Found").map(|e| e.to_string());
        if found.as_deref() == Some("true") && ad.contains("LastCycleRejections") {
            break ad;
        }
        assert!(
            Instant::now() < deadline,
            "Analyze never saw an attributed cycle; last reply: {ad}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };

    // The live scan names the failing clause, attributed to the request
    // side, and counts every offer.
    assert_eq!(ad.get_string("MyType"), Some("MatchAnalysis"));
    assert_eq!(ad.get_int("MatchesNow"), Some(0));
    assert_eq!(ad.get_int("PoolSize"), Some(2));
    assert_eq!(ad.get_string("TopReasonKind"), Some("RequirementsFalse"));
    assert_eq!(ad.get_string("FailingSide"), Some("request"));
    assert_eq!(ad.get_string("FailingClause"), Some("other.Mips >= 100000"));
    let breakdown = ad.get_string("RejectBreakdown").unwrap();
    assert!(
        breakdown.contains("ReqFalse(request): other.Mips >= 100000=2"),
        "live breakdown missing per-offer counts: {breakdown}"
    );

    // Last-cycle context: the negotiator's own rejection table for this
    // job's autocluster, stamped with the cycle ordinal.
    let cycle = ad.get_int("Cycle").expect("attributed cycle ordinal") as u64;
    let segment = ad.get_string("LastCycleRejections").unwrap().to_string();
    assert!(
        segment.contains("ana-0") && segment.contains("other.Mips >= 100000=2"),
        "cycle segment should name the request and count both offers: {segment}"
    );

    pool.shutdown();

    // Journal agreement: replaying the matchmaker's journal must yield a
    // CycleRejections event for the same cycle whose breakdown contains
    // the reply's segment verbatim.
    let (records, stats) = replay_with_stats(&mm_journal).unwrap();
    assert_eq!(
        stats.unknown_kind, 0,
        "no foreign events in our own journal"
    );
    let journaled = records
        .iter()
        .find_map(|r| match &r.event {
            Event::CycleRejections {
                cycle: c,
                breakdown,
                rejected,
                ..
            } if *c == cycle => Some((breakdown.clone(), *rejected)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no CycleRejections for cycle {cycle} in {records:?}"));
    assert!(
        journaled.0.contains(&segment),
        "journal breakdown {:?} does not contain the Analyze reply's segment {:?}",
        journaled.0,
        segment
    );
    assert_eq!(journaled.1, 2, "both offers were rejected that cycle");
}

#[test]
fn analyze_against_a_pre_analyze_peer_fails_cleanly() {
    // A daemon that predates tag 9 cannot decode the Analyze frame; its
    // decoder raises BadFrame("unknown tag 9") and the serving loop
    // answers with a structured Message::Error. Simulate that peer
    // byte-for-byte: read one frame, reply the way an old daemon does.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        // Read one length-prefixed frame by hand — this build's
        // FrameDecoder understands tag 9, the peer under simulation
        // doesn't.
        let mut len_buf = [0u8; 4];
        sock.read_exact(&mut len_buf).unwrap();
        let len = u32::from_be_bytes(len_buf) as usize;
        let mut body = vec![0u8; len];
        sock.read_exact(&mut body).unwrap();
        // An old peer's Message::decode stops at tag 8 and raises
        // BadFrame("unknown tag 9"); its serving loop turns that into a
        // structured error reply.
        assert_eq!(body[0], 9, "Analyze should arrive as tag 9");
        let reply = Message::Error {
            detail: "malformed frame: unknown tag 9".into(),
        };
        sock.write_all(&encode_framed(&reply)).unwrap();
    });

    let err = wire::request_reply(
        &addr,
        &Message::Analyze { name: "x".into() },
        &IoConfig::default(),
    )
    .expect_err("an old peer must reject the Analyze tag");
    match err {
        WireError::Remote(detail) => {
            assert!(detail.contains("unknown tag 9"), "{detail}");
        }
        other => panic!("expected a structured remote error, got {other:?}"),
    }
    server.join().unwrap();
}
