//! High-availability acceptance: kill the leader of a three-matchmaker
//! set mid-operation and watch the pool heal itself.
//!
//! The paper's weak-consistency stance makes this failover cheap: the
//! matchmaker is stateless with respect to *matches* (claims are direct
//! agent-to-agent leases), so losing it can never lose an allocation —
//! only delay new ones. The HA set turns that delay into roughly one
//! leader lease: a standby notices the silence, wins the election, and
//! the agents' probes chase the lease to the new leader.

mod util;

use condor_obs::schema;
use condor_pool::{
    wire, Backoff, CustomerAgent, CustomerConfig, DaemonConfig, HaConfig, IoConfig,
    MatchmakerDaemon, ResourceAgent, ResourceConfig,
};
use matchmaker::protocol::Message;
use std::time::Duration;
use util::{job_ad, machine_ad, wait_until};

fn spawn_ha_member(name: &str) -> MatchmakerDaemon {
    MatchmakerDaemon::spawn(DaemonConfig {
        ha: Some(HaConfig {
            peers: Vec::new(), // filled in via set_ha_peers below
            lease: Duration::from_secs(2),
            recovery_path: None,
        }),
        ..util::daemon_config(name)
    })
    .unwrap()
}

fn leader_index(daemons: &[Option<MatchmakerDaemon>]) -> Option<usize> {
    let leaders: Vec<usize> = daemons
        .iter()
        .enumerate()
        .filter(|(_, d)| d.as_ref().is_some_and(|d| d.is_leader()))
        .map(|(i, _)| i)
        .collect();
    (leaders.len() == 1).then(|| leaders[0])
}

/// The headline scenario: one leader, two standbys, live claims. Kill the
/// leader. A standby must take over within the lease, established claims
/// must survive untouched, and an idle job submitted after the failover
/// must still match.
#[test]
fn killing_the_leader_fails_over_without_losing_claims() {
    let mut daemons: Vec<Option<MatchmakerDaemon>> = (0..3)
        .map(|i| Some(spawn_ha_member(&format!("mm{i}"))))
        .collect();
    let addrs: Vec<String> = daemons
        .iter()
        .map(|d| d.as_ref().unwrap().addr().to_string())
        .collect();
    for (i, d) in daemons.iter().enumerate() {
        let peers: Vec<String> = (0..3)
            .filter(|j| *j != i)
            .map(|j| addrs[j].clone())
            .collect();
        d.as_ref().unwrap().set_ha_peers(peers);
    }

    // Exactly one leader emerges from the first election.
    wait_until("a single leader", || leader_index(&daemons).is_some());
    let first = leader_index(&daemons).unwrap();
    let first_epoch = daemons[first].as_ref().unwrap().leader_epoch();
    assert!(first_epoch >= 1);

    // Agents know the whole HA set; decorrelated jitter keeps their
    // post-failover re-advertisements from stampeding in lockstep.
    let backoff = |seed: u64| Backoff {
        initial: Duration::from_millis(25),
        max_delay: Duration::from_millis(250),
        jitter: 0.5,
        jitter_seed: seed,
        ..Backoff::default()
    };
    let fast = ResourceAgent::spawn(
        ResourceConfig {
            name: "m-fast".into(),
            matchmakers: addrs.clone(),
            heartbeat: Duration::from_millis(100),
            backoff: backoff(1),
            ticket_seed: 11,
            ..ResourceConfig::default()
        },
        machine_ad(1000),
    )
    .unwrap();
    let slow = ResourceAgent::spawn(
        ResourceConfig {
            name: "m-slow".into(),
            matchmakers: addrs.clone(),
            heartbeat: Duration::from_millis(100),
            backoff: backoff(2),
            ticket_seed: 12,
            ..ResourceConfig::default()
        },
        machine_ad(100),
    )
    .unwrap();
    let customer = CustomerAgent::spawn(
        CustomerConfig {
            user: "alice".into(),
            matchmakers: addrs.clone(),
            heartbeat: Duration::from_millis(100),
            backoff: backoff(3),
            ..CustomerConfig::default()
        },
        vec![("j0".into(), job_ad())],
    )
    .unwrap();

    // The first job lands on the faster machine (Rank = other.Mips).
    wait_until("j0 claimed", || {
        matches!(
            &customer.jobs()[0].1,
            condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "m-fast"
        )
    });
    assert!(fast.is_claimed());

    // Kill the leader mid-operation.
    daemons[first].take().unwrap().shutdown();

    // A standby is elected within the lease (generously bounded by WAIT),
    // at a strictly higher epoch.
    wait_until("a new leader", || {
        leader_index(&daemons).is_some_and(|i| i != first)
    });
    let second = leader_index(&daemons).unwrap();
    let second_epoch = daemons[second].as_ref().unwrap().leader_epoch();
    assert!(
        second_epoch > first_epoch,
        "takeover must advance the epoch: {second_epoch} vs {first_epoch}"
    );

    // Zero claims lost: the direct claim never involved the matchmaker.
    assert!(fast.is_claimed(), "failover must not disturb a live claim");
    assert!(matches!(
        &customer.jobs()[0].1,
        condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "m-fast"
    ));
    assert_eq!(fast.stats().releases, 0);

    // An idle job submitted after the failover still matches: the agents'
    // probes follow the redirect to the new leader, re-advertise, and the
    // new leader's cycles place it on the surviving free machine.
    customer.add_job("j1", job_ad());
    wait_until("j1 claimed through the new leader", || {
        customer.all_claimed()
    });
    assert!(matches!(
        &customer.jobs()[1].1,
        condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "m-slow"
    ));
    assert!(
        customer.stats().failovers >= 1 || customer.matchmaker_contact() == addrs[second],
        "the customer should have chased the lease"
    );

    // Epoch and leadership are visible in the new leader's self-ad.
    let reply = wire::request_reply(
        &addrs[second],
        &Message::Query {
            constraint: condor_obs::self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::QueryReply { ads } = reply else {
        panic!("{reply:?}")
    };
    let ad = ads
        .iter()
        .find(|ad| ad.get_string("LeaderContact") == Some(addrs[second].as_str()))
        .unwrap_or_else(|| panic!("no self-ad names the leader: {ads:?}"));
    assert_eq!(ad.get("IsLeader").unwrap().to_string(), "true", "{ad}");
    assert_eq!(ad.get_int("LeaderEpoch"), Some(second_epoch as i64), "{ad}");

    // Standbys redirect, and the redirect names the leader.
    let standby = (0..3).find(|i| *i != first && *i != second).unwrap();
    let err = wire::request_reply(
        &addrs[standby],
        &Message::Query {
            constraint: "true".into(),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap_err();
    match err {
        condor_pool::WireError::Remote(detail) => {
            assert_eq!(
                condor_pool::failover::parse_leader_redirect(&detail).as_deref(),
                Some(addrs[second].as_str()),
                "{detail}"
            );
        }
        other => panic!("expected a remote redirect, got {other}"),
    }

    customer.shutdown();
    fast.shutdown();
    slow.shutdown();
    for d in daemons.iter_mut().filter_map(Option::take) {
        let mut d = d;
        d.shutdown();
    }
}

/// Leadership telemetry before any failure: the elected leader advertises
/// `IsLeader`, its epoch, and how many standbys acked its last heartbeat
/// round; a lone (non-HA) daemon advertises leadership from birth at
/// epoch 0.
#[test]
fn leadership_is_visible_in_self_ads() {
    let mut lone = MatchmakerDaemon::spawn(DaemonConfig {
        cycle_interval: Duration::from_secs(3600),
        ..DaemonConfig::default()
    })
    .unwrap();
    assert!(lone.is_leader());
    assert_eq!(lone.leader_epoch(), 0);
    assert_eq!(
        lone.leader_contact().as_deref(),
        Some(&*lone.addr().to_string())
    );
    let reply = wire::request_reply(
        &lone.addr().to_string(),
        &Message::Query {
            constraint: condor_obs::self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::QueryReply { ads } = reply else {
        panic!("{reply:?}")
    };
    assert_eq!(ads[0].get("IsLeader").unwrap().to_string(), "true");
    assert_eq!(ads[0].get_int("LeaderEpoch"), Some(0));
    lone.shutdown();

    // A two-member HA set: the leader's standby count converges to 1.
    let mut daemons: Vec<Option<MatchmakerDaemon>> = (0..2)
        .map(|i| Some(spawn_ha_member(&format!("pair{i}"))))
        .collect();
    let addrs: Vec<String> = daemons
        .iter()
        .map(|d| d.as_ref().unwrap().addr().to_string())
        .collect();
    daemons[0]
        .as_ref()
        .unwrap()
        .set_ha_peers(vec![addrs[1].clone()]);
    daemons[1]
        .as_ref()
        .unwrap()
        .set_ha_peers(vec![addrs[0].clone()]);
    wait_until("a leader in the pair", || leader_index(&daemons).is_some());
    let leader = leader_index(&daemons).unwrap();
    wait_until("the standby acks a heartbeat", || {
        let reply = wire::request_reply(
            &addrs[leader],
            &Message::Query {
                constraint: condor_obs::self_ad_constraint(schema::MATCHMAKER_STATS),
                kind: None,
                projection: vec![],
            },
            &IoConfig::default(),
        );
        matches!(
            reply,
            Ok(Message::QueryReply { ads }) if ads
                .first()
                .and_then(|ad| ad.get_int("StandbyCount"))
                == Some(1)
        )
    });
    for d in daemons.iter_mut().filter_map(Option::take) {
        let mut d = d;
        d.shutdown();
    }
}
