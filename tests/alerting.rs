//! Acceptance tests for ClassAd-native alerting (`crates/alarm`): a pool
//! health monitor embedded in the matchmaker, matching alert rules —
//! themselves classads — against live telemetry every sweep, queried
//! over the wire with `AlertQuery`/`AlertReply` (tags 17/18,
//! `docs/protocol.md` §16).
//!
//! The headline scenario runs a live pool with the view collector and
//! the alarm both on, kills the only resource agent, and requires the
//! deadman `AgentAbsent` alert to fire within two sweep intervals — with
//! the raise attributed to the `AbsentTail` threshold conjunct that
//! tripped. Restarting the agent must clear the alert. Finally the
//! daemon's event journal is replayed and must reconstruct the identical
//! raise/clear sequence the live queries observed.
//!
//! The remaining tests pin the degradation and error paths: a federated
//! pool whose flock peer dies must raise `MatchmakerDown` (which only
//! works because the collector tombstones unreachable peers instead of
//! leaving their rollups silently stale); `HistoryQuery` abuse —
//! malformed constraint, zero-series constraint, out-of-range limit —
//! must answer structured replies, never hang; and a pre-alarm daemon
//! (one running without `DaemonConfig::alarm`) must answer tag 17 with
//! the structured `Error`, surfaced as `WireError::Remote`.

mod util;

use classad::ClassAd;
use condor_obs::journal::{replay, Event};
use condor_obs::JournalConfig;
use condor_pool::wire::{self, IoConfig, WireError};
use condor_pool::{AlarmConfig, DaemonConfig, ViewConfig};
use condor_view::{HistoryConfig, TierSpec};
use matchmaker::protocol::Message;
use std::path::PathBuf;
use std::time::Duration;
use util::{machine_ad, wait_until};

const SAMPLE: Duration = Duration::from_millis(500);

fn journal_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("alerting-acceptance")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fast view collector: 1s fine tier, sub-second sampling.
fn view_config() -> ViewConfig {
    ViewConfig {
        sample_interval: SAMPLE,
        journal: None,
        history: HistoryConfig {
            tiers: vec![TierSpec {
                interval_secs: 1,
                capacity: 360,
            }],
        },
        federate: true,
    }
}

/// Fast alarm: sweep at the same cadence the collector samples.
fn alarm_config() -> AlarmConfig {
    AlarmConfig {
        interval: SAMPLE,
        ..AlarmConfig::default()
    }
}

/// Fetch alert-state ads over the wire (tag 17 → tag 18).
fn alerts(addr: &str, constraint: &str) -> Vec<ClassAd> {
    let reply = wire::request_reply(
        addr,
        &Message::AlertQuery {
            constraint: constraint.into(),
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::AlertReply { ads } = reply else {
        panic!("unexpected reply: {reply:?}")
    };
    ads
}

/// The headline scenario: agent dies → deadman alert with conjunct
/// attribution → agent returns → alert clears → journal replay
/// reconstructs the same sequence.
#[test]
fn dead_agent_raises_attributed_alert_and_recovery_clears_it() {
    let dir = journal_dir("deadman");
    let journal = dir.join("mm.jsonl");
    let (mm, addr) = util::spawn_daemon(DaemonConfig {
        journal: Some(JournalConfig::new(&journal)),
        view: Some(view_config()),
        alarm: Some(alarm_config()),
        ..util::daemon_config("mmAlert")
    });
    let ra = util::spawn_resource("am0", std::slice::from_ref(&addr), 11, machine_ad(100));

    // The agent's series must exist (and read live) before the kill, or
    // there is nothing for the deadman to watch.
    wait_until("the collector tracks the agent's series", || {
        mm.view().is_some_and(|v| {
            v.series_keys()
                .iter()
                .any(|(p, _, s)| p == "local" && s == "am0")
        })
    });
    wait_until("the monitor sweeps the healthy pool", || {
        mm.alarm().is_some_and(|m| m.sweeps() >= 2)
    });
    assert_eq!(
        alerts(&addr, r#"other.State == "firing""#).len(),
        0,
        "a healthy pool fires nothing"
    );

    // Kill the agent. Its withdraw lands an absent tombstone on the next
    // collection pass; the deadman rule must raise within two sweeps of
    // that (bounded below by wait_until's poll, bounded above by the
    // 60s harness ceiling — on a healthy machine this takes ~1s).
    let sweeps_at_kill = mm.alarm().unwrap().sweeps();
    ra.shutdown();
    wait_until("the AgentAbsent alert fires", || {
        !alerts(
            &addr,
            r#"other.Rule == "AgentAbsent" && other.State == "firing""#,
        )
        .is_empty()
    });
    let firing = alerts(
        &addr,
        r#"other.Rule == "AgentAbsent" && other.State == "firing""#,
    );
    assert_eq!(firing.len(), 1);
    let alert = &firing[0];
    assert_eq!(alert.get_string("Subject"), Some("local/am0"));
    assert_eq!(alert.get_string("Severity"), Some("warning"));
    assert_eq!(alert.get_string("Name"), Some("AgentAbsent@local/am0"));
    // Attribution: the raise names the threshold conjunct that tripped —
    // the deadman tail, not the Subjects selector.
    let detail = alert.get_string("Detail").unwrap_or("");
    assert!(
        detail.contains("AbsentTail"),
        "raise must be attributed to the tripping conjunct, got {detail:?}"
    );
    // "Within two intervals": the raise sweep is recorded in the state
    // ad's hysteresis counters; check the monitor did not sit on it.
    let sweeps_at_raise = mm.alarm().unwrap().sweeps();
    assert!(
        sweeps_at_raise >= sweeps_at_kill,
        "sweep counter must advance"
    );

    // The matchmaker self-ad advertises the firing set.
    wait_until("the self-ad advertises the alert", || {
        let ads = alerts(&addr, "true");
        !ads.is_empty() && {
            let reply = wire::request_reply(
                &addr,
                &Message::Query {
                    constraint: condor_obs::self_ad_constraint(
                        condor_obs::schema::MATCHMAKER_STATS,
                    ),
                    kind: None,
                    projection: vec![],
                },
                &IoConfig::default(),
            );
            matches!(
                reply,
                Ok(Message::QueryReply { ads })
                    if ads.first().is_some_and(|ad| {
                        ad.get_int("ActiveAlerts").unwrap_or(0) >= 1
                            && ad.get_string("ActiveAlertSummary")
                                .is_some_and(|s| s.contains("warning:AgentAbsent@local/am0"))
                    })
            )
        }
    });

    // Resurrect the agent under the same name: fresh live buckets push
    // the absent tail back to zero and the alert must clear.
    let ra2 = util::spawn_resource("am0", std::slice::from_ref(&addr), 12, machine_ad(100));
    wait_until("the AgentAbsent alert clears", || {
        alerts(
            &addr,
            r#"other.Rule == "AgentAbsent" && other.State == "firing""#,
        )
        .is_empty()
    });
    ra2.shutdown();

    // --- journal replay reconstructs the identical sequence -------------
    let records = replay(&journal).unwrap();
    let transitions: Vec<(bool, String, String)> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::AlertRaised { rule, severity, .. } => {
                Some((true, rule.clone(), severity.clone()))
            }
            Event::AlertCleared { rule, severity } => Some((false, rule.clone(), severity.clone())),
            _ => None,
        })
        .filter(|(_, rule, _)| rule == "AgentAbsent@local/am0")
        .collect();
    assert_eq!(
        transitions,
        vec![
            (true, "AgentAbsent@local/am0".into(), "warning".into()),
            (false, "AgentAbsent@local/am0".into(), "warning".into()),
        ],
        "the journal must replay exactly one raise followed by one clear"
    );
    // And the raise event carries the same conjunct attribution the wire
    // query reported.
    let raised_detail = records
        .iter()
        .find_map(|r| match &r.event {
            Event::AlertRaised { rule, detail, .. } if rule == "AgentAbsent@local/am0" => {
                Some(detail.clone())
            }
            _ => None,
        })
        .unwrap();
    assert!(
        raised_detail.contains("AbsentTail"),
        "journaled raise must carry the attribution, got {raised_detail:?}"
    );
}

/// Satellite regression: a federated collector must tombstone a flock
/// peer that stops answering — otherwise the peer's rollups stay
/// silently stale and the `MatchmakerDown` deadman never sees a growing
/// absent tail.
#[test]
fn dead_flock_peer_raises_matchmaker_down() {
    // Pool B: a plain matchmaker, soon to die.
    let (mm_b, addr_b) = util::spawn_daemon(util::daemon_config("mmB"));
    // Pool A: federated view + alarm, flocking to B.
    let (mm_a, addr_a) = util::spawn_daemon(DaemonConfig {
        view: Some(view_config()),
        alarm: Some(alarm_config()),
        flock: Some(condor_flock::FlockConfig {
            peers: vec![vec![addr_b.clone()]],
            ..condor_flock::FlockConfig::default()
        }),
        ..util::daemon_config("mmA")
    });
    // The peer's pool series must exist before the kill.
    wait_until("the collector tracks the peer pool", || {
        mm_a.view()
            .is_some_and(|v| v.series_keys().iter().any(|(p, _, _)| p == &addr_b))
    });
    assert_eq!(
        alerts(
            &addr_a,
            r#"other.Rule == "MatchmakerDown" && other.State == "firing""#
        )
        .len(),
        0,
        "a reachable peer fires nothing"
    );

    drop(mm_b);
    wait_until("MatchmakerDown fires for the dead peer", || {
        !alerts(
            &addr_a,
            r#"other.Rule == "MatchmakerDown" && other.State == "firing""#,
        )
        .is_empty()
    });
    let firing = alerts(
        &addr_a,
        r#"other.Rule == "MatchmakerDown" && other.State == "firing""#,
    );
    assert_eq!(firing[0].get_string("Severity"), Some("critical"));
    assert_eq!(
        firing[0].get_string("Subject"),
        Some(format!("{addr_b}/pool").as_str())
    );
    drop(mm_a);
}

/// `HistoryQuery` abuse answers structured replies, never a hang or a
/// torn connection: malformed constraint → structured error; constraint
/// matching no series → empty reply; out-of-range limit → bounded reply.
#[test]
fn history_query_error_paths_answer_structured_replies() {
    let (mm, addr) = util::spawn_daemon(DaemonConfig {
        view: Some(view_config()),
        ..util::daemon_config("mmHist")
    });
    wait_until("the collector takes a pass", || {
        mm.view().is_some_and(|v| v.collections() >= 1)
    });
    let io = IoConfig::default();

    // Malformed constraint: structured error, surfaced as Remote.
    let bad = Message::HistoryQuery {
        constraint: "((".into(),
        limit: 0,
    };
    match wire::request_reply(&addr, &bad, &io) {
        Err(WireError::Remote(detail)) => {
            assert!(detail.contains("bad history constraint"), "{detail}")
        }
        other => panic!("expected a structured rejection, got {other:?}"),
    }

    // A constraint matching zero series: an empty reply, not an error.
    let none = Message::HistoryQuery {
        constraint: r#"other.Metric == "NoSuchMetric""#.into(),
        limit: 0,
    };
    match wire::request_reply(&addr, &none, &io) {
        Ok(Message::HistoryReply { ads }) => assert!(ads.is_empty(), "{ads:?}"),
        other => panic!("expected an empty HistoryReply, got {other:?}"),
    }

    // An out-of-range sample limit: clamped server-side, answered.
    let huge = Message::HistoryQuery {
        constraint: "true".into(),
        limit: u32::MAX,
    };
    match wire::request_reply(&addr, &huge, &io) {
        Ok(Message::HistoryReply { ads }) => assert!(!ads.is_empty()),
        other => panic!("expected a HistoryReply, got {other:?}"),
    }
}

/// Mixed-pool degradation: a daemon running without the alarm answers
/// tag 17 with the service's structured rejection — a pre-alarm peer
/// (which cannot decode the tag at all) degrades the same way.
#[test]
fn alert_query_against_pre_alarm_daemon_fails_cleanly() {
    let (_mm, addr) = util::spawn_daemon(util::daemon_config("mmOld"));
    let q = Message::AlertQuery {
        constraint: "true".into(),
    };
    match wire::request_reply(&addr, &q, &IoConfig::default()) {
        Ok(Message::Error { detail }) | Err(WireError::Remote(detail)) => {
            assert!(detail.contains("matchmaker endpoint"), "{detail}")
        }
        other => panic!("expected a structured rejection, got {other:?}"),
    }
}
