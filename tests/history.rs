//! Acceptance tests for the pool-history subsystem (`crates/view`): a
//! CondorView-style time-series store embedded in the matchmaker,
//! queried over the wire with `HistoryQuery`/`HistoryReply` (tags
//! 15/16, `docs/protocol.md` §15).
//!
//! The headline scenario runs a live federated pool for 30+ seconds of
//! activity — local matches and claims, one resource-agent death, one
//! job flocked to a peer pool — then checks the history against the
//! daemons' *live* self-ad counters: the match-rate series must
//! integrate to exactly the matches the matchmaker counted, and the
//! utilization series must track the claimed fraction, both within one
//! sample interval. Then the view server is killed and restarted on the
//! same checkpoint journal, and the recovered history must be missing
//! at most one interval.
//!
//! The second test pins the mixed-pool degradation path: a pre-view
//! daemon (one running without `DaemonConfig::view`) answers tags 15
//! and 16 with the structured `Error`, surfaced to the client as
//! `WireError::Remote` — never a hang or a torn connection.

mod util;

use classad::{ClassAd, Expr, Literal};
use condor_obs::{schema, self_ad_constraint, JournalConfig};
use condor_pool::wire::{self, IoConfig, WireError};
use condor_pool::{DaemonConfig, ViewConfig};
use condor_view::{HistoryConfig, Resumption, TierSpec};
use matchmaker::protocol::Message;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use util::{fast_io, job_ad, machine_ad, wait_until};

/// Journal directory shared with CI's view smoke run.
fn journal_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("history-acceptance");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn real(ad: &ClassAd, attr: &str) -> Option<f64> {
    match ad.get(attr).map(|e| e.as_ref()) {
        Some(Expr::Lit(Literal::Real(v))) => Some(*v),
        Some(Expr::Lit(Literal::Int(v))) => Some(*v as f64),
        _ => None,
    }
}

/// Fetch history series over the wire (tag 15 → tag 16).
fn history(addr: &str, constraint: &str) -> Vec<ClassAd> {
    let reply = wire::request_reply(
        addr,
        &Message::HistoryQuery {
            constraint: constraint.into(),
            limit: 0,
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::HistoryReply { ads } = reply else {
        panic!("unexpected reply: {reply:?}")
    };
    ads
}

/// Live self-ads of one daemon type, via the ordinary query path.
fn stats_ads(addr: &str, my_type: &str) -> Vec<ClassAd> {
    let reply = wire::request_reply(
        addr,
        &Message::Query {
            constraint: self_ad_constraint(my_type),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::QueryReply { ads } = reply else {
        panic!("unexpected reply: {reply:?}")
    };
    ads
}

/// The `Integral` of the first series matching `constraint`, or `None`
/// while the series has not appeared yet.
fn integral(addr: &str, constraint: &str) -> Option<f64> {
    history(addr, constraint)
        .first()
        .and_then(|ad| real(ad, "Integral"))
}

const SAMPLE: Duration = Duration::from_millis(500);

fn view_config(journal: &PathBuf) -> ViewConfig {
    ViewConfig {
        sample_interval: SAMPLE,
        journal: Some(JournalConfig::new(journal)),
        // 1s fine tier + 10s coarse tier: 30s of pool life lands ~30
        // fine buckets and a few coarse ones, so both resolutions are
        // exercised over the wire.
        history: HistoryConfig {
            tiers: vec![
                TierSpec {
                    interval_secs: 1,
                    capacity: 360,
                },
                TierSpec {
                    interval_secs: 10,
                    capacity: 432,
                },
            ],
        },
        federate: true,
    }
}

/// The 30-second federated pool run, checked against live counters,
/// then killed and recovered from the checkpoint journal.
#[test]
fn history_tracks_live_pool_and_survives_view_server_restart() {
    let dir = journal_dir();
    let view_journal = dir.join("view.jsonl");

    // Pool B: grant-only flocking, one fast machine, no jobs of its own.
    let (_mm_b, addr_b) = util::spawn_daemon(DaemonConfig {
        flock: Some(condor_flock::FlockConfig::default()),
        ..util::daemon_config("mmB")
    });
    let ra_b = util::spawn_resource("bm0", std::slice::from_ref(&addr_b), 77, machine_ad(400));

    // Pool A: the matchmaker under test — embedded view collector with a
    // checkpoint journal, flocking to B. One machine, two jobs: one
    // claims locally, the other must flock.
    let (mut mm_a, addr_a) = util::spawn_daemon(DaemonConfig {
        view: Some(view_config(&view_journal)),
        flock: Some(condor_flock::FlockConfig {
            peers: vec![vec![addr_b.clone()]],
            ..condor_flock::FlockConfig::default()
        }),
        ..util::daemon_config("mmA")
    });
    // Let the collector take its baseline sample (MatchesTotal = 0)
    // before any activity, so the match-rate integral equals the
    // counter's absolute value for the rest of the test.
    wait_until("the view collector takes its baseline pass", || {
        mm_a.view().is_some_and(|v| v.collections() >= 1)
    });

    let ra_a = util::spawn_resource("am0", std::slice::from_ref(&addr_a), 11, machine_ad(100));
    let ca = util::spawn_customer(
        "hist",
        std::slice::from_ref(&addr_a),
        vec![("h-0".into(), job_ad()), ("h-1".into(), job_ad())],
    );
    let started = Instant::now();

    // Matches + claims: one job on A's machine, the flocked one on B's.
    wait_until("one job claims the local machine", || {
        ca.jobs().iter().any(
            |(_, s)| matches!(s, condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "am0"),
        )
    });
    wait_until("the other job flocks to pool B", || {
        ca.jobs().iter().any(
            |(_, s)| matches!(s, condor_pool::JobStatus::Claimed { provider_name, .. } if provider_name == "bm0"),
        )
    });
    assert!(ra_b.is_claimed());

    // Half-time: one resource agent dies. The orphaned job resubmits and
    // keeps the negotiator busy (unmatched locally, peer machine taken)
    // for the rest of the run.
    std::thread::sleep(Duration::from_secs(15).saturating_sub(started.elapsed()));
    ra_a.shutdown();

    // Let the pool live past the 30s activity bar, then quiesce: totals
    // stop moving, so history and live counters must converge exactly.
    std::thread::sleep(Duration::from_secs(33).saturating_sub(started.elapsed()));
    let view = mm_a.view().expect("daemon was spawned with a view");
    assert_eq!(view.resumption(), Resumption::Fresh);
    assert!(
        view.collections() >= 40,
        "500ms sampling for 30s+ must collect dozens of passes, got {}",
        view.collections()
    );

    // --- utilization vs the live claimed fraction -----------------------
    let q_util = r#"other.Pool == "local" && other.Metric == "Utilization" && other.Tier == 0"#;
    wait_until(
        "utilization history matches the live claimed fraction",
        || {
            let ras = stats_ads(&addr_a, schema::RESOURCE_AGENT_STATS);
            let claimed = ras
                .iter()
                .filter(|ad| ad.get_int("Claimed") == Some(1))
                .count() as f64;
            let live = claimed / ras.len().max(1) as f64;
            history(&addr_a, q_util).first().is_some_and(|ad| {
                let last = ad
                    .get_string("DataLast")
                    .and_then(|s| s.rsplit(',').next().and_then(|v| v.parse::<f64>().ok()));
                last.is_some_and(|l| (l - live).abs() < 1e-9)
            })
        },
    );

    // --- match rate integrates to the matchmaker's own counter ----------
    // "Within one sample interval" made operational: a counter reading
    // taken one interval *before* the history query and one taken right
    // after it must bracket the integral, because the integral reflects
    // some sample in between. MatchesTotal is monotone, so the bracket
    // is exact even while the pool keeps matching.
    let q_match = r#"other.Pool == "local" && other.Metric == "MatchRate" && other.Tier == 0"#;
    let live_matches_at = || {
        stats_ads(&addr_a, schema::MATCHMAKER_STATS)[0]
            .get_int("MatchesTotal")
            .unwrap_or(0) as f64
    };
    let lo = live_matches_at();
    std::thread::sleep(SAMPLE + SAMPLE / 2); // ensure a sample ≥ the lo reading
    let i = integral(&addr_a, q_match).expect("match-rate series exists");
    let hi = live_matches_at();
    // The flocked job counts in FlockMatches, not MatchesTotal, so one
    // local match is the floor here.
    assert!(hi >= 1.0, "the local job negotiated at least once: {hi}");
    assert!(
        lo - 1e-9 <= i && i <= hi + 1e-9,
        "integral {i} must sit within one sample interval of the live \
         counter (bracket [{lo}, {hi}])"
    );

    // --- the flocked job shows up in the flock-rate series --------------
    let q_flock = r#"other.Pool == "local" && other.Metric == "FlockRate" && other.Tier == 0"#;
    let flocked = integral(&addr_a, q_flock).expect("flock-rate series exists");
    assert!(
        flocked >= 1.0,
        "the flocked job must be on the books: {flocked}"
    );

    // --- federation-aware collection: peer-pool series exist ------------
    let remote = history(&addr_a, r#"other.Pool != "local""#);
    assert!(
        !remote.is_empty(),
        "federate=true must collect pool B's matchmaker self-ads"
    );

    // --- both tiers answer over the wire, spanning the 30s run ----------
    // One query fetches both tiers from the same store snapshot, so
    // their integrals must agree exactly: every observation lands in
    // every tier simultaneously.
    let both = history(
        &addr_a,
        r#"other.Pool == "local" && other.Metric == "MatchRate""#,
    );
    assert_eq!(both.len(), 2, "fine + coarse tier for the one series");
    let fine = both
        .iter()
        .find(|ad| ad.get_int("Tier") == Some(0))
        .unwrap();
    let coarse = both
        .iter()
        .find(|ad| ad.get_int("Tier") == Some(1))
        .unwrap();
    let span =
        |ad: &ClassAd| ad.get_int("EndUnix").unwrap_or(0) - ad.get_int("StartUnix").unwrap_or(0);
    assert!(
        span(fine) >= 25,
        "fine tier must span most of the run, got {}s",
        span(fine)
    );
    let (fi, ci) = (
        real(fine, "Integral").unwrap(),
        real(coarse, "Integral").unwrap(),
    );
    assert!(
        (fi - ci).abs() < 1e-9,
        "tiers integrate to the same total: fine {fi} vs coarse {ci}"
    );

    // --- kill the view server, restart on the same journal --------------
    let pre_points = fine.get_int("Points").unwrap();
    // The pool may still be matching (the orphaned job keeps retrying
    // against the dead machine's leased ad), so bound the recovered
    // integral with readings taken just before the kill: the store
    // checkpoints on every pass, so the last checkpoint can only be
    // *newer* than this query — and never newer than the live counter.
    std::thread::sleep(2 * SAMPLE);
    let pre_integral = integral(&addr_a, q_match).unwrap();
    let final_matches = live_matches_at();
    mm_a.shutdown();

    let (mut mm_a2, addr_a2) = util::spawn_daemon(DaemonConfig {
        view: Some(view_config(&view_journal)),
        ..util::daemon_config("mmA2")
    });
    let view2 = mm_a2.view().expect("restarted daemon has a view");
    assert_eq!(
        view2.resumption(),
        Resumption::Recovered,
        "the collector must recover from its checkpoint journal"
    );
    wait_until("the recovered collector resumes sampling", || {
        view2.collections() >= 1
    });
    // All but at most one sample interval survives the restart: the
    // integral is intact (the pool had quiesced) and at most one fine
    // bucket of points can be missing.
    let after = history(&addr_a2, q_match);
    assert_eq!(after.len(), 1, "recovered series answers over the wire");
    let after_integral = real(&after[0], "Integral").unwrap();
    assert!(
        pre_integral - 1e-9 <= after_integral && after_integral <= final_matches + 1e-9,
        "recovered integral {after_integral} must carry everything up to \
         the last checkpoint (bracket [{pre_integral}, {final_matches}])"
    );
    assert!(
        after[0].get_int("Points").unwrap() >= pre_points - 1,
        "at most one interval may be lost across the restart"
    );

    ca.shutdown();
    mm_a2.shutdown();
}

/// A pre-view daemon must answer both history tags with the structured
/// `Error`, and the client must see it as a clean `WireError::Remote`.
#[test]
fn pre_view_daemon_rejects_history_tags_with_structured_error() {
    let (mut mm, addr) = util::spawn_daemon(util::daemon_config("no-view"));
    assert!(mm.view().is_none());

    let query = Message::HistoryQuery {
        constraint: "true".into(),
        limit: 0,
    };
    match wire::request_reply(&addr, &query, &fast_io()) {
        Err(WireError::Remote(detail)) => {
            assert!(
                detail.contains("matchmaker endpoint"),
                "error names what the endpoint accepts: {detail}"
            );
        }
        other => panic!("expected a structured remote error, got {other:?}"),
    }

    // Tag 16 (a reply arriving as a request) earns the same rejection.
    let reply = Message::HistoryReply { ads: vec![] };
    match wire::request_reply(&addr, &reply, &fast_io()) {
        Err(WireError::Remote(_)) => {}
        other => panic!("expected a structured remote error, got {other:?}"),
    }

    // The daemon is unharmed: ordinary queries still work.
    let ads = stats_ads(&addr, schema::MATCHMAKER_STATS);
    assert_eq!(ads.len(), 1);
    mm.shutdown();
}
