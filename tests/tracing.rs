//! Acceptance test for end-to-end match tracing: run a live pool with
//! every daemon journaling, stitch the three journals back together with
//! the trace assembler, and check that
//!
//! 1. the advertise → negotiated → notified → claimed lifecycle shows up
//!    as one causal span chain crossing all three daemons, with
//!    non-negative durations along every edge;
//! 2. a traceless frame — an old peer that predates the trace trailer —
//!    still parses and still matches;
//! 3. the matchmaker's self-ad phase histograms agree with the durations
//!    the assembler computes from the same run's journals.
//!
//! The journals land under `target/tracing-acceptance/` so CI can run
//! `pool_trace --summary` against the same files as a smoke test.

use classad::{parse_classad, ClassAd};
use condor_obs::trace::phase;
use condor_obs::{replay, schema, self_ad_constraint, Event, JournalConfig, TraceAssembler};
use condor_pool::wire::{self, IoConfig};
use condor_pool::PoolBuilder;
use matchmaker::protocol::{Advertisement, EntityKind, Message};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(30);

fn machine_ad(mips: i64) -> ClassAd {
    parse_classad(&format!(
        r#"[ Type = "Machine"; Mips = {mips};
             Constraint = other.Type == "Job"; Rank = 0 ]"#
    ))
    .unwrap()
}

fn job_ad() -> ClassAd {
    parse_classad(r#"[ Type = "Job"; Constraint = other.Type == "Machine"; Rank = other.Mips ]"#)
        .unwrap()
}

/// Journal directory shared with CI's `pool_trace --summary` smoke run.
fn journal_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("tracing-acceptance");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn traces_stitch_across_daemons_and_agree_with_histograms() {
    let dir = journal_dir();
    let mm_journal = dir.join("matchmaker.jsonl");
    let ra_journal = dir.join("ra.jsonl");
    let ca_journal = dir.join("ca.jsonl");

    // One machine and one job: the agent templates share one journal
    // config per class, so a single agent per class keeps each journal
    // single-writer.
    let mut builder = PoolBuilder::new()
        .machine("trace-m0", machine_ad(100))
        .user("tracy", vec![("tracy-0".into(), job_ad())]);
    builder.daemon.journal = Some(JournalConfig::new(&mm_journal));
    builder.resource_template.journal = Some(JournalConfig::new(&ra_journal));
    builder.customer_template.journal = Some(JournalConfig::new(&ca_journal));
    let pool = builder.spawn().unwrap();

    assert!(
        pool.wait_for(WAIT, |p| p.all_claimed()),
        "pool never converged: {:?}",
        pool.customers()
            .iter()
            .map(|c| c.jobs())
            .collect::<Vec<_>>()
    );
    let addr = pool.daemon().addr().to_string();

    // --- Old-peer simulation: a provider that predates tracing sends a
    // plain advertisement with no trace trailer (the traceless encoding
    // is byte-identical to the pre-trace wire format). It must parse, and
    // a fresh job must match it — the matchmaker mints the trace itself.
    let old_peer = TcpListener::bind("127.0.0.1:0").unwrap();
    let old_contact = old_peer.local_addr().unwrap().to_string();
    let adv = Advertisement {
        kind: EntityKind::Provider,
        ad: {
            let mut ad = machine_ad(500);
            ad.set_str("Name", "oldpeer-m");
            ad
        },
        contact: old_contact,
        ticket: Some(matchmaker::ticket::Ticket::from_raw(99)),
        expires_at: wire::unix_now() + 300,
    };
    wire::send_oneway(&addr, &Message::Advertise(adv), &IoConfig::default()).unwrap();
    pool.customer("tracy").unwrap().add_job("tracy-1", job_ad());

    // The match against the traceless offer shows up in the journal; the
    // claim itself will fail (our fake provider never answers), which is
    // fine — matching is the property under test.
    let deadline = Instant::now() + WAIT;
    let matched_old_peer = |records: &[condor_obs::Record]| {
        records
            .iter()
            .any(|r| matches!(&r.event, Event::MatchMade { offer, .. } if offer == "oldpeer-m"))
    };
    loop {
        let records = replay(&mm_journal).unwrap();
        if matched_old_peer(&records) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "traceless ad never matched; journal: {records:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // --- Snapshot the matchmaker's phase histograms (self-ad over TCP)
    // before shutdown.
    let reply = wire::request_reply(
        &addr,
        &Message::Query {
            constraint: self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    let Message::QueryReply { ads } = reply else {
        panic!("unexpected reply: {reply:?}")
    };
    let mm_ad = ads.first().expect("matchmaker self-ad").clone();

    pool.shutdown();

    // --- Assemble the three journals into span trees.
    let mut asm = TraceAssembler::new();
    asm.add_journal_file("mm", &mm_journal).unwrap();
    asm.add_journal_file("ra", &ra_journal).unwrap();
    asm.add_journal_file("ca", &ca_journal).unwrap();

    // The claimed job's trace: the one holding a customer-side
    // ClaimEstablished span.
    let tree = asm
        .trace_ids()
        .into_iter()
        .filter_map(|id| asm.assemble(id))
        .find(|t| {
            t.spans
                .iter()
                .any(|s| s.source == "ca" && s.event.kind() == "ClaimEstablished")
        })
        .expect("a trace with the customer's ClaimEstablished span");
    let claim_idx = tree
        .spans
        .iter()
        .position(|s| s.source == "ca" && s.event.kind() == "ClaimEstablished")
        .unwrap();
    let chain = tree.ancestry(claim_idx);
    let kinds: Vec<(&str, &str)> = chain
        .iter()
        .map(|s| (s.source.as_str(), s.event.kind()))
        .collect();
    assert_eq!(
        kinds,
        vec![
            ("mm", "AdReceived"),
            ("mm", "MatchMade"),
            ("mm", "MatchNotified"),
            ("ra", "ClaimEstablished"),
            ("ca", "ClaimEstablished"),
        ],
        "lifecycle chain out of causal order:\n{}",
        tree.render()
    );
    // Non-negative durations along every edge of the chain (single
    // machine, one clock — anything backwards is a stitching bug).
    for pair in chain.windows(2) {
        assert!(
            pair[1].unix_ms >= pair[0].unix_ms,
            "edge ran backwards: {} -> {}\n{}",
            pair[0].event.kind(),
            pair[1].event.kind(),
            tree.render()
        );
    }
    assert!(
        !tree.skewed,
        "one-host run flagged skew:\n{}",
        tree.render()
    );

    // The old peer's trace was matchmaker-minted: its tree exists too,
    // rooted at the mm's AdReceived.
    let old_tree = asm
        .trace_ids()
        .into_iter()
        .filter_map(|id| asm.assemble(id))
        .find(|t| {
            t.spans
                .iter()
                .any(|s| matches!(&s.event, Event::MatchMade { offer, .. } if offer == "oldpeer-m"))
        })
        .expect("the traceless offer's match is traced");
    assert!(
        old_tree
            .spans
            .iter()
            .any(|s| s.event.kind() == "AdReceived"),
        "{}",
        old_tree.render()
    );

    // --- Self-ad phase histograms vs assembler-computed durations. Both
    // views measure the same run; means must land within a generous
    // tolerance of each other (wall-clock stamps vs monotonic timers).
    const TOLERANCE_MS: f64 = 1500.0;
    let summary = asm.summary();
    let hist_mean = |base: &str| -> Option<f64> {
        match mm_ad.get(&format!("{base}Mean")).map(|e| e.as_ref()) {
            Some(classad::Expr::Lit(classad::Literal::Real(v))) => Some(*v),
            Some(classad::Expr::Lit(classad::Literal::Int(v))) => Some(*v as f64),
            _ => None,
        }
    };
    for (phase_name, attr_base) in [
        (phase::QUEUE_WAIT, "PhaseQueueWaitMs"),
        (phase::NEGOTIATION, "PhaseNegotiationMs"),
    ] {
        let stats = summary
            .get(phase_name)
            .unwrap_or_else(|| panic!("assembler saw no {phase_name} edges: {summary:?}"));
        let ad_mean = hist_mean(attr_base)
            .unwrap_or_else(|| panic!("self-ad lacks {attr_base}Mean: {mm_ad}"));
        assert!(
            (stats.mean_ms - ad_mean).abs() <= TOLERANCE_MS,
            "{phase_name}: assembler mean {:.1}ms vs self-ad mean {ad_mean:.1}ms",
            stats.mean_ms
        );
        assert!(stats.count >= 1);
    }

    // RA- and CA-side phases were computed by the assembler as well (the
    // notify→claim gap and the claim turnaround live on those daemons'
    // histograms; here we check the assembler found the edges at all).
    assert!(summary.contains_key(phase::NOTIFY_CLAIM_GAP), "{summary:?}");
    assert!(summary.contains_key(phase::CLAIM_TURNAROUND), "{summary:?}");
}
