//! Acceptance test for condor-obs: drive a live pool through
//! advertise → match → claim, then observe the run three ways —
//! the matchmaker's self-ad over TCP, the resource/customer agents'
//! self-ads, and a replay of the daemon's event journal — and check
//! the three views agree with each other and with the pool's state.

use classad::{parse_classad, ClassAd};
use condor_obs::{replay, schema, self_ad_constraint, Event, JournalConfig};
use condor_pool::wire::{self, IoConfig};
use condor_pool::PoolBuilder;
use matchmaker::protocol::Message;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(30);

fn machine_ad(mips: i64) -> ClassAd {
    parse_classad(&format!(
        r#"[ Type = "Machine"; Mips = {mips}; KeyboardIdle = 1000;
             Constraint = other.Type == "Job" && KeyboardIdle > 300;
             Rank = 0 ]"#
    ))
    .unwrap()
}

fn job_ad() -> ClassAd {
    parse_classad(
        r#"[ Type = "Job"; ImageSize = 8;
             Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
    )
    .unwrap()
}

fn journal_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mm-obs-acceptance-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Query the live daemon for self-ads of one `MyType`.
fn stats_ads(addr: &str, my_type: &str) -> Vec<ClassAd> {
    let reply = wire::request_reply(
        addr,
        &Message::Query {
            constraint: self_ad_constraint(my_type),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    match reply {
        Message::QueryReply { ads } => ads,
        other => panic!("unexpected reply: {other:?}"),
    }
}

#[test]
fn self_ads_and_journal_agree_with_the_live_run() {
    let dir = journal_dir();
    let journal_path = dir.join("matchmaker.journal");

    let mut builder = PoolBuilder::new()
        .machine("obs-m0", machine_ad(100))
        .machine("obs-m1", machine_ad(400))
        .user(
            "carol",
            vec![("carol-0".into(), job_ad()), ("carol-1".into(), job_ad())],
        );
    builder.daemon.journal = Some(JournalConfig::new(&journal_path));
    let pool = builder.spawn().unwrap();

    assert!(
        pool.wait_for(WAIT, |p| p.all_claimed()),
        "pool never converged: {:?}",
        pool.customers()
            .iter()
            .map(|c| c.jobs())
            .collect::<Vec<_>>()
    );
    let addr = pool.daemon().addr().to_string();

    // The ground truth: which provider each job landed on.
    let mut claimed: BTreeMap<String, String> = BTreeMap::new();
    for ca in pool.customers() {
        for (job, status) in ca.jobs() {
            if let condor_pool::JobStatus::Claimed { provider_name, .. } = status {
                claimed.insert(job, provider_name);
            }
        }
    }
    assert_eq!(claimed.len(), 2);

    // --- View 1: the matchmaker's self-ad, fetched over TCP with the
    // ordinary query message (no bespoke stats RPC).
    let before = pool.daemon().stats();
    let mm = stats_ads(&addr, schema::MATCHMAKER_STATS);
    let after = pool.daemon().stats();
    assert_eq!(mm.len(), 1, "exactly one matchmaker self-ad: {mm:?}");
    let mm = &mm[0];
    assert_eq!(mm.get_string("Name"), Some("matchmaker#stats"));
    let cycles = mm.get_int("Cycles").expect("Cycles attr");
    assert!(
        (before.cycles as i64) <= cycles && cycles <= after.cycles as i64,
        "self-ad cycles {cycles} outside observed window [{}, {}]",
        before.cycles,
        after.cycles
    );
    assert!(
        mm.get_int("MatchesTotal").unwrap() >= 2,
        "both jobs were matched: {mm}"
    );
    assert!(mm.get_int("FramesHandled").unwrap() > 0);
    assert!(mm.get_int("ConnectionsAccepted").unwrap() > 0);
    assert!(
        mm.get_int("JournalPosition").unwrap() > 0,
        "journaling daemon must report its journal position: {mm}"
    );
    assert_eq!(mm.get_int("JournalIoErrors"), Some(0));

    // --- View 2: the agents' self-ads. They renew on their own heartbeat,
    // so poll until the claim counters have propagated.
    let deadline = Instant::now() + WAIT;
    let (mut ra_claims, mut ca_claimed_jobs) = (0, 0);
    while Instant::now() < deadline {
        let ras = stats_ads(&addr, schema::RESOURCE_AGENT_STATS);
        ra_claims = ras
            .iter()
            .filter_map(|ad| ad.get_int("ClaimsAccepted"))
            .sum();
        let cas = stats_ads(&addr, schema::CUSTOMER_AGENT_STATS);
        ca_claimed_jobs = cas.iter().filter_map(|ad| ad.get_int("JobsClaimed")).sum();
        if ras.len() == 2 && ra_claims == 2 && ca_claimed_jobs == 2 {
            for ad in &ras {
                assert_eq!(ad.get_int("Claimed"), Some(1), "{ad}");
            }
            assert_eq!(cas.len(), 1);
            assert_eq!(cas[0].get_string("User"), Some("carol"));
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(ra_claims, 2, "RA self-ads never reported both claims");
    assert_eq!(ca_claimed_jobs, 2, "CA self-ad never reported both claims");

    pool.shutdown();

    // --- View 3: replay the journal and reconstruct the run. The last
    // delivered match per request must be exactly the claim we observed.
    let records = replay(&journal_path).unwrap();
    assert!(!records.is_empty());
    let mut last_seq = 0;
    for r in &records {
        assert!(r.seq > last_seq, "sequence must be strictly increasing");
        last_seq = r.seq;
    }
    assert!(
        matches!(&records[0].event, Event::AgentRestarted { agent, .. } if agent == "MatchmakerDaemon"),
        "journal must open with the daemon restart: {:?}",
        records[0]
    );
    assert!(records
        .iter()
        .any(|r| matches!(&r.event, Event::CycleCompleted { matches, .. } if *matches > 0)));
    assert!(records.iter().any(|r| {
        matches!(&r.event, Event::AdReceived { kind, .. } if kind.contains("Provider"))
    }));
    let mut replayed: BTreeMap<String, String> = BTreeMap::new();
    for r in &records {
        if let Event::MatchNotified {
            request,
            offer,
            delivered: true,
        } = &r.event
        {
            replayed.insert(request.clone(), offer.clone());
        }
    }
    assert_eq!(
        replayed, claimed,
        "journal replay must reconstruct the observed match sequence"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
