//! Whole-pool integration tests: simulated Condor pools exercising
//! opportunistic scheduling, fairness, preemption, checkpointing, and
//! failure tolerance.

use condor_sim::scenario::{NegotiatorSettings, PolicyConfig, Scenario};
use condor_sim::workload::{FleetSpec, MachineTemplate, OwnerActivity, UserSpec};
use condor_sim::{JobState, NetworkModel};

fn base_scenario() -> Scenario {
    Scenario {
        seed: 7,
        fleet: FleetSpec {
            count: 12,
            ..Default::default()
        },
        policy: PolicyConfig::Always,
        users: vec![UserSpec {
            mean_interarrival_ms: 20_000.0,
            mean_duration_ms: 5.0 * 60_000.0,
            arch_constraint_prob: 0.0,
            ..UserSpec::standard("alice", 15)
        }],
        network: NetworkModel::default(),
        advertise_period_ms: 30_000,
        negotiation_period_ms: 30_000,
        push_ads_on_change: true,
        negotiator: NegotiatorSettings::default(),
        duration_ms: 6 * 3_600 * 1000,
        ..Default::default()
    }
}

#[test]
fn all_jobs_complete_on_dedicated_pool() {
    let (summary, sim) = base_scenario().run();
    assert_eq!(summary.jobs_completed, 15, "{summary:?}");
    assert!(sim.drained());
    // Dedicated machines: nothing is ever vacated.
    assert_eq!(sim.metrics().vacated_by_owner, 0);
    assert!((summary.goodput_fraction - 1.0).abs() < 1e-9);
}

#[test]
fn per_job_accounting_is_consistent() {
    let (_, sim) = base_scenario().run();
    let m = sim.metrics();
    assert_eq!(m.completed.len() as u64, m.jobs_completed);
    for rec in &m.completed {
        let start = rec.first_start.expect("completed jobs must have started");
        assert!(start >= rec.submitted_at);
        assert!(rec.completed_at > start);
        assert!(rec.work_ms > 0);
    }
    // Claims accepted bounds jobs completed (each completion needed at
    // least one successful claim).
    assert!(m.claims_accepted >= m.jobs_completed);
    // Every customer agent agrees everything completed.
    for ca in sim.customers() {
        assert!(ca
            .jobs
            .iter()
            .all(|j| matches!(j.state, JobState::Completed { .. })));
    }
}

#[test]
fn opportunistic_pool_vacates_and_recovers() {
    let mut s = base_scenario();
    s.policy = PolicyConfig::OwnerIdle {
        min_keyboard_idle_s: 60,
    };
    // Owners churn fast, forcing vacations mid-job.
    s.fleet.activity = OwnerActivity {
        mean_active_ms: 4.0 * 60_000.0,
        mean_away_ms: 8.0 * 60_000.0,
        initially_present_prob: 0.5,
        day_length_ms: 0,
        night_away_factor: 1.0,
    };
    s.users[0].mean_duration_ms = 10.0 * 60_000.0;
    s.users[0].checkpoint_prob = 1.0;
    s.duration_ms = 20 * 3_600 * 1000;
    let (summary, sim) = s.run();
    assert!(
        sim.metrics().vacated_by_owner > 0,
        "owner churn must vacate jobs"
    );
    assert_eq!(
        summary.jobs_completed, 15,
        "checkpointing jobs survive churn: {summary:?}"
    );
    // Checkpointed jobs lose nothing.
    assert_eq!(sim.metrics().badput_ms, 0);
}

#[test]
fn no_checkpoint_wastes_work() {
    let mut s = base_scenario();
    s.policy = PolicyConfig::OwnerIdle {
        min_keyboard_idle_s: 60,
    };
    s.fleet.activity = OwnerActivity {
        mean_active_ms: 5.0 * 60_000.0,
        mean_away_ms: 10.0 * 60_000.0,
        initially_present_prob: 0.5,
        day_length_ms: 0,
        night_away_factor: 1.0,
    };
    s.users[0].mean_duration_ms = 8.0 * 60_000.0;
    s.users[0].checkpoint_prob = 0.0;
    s.duration_ms = 30 * 3_600 * 1000;
    let (summary, sim) = s.run();
    if sim.metrics().vacated_by_owner > 0 {
        assert!(sim.metrics().badput_ms > 0, "restarts must register badput");
        assert!(summary.goodput_fraction < 1.0);
    }
    assert_eq!(summary.jobs_completed, 15, "{summary:?}");
}

#[test]
fn fair_share_splits_scarce_pool() {
    // Two machines, two users with equal instantaneous demand: round-robin
    // within cycles should split capacity roughly evenly.
    let mut s = base_scenario();
    s.fleet.count = 2;
    s.users = vec![
        UserSpec {
            mean_interarrival_ms: 0.0,
            mean_duration_ms: 10.0 * 60_000.0,
            arch_constraint_prob: 0.0,
            ..UserSpec::standard("alice", 12)
        },
        UserSpec {
            mean_interarrival_ms: 0.0,
            mean_duration_ms: 10.0 * 60_000.0,
            arch_constraint_prob: 0.0,
            ..UserSpec::standard("bob", 12)
        },
    ];
    s.negotiator.charge_per_match = 600.0;
    s.duration_ms = 48 * 3_600 * 1000;
    let (summary, sim) = s.run();
    assert_eq!(summary.jobs_completed, 24, "{summary:?}");
    let a = sim.metrics().per_user_goodput["alice"] as f64;
    let b = sim.metrics().per_user_goodput["bob"] as f64;
    let ratio = a.max(b) / a.min(b).max(1.0);
    assert!(ratio < 2.0, "goodput split alice={a} bob={b}");
}

#[test]
fn figure1_policy_pool_serves_research_first() {
    let mut s = base_scenario();
    s.policy = PolicyConfig::Figure1 {
        research: vec!["raman".into()],
        friends: vec![],
        untrusted: vec!["riffraff".into()],
    };
    // Owners never present: machines idle, stranger path active by day
    // only; research user always served.
    s.fleet.activity.initially_present_prob = 0.0;
    s.fleet.activity.mean_away_ms = 1e9;
    s.users = vec![
        UserSpec {
            mean_interarrival_ms: 0.0,
            mean_duration_ms: 3.0 * 60_000.0,
            arch_constraint_prob: 0.0,
            ..UserSpec::standard("raman", 6)
        },
        UserSpec {
            mean_interarrival_ms: 0.0,
            mean_duration_ms: 3.0 * 60_000.0,
            arch_constraint_prob: 0.0,
            ..UserSpec::standard("riffraff", 6)
        },
    ];
    s.duration_ms = 12 * 3_600 * 1000;
    let (_, sim) = s.run();
    let m = sim.metrics();
    assert_eq!(
        m.per_user_goodput.get("riffraff"),
        None,
        "untrusted user never served"
    );
    assert!(m.per_user_goodput["raman"] > 0);
    // riffraff's jobs are all still idle.
    let riffraff = sim.customers().find(|c| c.user == "riffraff").unwrap();
    assert!(riffraff.jobs.iter().all(|j| j.state == JobState::Idle));
}

#[test]
fn heterogeneous_pool_respects_arch_constraints() {
    let mut s = base_scenario();
    s.fleet = FleetSpec {
        count: 10,
        templates: vec![
            MachineTemplate::intel_solaris(),
            MachineTemplate::sparc_solaris(),
        ],
        activity: OwnerActivity::default(),
    };
    s.users[0].arch_constraint_prob = 1.0;
    s.users[0].required_arch = "INTEL".into();
    s.duration_ms = 12 * 3_600 * 1000;
    let (summary, sim) = s.run();
    assert_eq!(summary.jobs_completed, 15, "{summary:?}");
    // Every machine that ran something is INTEL: check via metrics — the
    // simulator has no cross-check hook, so assert through machines'
    // specs: SPARC machines never got claims (busy_ms implies claims, but
    // it's aggregate). Instead verify no SPARC machine is busy at end and
    // the job constraints were honoured by construction of the matcher.
    for machine in sim.machines() {
        if machine.spec.arch != "INTEL" {
            assert!(
                !machine.is_busy(),
                "SPARC machine should never run INTEL-only jobs"
            );
        }
    }
}

#[test]
fn drop_heavy_network_converges_slowly_but_converges() {
    let mut s = base_scenario();
    s.network = NetworkModel {
        base_latency_ms: 10,
        jitter_ms: 30,
        drop_prob: 0.10,
    };
    s.duration_ms = 24 * 3_600 * 1000;
    let (summary, sim) = s.run();
    assert!(sim.metrics().messages_dropped > 0);
    assert_eq!(
        summary.jobs_completed, 15,
        "soft state must tolerate 10% loss: {summary:?}"
    );
}

#[test]
fn determinism_across_runs() {
    let s = base_scenario();
    let (a, sim_a) = s.run();
    let (b, sim_b) = s.run();
    assert_eq!(sim_a.events_processed(), sim_b.events_processed());
    assert_eq!(sim_a.metrics().messages_sent, sim_b.metrics().messages_sent);
    assert!((a.mean_turnaround_ms - b.mean_turnaround_ms).abs() < 1e-12);
    // Job-by-job identical outcomes.
    let recs = |sim: &condor_sim::Simulation| {
        let mut v: Vec<(u64, u64)> = sim
            .metrics()
            .completed
            .iter()
            .map(|r| (r.id, r.completed_at))
            .collect();
        v.sort();
        v
    };
    assert_eq!(recs(&sim_a), recs(&sim_b));
}

#[test]
fn gangs_coallocate_in_simulation() {
    use condor_sim::scenario::GangLoadSpec;
    // Plain jobs and gangs share the pool; gangs need a machine AND one
    // of two license seats, atomically.
    let mut s = base_scenario();
    s.fleet.count = 6;
    s.licenses = 2;
    s.users[0].job_count = 6;
    s.gang_users = vec![GangLoadSpec {
        user: "raman".into(),
        count: 5,
        mean_interarrival_ms: 60_000.0,
        mean_duration_ms: 8.0 * 60_000.0,
        memory: 31,
    }];
    s.duration_ms = 12 * 3_600 * 1000;
    let (summary, mut sim) = s.run();
    // Let in-flight teardown (license releases) deliver.
    let flush_to = sim.now() + 60_000;
    sim.flush_until(flush_to);
    let m = sim.metrics();
    assert!(
        m.gangs_granted >= 5,
        "each gang granted at least once: {m:?}"
    );
    assert_eq!(
        summary.jobs_completed, 11,
        "6 plain + 5 gang jobs: {summary:?}"
    );
    // The gang customers all drained.
    let total_gangs_incomplete: usize = sim.nodes_gang_incomplete();
    assert_eq!(total_gangs_incomplete, 0);
    // License seats are free again at the end.
    assert!(
        sim.licenses_claimed() == 0,
        "licenses must be released after completion"
    );
}

#[test]
fn gangs_blocked_when_no_license_exists() {
    use condor_sim::scenario::GangLoadSpec;
    let mut s = base_scenario();
    s.licenses = 0; // no license in the pool: gangs can never be granted
    s.users.clear();
    s.gang_users = vec![GangLoadSpec {
        user: "raman".into(),
        count: 2,
        mean_interarrival_ms: 0.0,
        mean_duration_ms: 60_000.0,
        memory: 31,
    }];
    s.duration_ms = 2 * 3_600 * 1000;
    let (summary, sim) = s.run();
    assert_eq!(summary.jobs_completed, 0);
    assert_eq!(sim.metrics().gangs_granted, 0);
    assert!(
        sim.metrics().gangs_unmatched > 0,
        "all-or-nothing: no partial grants"
    );
}

#[test]
fn trace_log_is_coherent_with_metrics() {
    use condor_sim::TraceEvent;
    let s = base_scenario();
    let mut sim = s.build();
    sim.enable_trace(100_000);
    sim.run_until(s.duration_ms);
    let m = sim.metrics();
    let count = |pred: &dyn Fn(&TraceEvent) -> bool| m.trace.filter(pred).count() as u64;
    assert_eq!(count(&|e| matches!(e, TraceEvent::Match { .. })), m.matches);
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::ClaimAccepted { .. })),
        m.claims_accepted
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::JobFinished { .. })),
        m.jobs_completed
    );
    // Timestamps are monotone.
    let times: Vec<u64> = m.trace.records.iter().map(|r| r.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
    // The JSONL export parses line by line.
    for line in m.trace.to_jsonl().lines().take(50) {
        classad::json::from_json(line).expect("valid trace JSON");
    }
}

#[test]
fn preemption_by_rank_in_simulation() {
    // Machines prefer research jobs (Figure-1-style rank). A stranger's
    // long job gets preempted when the research user shows up.
    let mut s = base_scenario();
    s.policy = PolicyConfig::Figure1 {
        research: vec!["raman".into()],
        friends: vec!["stranger".into()], // stranger is a "friend": rank 1
        untrusted: vec![],
    };
    s.fleet.count = 1;
    s.fleet.activity.initially_present_prob = 0.0;
    s.fleet.activity.mean_away_ms = 1e9;
    s.users = vec![
        UserSpec {
            mean_interarrival_ms: 0.0,
            mean_duration_ms: 60.0 * 60_000.0, // 1 h job
            arch_constraint_prob: 0.0,
            checkpoint_prob: 1.0,
            ..UserSpec::standard("stranger", 1)
        },
        UserSpec {
            // Arrives ~20 min later.
            mean_interarrival_ms: 20.0 * 60_000.0,
            mean_duration_ms: 5.0 * 60_000.0,
            arch_constraint_prob: 0.0,
            ..UserSpec::standard("raman", 1)
        },
    ];
    s.duration_ms = 6 * 3_600 * 1000;
    let (summary, sim) = s.run();
    assert!(
        sim.metrics().preempted_by_rank >= 1,
        "research job must preempt: {:?}",
        sim.metrics()
    );
    assert_eq!(summary.jobs_completed, 2, "{summary:?}");
}
