//! Cross-crate integration: gang (co-allocation) requests served from a
//! live ad store, with every port claimed through the real ticketed
//! claiming protocol — §3.1's nested-classad aggregates meeting §5's
//! group matching, end to end.

use classad::parse_classad;
use gangmatch::coalloc::GangSolver;
use gangmatch::service::negotiate_gangs;
use matchmaker::prelude::*;

fn provider(
    store: &mut AdStore,
    proto: &AdvertisingProtocol,
    tickets: &mut TicketIssuer,
    name: &str,
    kind: &str,
    extra: &str,
) -> (Ticket, ClaimHandler) {
    let ticket = tickets.issue();
    let mut handler = ClaimHandler::new();
    handler.set_ticket(ticket);
    let ad = parse_classad(&format!(
        r#"[ Name = "{name}"; Type = "{kind}"; {extra}
             Constraint = other.Owner != "banned"; Rank = 0 ]"#
    ))
    .unwrap();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Provider,
                ad,
                contact: format!("{name}:9614"),
                ticket: Some(ticket),
                expires_at: 10_000,
            },
            0,
            proto,
        )
        .unwrap();
    (ticket, handler)
}

#[test]
fn gang_request_granted_and_all_ports_claimed() {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    let mut tickets = TicketIssuer::new(77);

    let (_t1, mut cpu_handler) = provider(
        &mut store,
        &proto,
        &mut tickets,
        "cpu1",
        "Machine",
        "Mips = 104; Memory = 64;",
    );
    let (_t2, mut lic_handler) = provider(
        &mut store,
        &proto,
        &mut tickets,
        "lic1",
        "License",
        r#"Product = "matlab";"#,
    );

    // The gang request: a nested-classad aggregate (paper §3.1).
    let gang_ad = parse_classad(
        r#"[ Name = "sim-gang"; Type = "Gang"; Owner = "raman";
             Constraint = true;
             Ports = {
                 [ Constraint = other.Type == "Machine" && other.Memory >= 32;
                   Rank = other.Mips ],
                 [ Constraint = other.Type == "License" && other.Product == "matlab" ]
             } ]"#,
    )
    .unwrap();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: gang_ad.clone(),
                contact: "raman-ca:1".into(),
                ticket: None,
                expires_at: 10_000,
            },
            0,
            &proto,
        )
        .unwrap();

    // Gang negotiation pass.
    let out = negotiate_gangs(&store, 0, &GangSolver::default());
    assert_eq!(out.granted.len(), 1);
    assert!(out.failed.is_empty() && out.malformed.is_empty());
    let grant = &out.granted[0];
    assert_eq!(grant.gang_name, "sim-gang");
    assert_eq!(grant.ports.len(), 2);

    // Claim every port with the relayed tickets; the providers re-verify
    // against the gang's envelope-derived customer ad.
    let customer_ad = {
        let mut ad = gang_ad.clone();
        ad.remove("Ports");
        ad
    };
    for port in &grant.ports {
        let handler = match port.offer_name.as_str() {
            "cpu1" => &mut cpu_handler,
            "lic1" => &mut lic_handler,
            other => panic!("unexpected offer {other}"),
        };
        let (resp, _) = handler.handle_claim(
            &ClaimRequest {
                ticket: port.ticket.expect("ticket relayed per port"),
                customer_ad: customer_ad.clone(),
                customer_contact: grant.customer_contact.clone(),
            },
            &port.offer_ad,
            1,
            |_| false,
        );
        assert!(
            resp.accepted,
            "port {} claim failed: {:?}",
            port.port, resp.rejection
        );
    }
    assert!(cpu_handler.is_claimed());
    assert!(lic_handler.is_claimed());
}

#[test]
fn banned_gang_owner_blocked_at_both_layers() {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    let mut tickets = TicketIssuer::new(78);
    provider(
        &mut store,
        &proto,
        &mut tickets,
        "cpu1",
        "Machine",
        "Mips = 104; Memory = 64;",
    );

    let gang_ad = parse_classad(
        r#"[ Name = "bad-gang"; Type = "Gang"; Owner = "banned";
             Constraint = true;
             Ports = { [ Constraint = other.Type == "Machine" ] } ]"#,
    )
    .unwrap();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: gang_ad,
                contact: "banned-ca:1".into(),
                ticket: None,
                expires_at: 10_000,
            },
            0,
            &proto,
        )
        .unwrap();

    // The provider's bilateral veto holds for gang ports too: the match
    // layer never grants.
    let out = negotiate_gangs(&store, 0, &GangSolver::default());
    assert!(out.granted.is_empty());
    assert_eq!(out.failed, vec!["bad-gang".to_string()]);
}

#[test]
fn bilateral_and_gang_negotiation_coexist() {
    // Plain jobs are served by the bilateral negotiator; gangs by the
    // gang pass; they share the provider pool without double-granting.
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    let mut tickets = TicketIssuer::new(79);
    provider(
        &mut store,
        &proto,
        &mut tickets,
        "cpu1",
        "Machine",
        "Mips = 104; Memory = 64;",
    );
    provider(
        &mut store,
        &proto,
        &mut tickets,
        "cpu2",
        "Machine",
        "Mips = 50; Memory = 64;",
    );

    // A plain job...
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: parse_classad(
                    r#"[ Name = "plain.0"; Type = "Job"; Owner = "alice";
                         Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
                )
                .unwrap(),
                contact: "alice-ca:1".into(),
                ticket: None,
                expires_at: 10_000,
            },
            0,
            &proto,
        )
        .unwrap();
    // ...and a gang needing one machine.
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: parse_classad(
                    r#"[ Name = "gang.0"; Type = "Gang"; Owner = "bob";
                         Constraint = true;
                         Ports = { [ Constraint = other.Type == "Machine";
                                     Rank = other.Mips ] } ]"#,
                )
                .unwrap(),
                contact: "bob-ca:1".into(),
                ticket: None,
                expires_at: 10_000,
            },
            0,
            &proto,
        )
        .unwrap();

    // Bilateral pass first. The gang ad participates as an ordinary
    // request too (its own Constraint is true and machines accept it),
    // so a production manager runs the gang pass FIRST or types its
    // bilateral pool; here we exclude gangs from the bilateral pass by
    // withdrawing them, mirroring what ManagerNode does with matched ads.
    let gang_stored = store.get(EntityKind::Customer, "gang.0").cloned().unwrap();
    store.withdraw(EntityKind::Customer, "gang.0");
    let mut negotiator = Negotiator::default();
    let bilateral = negotiator.negotiate(&store, 0);
    assert_eq!(bilateral.stats.matches, 1);
    assert_eq!(bilateral.matches[0].request_name, "plain.0");
    assert_eq!(
        bilateral.matches[0].offer_name, "cpu1",
        "plain job takes the fast machine"
    );
    // The granted provider leaves the store; the gang comes back for its
    // pass and gets the remaining machine.
    store.withdraw(EntityKind::Provider, "cpu1");
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: (*gang_stored.ad).clone(),
                contact: gang_stored.contact.clone(),
                ticket: None,
                expires_at: 10_000,
            },
            0,
            &proto,
        )
        .unwrap();
    let gangs = negotiate_gangs(&store, 0, &GangSolver::default());
    assert_eq!(gangs.granted.len(), 1);
    assert_eq!(gangs.granted[0].ports[0].offer_name, "cpu2");
}
