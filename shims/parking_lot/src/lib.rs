//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning `lock()`/`read()`/`write()` signatures, implemented over
//! `std::sync`. Poison from a panicked holder is swallowed (the inner
//! value is recovered), matching parking_lot's "no poisoning" contract.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking); never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard; never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard; never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
