//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses: seedable
//! deterministic generators (`SmallRng`, `StdRng`) and the `Rng` extension
//! methods `gen`, `gen_range`, and `gen_bool`. Streams are deterministic
//! per seed (splitmix64 core), which is all the simulator and the ticket
//! issuer require; statistical quality beyond that is not a goal.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Sample a uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Uniform in [0, 1): 53 mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample uniformly from the range; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let v = u128::sample_standard(rng) % span;
                ((self.start as $wide as u128).wrapping_add(v)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide as u128)
                    .wrapping_sub(start as $wide as u128)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t>::sample_standard(rng);
                }
                let v = u128::sample_standard(rng) % span;
                ((start as $wide as u128).wrapping_add(v)) as $t
            }
        }
    )*};
}
sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// The user-facing extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, seedable generator (xorshift-style core seeded via
    /// splitmix64, as the real `SmallRng` documentation suggests).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s0 = splitmix64(&mut st);
            let s1 = splitmix64(&mut st);
            SmallRng { s0, s1: s1 | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoroshiro128+ step.
            let (mut s0, s1) = (self.s0, self.s1);
            let out = s0.wrapping_add(s1);
            let s1x = s1 ^ s0;
            s0 = s0.rotate_left(55) ^ s1x ^ (s1x << 14);
            self.s0 = s0;
            self.s1 = s1x.rotate_left(36);
            out
        }
    }

    /// The "standard" generator; here the same deterministic core with an
    /// independent stream constant.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(10..200);
            assert!((10..200).contains(&v));
            let v: u64 = r.gen_range(0..=5);
            assert!(v <= 5);
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let neg: i64 = r.gen_range(-50..-10);
            assert!((-50..-10).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_u128_covers_both_halves() {
        let mut r = StdRng::seed_from_u64(3);
        let v: u128 = r.gen();
        assert_ne!(v >> 64, 0, "high half should be populated");
    }
}
