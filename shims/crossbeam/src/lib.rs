//! Offline stand-in for `crossbeam`: the scoped-thread API used by the
//! parallel match scan, backed by `std::thread::scope` (which did not
//! exist when crossbeam's version was written, and makes the shim small).
//!
//! Semantics difference worth knowing: `crossbeam::scope` returns `Err`
//! when a child thread panicked, while `std::thread::scope` re-raises the
//! panic after joining. Callers here use `.expect(...)`, so a child panic
//! aborts the test/process either way.

use std::any::Any;
use std::thread::{Scope as StdScope, ScopedJoinHandle};

/// Handle for spawning scoped threads (mirrors `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope StdScope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread that may borrow from the enclosing scope. The
    /// closure receives the scope handle, as crossbeam's does.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before this
/// returns (mirrors `crossbeam::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Module alias matching crossbeam's layout.
pub mod thread {
    pub use crate::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let mut partials = vec![0u64; 2];
        super::scope(|s| {
            for (slot, chunk) in partials.iter_mut().zip(data.chunks(2)) {
                s.spawn(move |_| {
                    *slot = chunk.iter().sum();
                });
            }
        })
        .unwrap();
        assert_eq!(partials, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
