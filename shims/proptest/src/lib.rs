//! Offline stand-in for `proptest`: deterministic strategy-based random
//! testing with the same surface API the workspace's property tests use.
//!
//! Differences from the real crate, by design:
//! * no shrinking — a failing case reports the full generated input;
//! * seeds are derived from the test name, so runs are reproducible
//!   without a persistence file (`.proptest-regressions` is ignored);
//! * `string_regex` implements only the tiny regex subset the tests use
//!   (char classes, `\PC`, `{m,n}` quantifiers, literals).
//!
//! `PROPTEST_CASES=<n>` overrides every test's case count (useful to
//! shorten CI runs).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// RNG threaded through all strategies.
pub type TestRng = SmallRng;

// ---------------------------------------------------------------------------
// Core strategy trait + combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries internally; panics if
    /// the predicate rejects persistently).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// inner level and returns the compound level. `depth` bounds nesting;
    /// the other two parameters are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            // At each level: 2 parts leaf, 1 part one-level-deeper compound.
            current = strategy::union(vec![(2, base.clone()), (1, recurse(current).boxed())]);
        }
        current
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 candidates in a row",
            self.whence
        );
    }
}

trait DynStrategy<T> {
    fn dyn_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy building blocks used by the `prop_oneof!` macro.
pub mod strategy {
    use super::*;

    /// Weighted choice among boxed alternatives.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    /// Build a [`Union`]; weights must not all be zero.
    pub fn union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T>
    where
        T: std::fmt::Debug + 'static,
    {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: all weights zero");
        Union { arms, total }.boxed()
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any::<T>(), tuples, &str regexes
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Produce an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Full bit-pattern coverage (NaN and infinities included) so
        // `prop_filter("finite", ..)` actually filters something.
        f64::from_bits(rng.gen::<u64>())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.gen::<u32>())
    }
}

/// Strategy wrapper for [`Arbitrary`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
);

/// A string literal is a regex strategy (proptest convention).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        string::compile_regex(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e:?}"))
            .generate(rng)
    }
}

// ---------------------------------------------------------------------------
// collection / string / char modules
// ---------------------------------------------------------------------------

/// Collection strategies (`vec`).
pub mod collection {
    use super::*;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..8)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Character strategies.
pub mod char {
    use super::*;

    /// Inclusive character range strategy.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// `range('a', 'z')` — chars in the inclusive range.
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi);
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn new_value(&self, rng: &mut TestRng) -> ::core::primitive::char {
            loop {
                let v = rng.gen_range(self.lo..=self.hi);
                if let Some(c) = ::core::primitive::char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// String strategies (regex-driven generation).
pub mod string {
    use super::*;

    /// Error from compiling an unsupported/invalid pattern.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    #[derive(Debug, Clone)]
    enum CharGen {
        /// Inclusive codepoint ranges.
        Class(Vec<(u32, u32)>),
        /// Any non-control scalar value (regex `\PC`).
        NonControl,
    }

    impl CharGen {
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            match self {
                CharGen::Class(ranges) => {
                    let total: u32 = ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
                    let mut pick = rng.gen_range(0..total);
                    for (lo, hi) in ranges {
                        let span = hi - lo + 1;
                        if pick < span {
                            return ::core::primitive::char::from_u32(lo + pick)
                                .expect("class range covers invalid codepoint");
                        }
                        pick -= span;
                    }
                    unreachable!()
                }
                CharGen::NonControl => loop {
                    // Mostly printable ASCII, sometimes wider BMP, so
                    // generated strings exercise unicode paths too.
                    let v = if rng.gen_bool(0.85) {
                        rng.gen_range(0x20u32..=0x7E)
                    } else {
                        rng.gen_range(0x20u32..=0xFFFF)
                    };
                    if let Some(c) = ::core::primitive::char::from_u32(v) {
                        if !c.is_control() {
                            return c;
                        }
                    }
                },
            }
        }
    }

    #[derive(Debug, Clone)]
    struct Atom {
        gen: CharGen,
        min: u32,
        max: u32,
    }

    /// Compiled pattern: a sequence of quantified atoms.
    #[derive(Debug, Clone)]
    pub struct RegexGen {
        atoms: Vec<Atom>,
    }

    impl RegexGen {
        /// Produce one matching string.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.gen_range(atom.min..=atom.max);
                for _ in 0..n {
                    out.push(atom.gen.generate(rng));
                }
            }
            out
        }
    }

    impl Strategy for RegexGen {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            self.generate(rng)
        }
    }

    pub(crate) fn compile_regex(pattern: &str) -> Result<RegexGen, Error> {
        let chars: Vec<::core::primitive::char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let gen = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            if (lo as u32) > (hi as u32) {
                                return Err(Error(format!("bad class range {lo}-{hi}")));
                            }
                            ranges.push((lo as u32, hi as u32));
                            i += 3;
                        } else {
                            ranges.push((lo as u32, lo as u32));
                            i += 1;
                        }
                    }
                    if i >= chars.len() {
                        return Err(Error("unterminated character class".into()));
                    }
                    i += 1; // consume ']'
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    CharGen::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') => match chars.get(i + 1) {
                            Some('C') => {
                                i += 2;
                                CharGen::NonControl
                            }
                            other => {
                                return Err(Error(format!("unsupported \\P{other:?}")));
                            }
                        },
                        Some(&c) => {
                            i += 1;
                            CharGen::Class(vec![(c as u32, c as u32)])
                        }
                        None => return Err(Error("dangling backslash".into())),
                    }
                }
                c => {
                    i += 1;
                    CharGen::Class(vec![(c as u32, c as u32)])
                }
            };
            // Optional {m,n} / {m} quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unterminated quantifier".into()))?;
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                let parse = |s: &str| {
                    s.parse::<u32>()
                        .map_err(|_| Error(format!("bad quantifier {body:?}")))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let n = parse(&body)?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error("quantifier min > max".into()));
            }
            atoms.push(Atom { gen, min, max });
        }
        Ok(RegexGen { atoms })
    }

    /// Strategy for strings matching `pattern` (supported subset only).
    pub fn string_regex(pattern: &str) -> Result<RegexGen, Error> {
        compile_regex(pattern)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Config + error types, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the input; try another.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

use test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one property test: generate inputs from `strat`, run `body`,
/// panic with the offending input on failure. Used by the `proptest!`
/// macro expansion; not part of the real proptest API.
pub fn run_cases<S, F>(test_name: &str, config: &ProptestConfig, strat: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let mut rng = TestRng::seed_from_u64(seed_for(test_name));
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = cases.saturating_mul(5).saturating_add(100);
    while passed < cases {
        let value = strat.new_value(&mut rng);
        let desc = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(why))) => {
                rejected += 1;
                if rejected > max_rejects {
                    eprintln!(
                        "proptest {test_name}: giving up after {rejected} rejections \
                         (last: {why}); {passed}/{cases} cases passed"
                    );
                    return;
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest {test_name} failed at case #{passed}: {msg}\n\
                     input: {desc}"
                );
            }
            Err(payload) => {
                eprintln!("proptest {test_name} panicked at case #{passed}\ninput: {desc}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted or unweighted choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($item:expr $(,)?) => { $item };
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( (1u32, $crate::Strategy::boxed($item)) ),+
        ])
    };
    ($($weight:expr => $item:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $( ($weight as u32, $crate::Strategy::boxed($item)) ),+
        ])
    };
}

/// Property-test block: optional `#![proptest_config(..)]`, then
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($config:expr)) => {};
    (@cfg($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($argpat:pat in $argstrat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strat = ($($argstrat,)+);
            $crate::run_cases(stringify!($name), &config, strat, |values| {
                let ($($argpat,)+) = values;
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { @cfg($config) $($rest)* }
    };
}

/// Assert inside a proptest body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Reject the current input (not counted as a case) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_generation_matches_shape() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(9);
        let pat = crate::string::string_regex("[A-Za-z_][A-Za-z0-9_]{0,6}[0-9]").unwrap();
        for _ in 0..200 {
            let s: String = pat.generate(&mut rng);
            let cs: Vec<char> = s.chars().collect();
            assert!(cs.len() >= 2 && cs.len() <= 8, "{s:?}");
            assert!(cs[0].is_ascii_alphabetic() || cs[0] == '_', "{s:?}");
            assert!(cs[cs.len() - 1].is_ascii_digit(), "{s:?}");
        }
        let pc = crate::string::string_regex("\\PC{0,20}").unwrap();
        for _ in 0..200 {
            let s = pc.generate(&mut rng);
            assert!(s.chars().count() <= 20);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn strategies_compose() {
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(4);
        let strat = crate::collection::vec(prop_oneof![3 => Just(0i64), 1 => 10i64..20], 0..5)
            .prop_map(|v| v.len());
        for _ in 0..50 {
            let n = strat.new_value(&mut rng);
            assert!(n < 5);
        }
        let filtered = any::<f64>().prop_filter("finite", |f| f.is_finite());
        for _ in 0..50 {
            assert!(filtered.new_value(&mut rng).is_finite());
        }
    }

    #[test]
    fn recursive_strategy_is_bounded() {
        use rand::SeedableRng;
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 3, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::seed_from_u64(11);
        for _ in 0..100 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 5, "depth {} too deep: {t:?}", depth(&t));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_plumbing_works(x in 0i64..100, mut v in crate::collection::vec(0u8..4, 0..4)) {
            prop_assume!(x != 13);
            v.push(1);
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(v.last().copied(), Some(1), "x was {}", x);
        }
    }
}
