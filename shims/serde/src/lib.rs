//! Offline stand-in for `serde`. The workspace derives
//! Serialize/Deserialize for documentation purposes but performs all real
//! serialization by hand (see `crates/sim/src/scenario.rs`), so the
//! traits here are empty markers with blanket impls and the derives are
//! no-ops re-exported from the `serde_derive` shim.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
