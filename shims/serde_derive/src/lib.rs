//! Offline stand-in for `serde_derive`. The workspace only *derives*
//! Serialize/Deserialize (nothing actually serializes through serde —
//! JSON output is hand-rolled), so the derives expand to nothing and the
//! marker traits are implemented blanket-style in the `serde` shim.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
