//! Offline stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte buffers (`Bytes`), a growable builder (`BytesMut`), and the
//! big-endian cursor traits (`Buf`/`BufMut`) the wire protocol uses.
//!
//! `Bytes` is an `Arc<[u8]>` plus a window, so `clone`/`slice`-style
//! operations are O(1) and never copy, matching the real crate's
//! observable behaviour for this workspace's usage.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wrap a `'static` slice without copying.
    pub fn from_static(slice: &'static [u8]) -> Self {
        // One copy into an Arc keeps the representation uniform; the
        // slices involved here are tiny test vectors.
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end: slice.len(),
        }
    }

    /// Number of bytes in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// O(1) sub-window sharing the same backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off the first `at` bytes into a new `Bytes`, advancing self.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

/// Growable byte builder.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl (bytes before it are consumed).
    read: usize,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    /// Freeze into an immutable `Bytes` (consumed prefix is dropped).
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }

    /// Split off the first `at` unconsumed bytes into a new `BytesMut`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head: Vec<u8> = self.buf[self.read..self.read + at].to_vec();
        self.buf.drain(..self.read + at);
        self.read = 0;
        BytesMut { buf: head, read: 0 }
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read-side cursor over a byte buffer (big-endian getters, as the real
/// crate defines them).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// View of the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Consume a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Consume a big-endian u128.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        b.copy_from_slice(&self.chunk()[..16]);
        self.advance(16);
        u128::from_be_bytes(b)
    }

    /// Consume `len` bytes into an owned `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes out of bounds");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
    }
}

/// Write-side sink (big-endian putters).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u128.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_u128(1 << 100);
        b.put_slice(b"tail");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_u128(), 1 << 100);
        assert_eq!(r.copy_to_bytes(4).to_vec(), b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn bytesmut_split_and_index() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(b[0], 1);
        b.advance(1);
        assert_eq!(b[0], 2);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&b[..], &[4, 5]);
        assert_eq!(head.freeze().to_vec(), vec![2, 3]);
    }

    #[test]
    fn bytes_clone_is_shallow_window() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let mut c = b.clone();
        let head = c.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(c.to_vec(), vec![3, 4]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4], "original unaffected");
    }
}
