//! Offline stand-in for `criterion`. Same surface API as the subset the
//! bench targets use, but the statistics are deliberately simple: each
//! benchmark warms up for `warm_up_time`, then runs for roughly
//! `measurement_time` and reports the mean wall-clock time per iteration.
//!
//! Results are also pushed into a process-global registry
//! ([`take_results`]) so custom `main` functions can export
//! machine-readable summaries (e.g. `BENCH_negotiation.json`).

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after warm-up).
    pub iterations: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain all results recorded so far (in execution order).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

fn record(id: String, mean_ns: f64, iterations: u64) {
    let unit = if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    println!("{id:<56} time: {unit}   ({iterations} iters)");
    RESULTS.lock().unwrap().push(BenchResult {
        id,
        mean_ns,
        iterations,
    });
}

/// Benchmark identifier: a function name plus a parameter, rendered as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

/// Anything acceptable as a benchmark id (`&str`, `String`, `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// Render to the flat string form.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Batch-size hint for `iter_batched`; only used to pick how often setup
/// runs relative to the routine.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh input per small batch.
    SmallInput,
    /// Fresh input per large batch.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled in by `iter`; consumed by the group.
    out: Option<(f64, u64)>,
}

impl Bencher {
    /// Measure `f` (mean over as many iterations as fit the window).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        loop {
            black_box(f());
            if Instant::now() >= warm_end {
                break;
            }
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut elapsed;
        loop {
            black_box(f());
            iters += 1;
            elapsed = start.elapsed();
            if elapsed >= self.measurement {
                break;
            }
        }
        self.out = Some((elapsed.as_nanos() as f64 / iters as f64, iters));
    }

    /// Measure `routine` on values produced by `setup`; setup time is
    /// excluded from the reported mean.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_end = Instant::now() + self.warm_up;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_end {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement;
        let mut iters: u64 = 0;
        let mut measured = Duration::ZERO;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.out = Some((measured.as_nanos() as f64 / iters as f64, iters));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim's sampling is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            warm_up: self.crit.warm_up,
            measurement: self.crit.measurement,
            out: None,
        };
        f(&mut b);
        if let Some((mean_ns, iters)) = b.out {
            record(format!("{}/{}", self.name, id), mean_ns, iters);
        }
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(id, |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(id, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Top-level harness configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Honor `--warm-up-time N` / `--measurement-time M` (seconds) and a
    /// `BENCH_FAST=1` env override that shrinks both windows.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--warm-up-time" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        self.warm_up = Duration::from_secs_f64(v);
                        i += 1;
                    }
                }
                "--measurement-time" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        self.measurement = Duration::from_secs_f64(v);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        if std::env::var_os("BENCH_FAST").is_some() {
            self.warm_up = Duration::from_millis(50);
            self.measurement = Duration::from_millis(150);
        }
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name} --");
        BenchmarkGroup { name, crit: self }
    }

    /// End-of-run hook (prints a terse footer).
    pub fn final_summary(&self) {
        println!("(criterion shim: wall-clock means; see lines above)");
    }
}

/// Define a named runner over a list of benchmark functions, mirroring
/// criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Standard entry point for groups that do not define their own `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        let res = take_results();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, "g/f");
        assert_eq!(res[1].id, "g/with/3");
        assert!(res[0].iterations > 0 && res[0].mean_ns >= 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("b");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(take_results().len(), 1);
    }
}
