//! `pool_view` — CondorView for the terminal: sparkline charts of the
//! pool's retained history, fetched over the wire with `HistoryQuery`
//! (tag 15, see `docs/protocol.md` §15 and `docs/observability.md` §6).
//!
//! Where `pool_top` shows the pool *now* (live self-ad counters),
//! `pool_view` shows where it has *been*: the matchmaker's embedded view
//! collector keeps every metric in multi-resolution ring buffers, and
//! this tool renders one sparkline per retained series — utilization,
//! match/flock rates, per-daemon gauges — with departed sources' absent
//! tombstones marked `×`.
//!
//! Run against a live daemon spawned with `DaemonConfig::view`:
//!
//! ```text
//! cargo run --example pool_view -- --connect 127.0.0.1:9618
//! ```
//!
//! or with `--demo` to spawn a small in-process pool (view enabled, fast
//! sampling) and watch its history accumulate. Flags: `--metric <name>`
//! restricts to one metric (default: all), `--tier <n>` picks a
//! resolution tier (default 0, the finest), `--limit <n>` caps samples
//! per series, `--once` renders a single frame, `--interval <secs>` sets
//! the refresh period, `--no-color` strips ANSI color (CI logs), and
//! `--csv` dumps the raw samples as CSV instead of charts.

use classad::ClassAd;
use condor_pool::wire::{self, IoConfig};
use condor_pool::{PoolBuilder, ViewConfig};
use condor_view::HistoryConfig;
use matchmaker::protocol::Message;
use std::time::Duration;

const SPARKS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Scale `values` into one sparkline row; absent tombstones render `×`.
fn sparkline(values: &[f64], absent: &[bool]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    values
        .iter()
        .zip(absent.iter().chain(std::iter::repeat(&false)))
        .map(|(&v, &gone)| {
            if gone {
                '×'
            } else if v == 0.0 && lo == 0.0 {
                SPARKS[0] // true zero stays blank
            } else {
                // Nonzero samples occupy ▁..█ so a flat series is
                // visible instead of rendering as an empty chart.
                let idx = 1 + ((v - lo) / span * (SPARKS.len() - 2) as f64).round() as usize;
                SPARKS[idx.min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// Split a comma-joined sample attribute into floats (`Times`, `Data`).
fn samples(ad: &ClassAd, attr: &str) -> Vec<f64> {
    ad.get_string(attr)
        .map(|s| s.split(',').filter_map(|v| v.parse::<f64>().ok()).collect())
        .unwrap_or_default()
}

fn absent_flags(ad: &ClassAd) -> Vec<bool> {
    ad.get_string("Absent")
        .map(|s| s.split(',').map(|f| f == "1").collect())
        .unwrap_or_default()
}

/// Fetch the matching series over the wire. A pre-view daemon (or one
/// running without `DaemonConfig::view`) rejects the tag with a
/// structured error — surfaced here as a clean exit, not a hang.
fn fetch(addr: &str, constraint: &str, limit: u32) -> Vec<ClassAd> {
    let msg = Message::HistoryQuery {
        constraint: constraint.to_string(),
        limit,
    };
    match wire::request_reply(addr, &msg, &IoConfig::default()) {
        Ok(Message::HistoryReply { mut ads }) => {
            ads.sort_by(|a, b| a.get_string("Name").cmp(&b.get_string("Name")));
            ads
        }
        Ok(other) => {
            eprintln!("unexpected reply from {addr}: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("history at {addr} unavailable: {e}");
            eprintln!("(the daemon may predate pool history, or run without `view`)");
            std::process::exit(1);
        }
    }
}

fn render(addr: &str, ads: &[ClassAd], color: bool) {
    let (bold, dim, reset) = if color {
        ("\x1b[1m", "\x1b[2m", "\x1b[0m")
    } else {
        ("", "", "")
    };
    println!("{bold}pool_view — history at {addr}{reset}");
    if ads.is_empty() {
        println!("  (no series matched — has the collector sampled yet?)");
        return;
    }
    for ad in ads {
        let data = samples(ad, "Data");
        let absent = absent_flags(ad);
        let last = data.last().copied().unwrap_or(0.0);
        let unit = if ad.get_string("Kind") == Some("Counter") {
            "/s"
        } else {
            ""
        };
        println!(
            "  {bold}{:<40}{reset} {:>10.3}{unit}  |{}|  {dim}{} pt @ {}s{reset}",
            ad.get_string("Name").unwrap_or("?"),
            last,
            sparkline(&data, &absent),
            data.len(),
            ad.get_int("IntervalSecs").unwrap_or(0),
        );
    }
}

/// `--csv`: one row per sample, ready for a spreadsheet or gnuplot.
fn dump_csv(ads: &[ClassAd]) {
    println!("pool,metric,source,tier,kind,unix,value,absent");
    for ad in ads {
        let s = |attr: &str| ad.get_string(attr).unwrap_or("?");
        let times = samples(ad, "Times");
        let data = samples(ad, "Data");
        let absent = absent_flags(ad);
        for (i, (t, v)) in times.iter().zip(data.iter()).enumerate() {
            println!(
                "{},{},{},{},{},{},{},{}",
                s("Pool"),
                s("Metric"),
                s("Source"),
                ad.get_int("Tier").unwrap_or(0),
                s("Kind"),
                *t as u64,
                v,
                absent.get(i).copied().unwrap_or(false) as u8,
            );
        }
    }
}

/// The `--demo` pool: two machines, two jobs, and a matchmaker whose
/// embedded collector samples fast enough to chart within a second.
fn demo_pool() -> condor_pool::PoolHandle {
    let machine = |mips: i64| {
        classad::parse_classad(&format!(
            r#"[ Type = "Machine"; Mips = {mips};
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap()
    };
    let job = || {
        classad::parse_classad(
            r#"[ Type = "Job"; Constraint = other.Type == "Machine";
                 Rank = other.Mips ]"#,
        )
        .unwrap()
    };
    let mut builder = PoolBuilder::new()
        .machine("demo-m0", machine(100))
        .machine("demo-m1", machine(400))
        .user(
            "demo",
            vec![("demo-0".into(), job()), ("demo-1".into(), job())],
        );
    builder.daemon.view = Some(ViewConfig {
        sample_interval: Duration::from_millis(100),
        // 1-second buckets so a few seconds of demo history draws a
        // visible sparkline (the production default is 10s/1m/10m).
        history: HistoryConfig::single(1, 360),
        ..ViewConfig::default()
    });
    builder.spawn().expect("demo pool failed to start")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!(
                    "usage: pool_view [--connect host:port | --demo] [--metric name] \
                     [--tier n] [--limit n] [--interval secs] [--once] [--no-color] [--csv]"
                );
                std::process::exit(2);
            })
        })
    };
    let once = args.iter().any(|a| a == "--once");
    let csv = args.iter().any(|a| a == "--csv");
    let color = !args.iter().any(|a| a == "--no-color");
    let interval = flag_value("--interval")
        .map(|s| s.parse::<f64>().expect("--interval takes seconds"))
        .unwrap_or(2.0);
    let tier = flag_value("--tier")
        .map(|s| s.parse::<i64>().expect("--tier takes a tier index"))
        .unwrap_or(0);
    let limit = flag_value("--limit")
        .map(|s| s.parse::<u32>().expect("--limit takes a sample count"))
        .unwrap_or(0);
    let constraint = match flag_value("--metric") {
        Some(m) => format!(r#"other.Metric == "{m}" && other.Tier == {tier}"#),
        None => format!("other.Tier == {tier}"),
    };

    let (addr, _demo) = match flag_value("--connect") {
        Some(addr) => (addr, None),
        None => {
            let pool = demo_pool();
            let addr = pool.daemon().addr().to_string();
            eprintln!("no --connect given: spawned a demo pool at {addr}");
            // Let the collector run a few passes so the charts have ink.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while pool.daemon().view().map_or(0, |v| v.collections()) < 30 {
                if std::time::Instant::now() > deadline {
                    eprintln!("demo collector never sampled");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            (addr, Some(pool))
        }
    };

    if csv {
        dump_csv(&fetch(&addr, &constraint, limit));
        return;
    }
    if once {
        render(&addr, &fetch(&addr, &constraint, limit), color);
        return;
    }
    loop {
        if color {
            print!("\x1b[2J\x1b[H");
        }
        render(&addr, &fetch(&addr, &constraint, limit), color);
        println!("\n(refreshing every {interval}s — Ctrl-C to quit)");
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
    }
}
