//! A complete Condor-style pool on loopback TCP sockets — the paper's
//! Figure 3 flow, live: resource agents advertise over the wire, the
//! matchmaker daemon runs periodic negotiation cycles and dials match
//! notifications back, and customer agents claim providers *directly*,
//! presenting the relayed ticket for claim-time verification.
//!
//! Run with: `cargo run --example live_pool`
//!
//! While it runs (and for any daemon you start this way), the status tool
//! can interrogate the pool over TCP:
//!
//! ```text
//! cargo run --example status_query -- --connect <printed address>
//! ```

use classad::parse_classad;
use condor_pool::{JobStatus, PoolBuilder};
use std::time::Duration;

fn main() {
    let mut builder = PoolBuilder::new();
    for (name, mips) in [
        ("leonardo", 104),
        ("raphael", 120),
        ("donatello", 80),
        ("michelangelo", 140),
    ] {
        let ad = parse_classad(&format!(
            r#"[ Type = "Machine"; Mips = {mips}; KeyboardIdle = 1000;
                 Constraint = other.Type == "Job" && KeyboardIdle > 300;
                 Rank = 0 ]"#
        ))
        .unwrap();
        builder = builder.machine(name, ad);
    }
    let job = || {
        parse_classad(
            r#"[ Type = "Job"; ImageSize = 8;
                 Constraint = other.Type == "Machine"; Rank = other.Mips ]"#,
        )
        .unwrap()
    };
    let pool = builder
        .user(
            "raman",
            vec![("raman-0".into(), job()), ("raman-1".into(), job())],
        )
        .user(
            "miron",
            vec![("miron-0".into(), job()), ("miron-1".into(), job())],
        )
        .spawn()
        .expect("loopback pool should start");

    println!("matchmaker daemon listening on {}", pool.daemon().addr());
    for ra in pool.resources() {
        println!("  machine {:<14} claim endpoint {}", ra.name(), ra.addr());
    }
    println!();

    let converged = pool.wait_for(Duration::from_secs(30), |p| p.all_claimed());
    for ca in pool.customers() {
        for (name, status) in ca.jobs() {
            match status {
                JobStatus::Claimed {
                    provider_name,
                    provider_contact,
                } => println!(
                    "job {:<10} owner {:<6} -> claimed {:<14} at {}",
                    name,
                    ca.user(),
                    provider_name,
                    provider_contact
                ),
                other => println!("job {:<10} owner {:<6} -> {other:?}", name, ca.user()),
            }
        }
    }
    if !converged {
        eprintln!("pool did not converge in time");
    }

    let d = pool.daemon().stats();
    println!(
        "\ndaemon: {} cycle(s), {} frame(s) served, {} notification(s) delivered",
        d.cycles, d.frames_handled, d.notifications_sent
    );
    println!("shutting down (drains connections, withdraws ads, joins every thread)...");
    pool.shutdown();
    println!("pool stopped cleanly");
}
