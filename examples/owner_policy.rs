//! Exploring the paper's Figure 1 owner policy: who may use
//! `leonardo.cs.wisc.edu`, and when?
//!
//! The policy, verbatim from the paper:
//! * users in `Untrusted` are never served;
//! * research-group members (rank 10) are always served;
//! * friends (rank 1) only when the workstation is idle (load < 0.3 and
//!   keyboard idle > 15 min);
//! * everyone else only outside 8:00–18:00.
//!
//! Run with: `cargo run --example owner_policy`

use classad::fixtures::FIGURE1_MACHINE;
use classad::{constraint_holds, parse_classad, rank_of, ClassAd, EvalPolicy, MatchConventions};

fn job_for(owner: &str) -> ClassAd {
    parse_classad(&format!(
        r#"[ Name = "probe"; Type = "Job"; Owner = "{owner}";
             Constraint = other.Type == "Machine" ]"#
    ))
    .unwrap()
}

fn main() {
    let base = parse_classad(FIGURE1_MACHINE).unwrap();
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();

    let owners = ["raman", "miron", "tannenba", "stranger", "riffraff"];
    type Tweak = Box<dyn Fn(&mut ClassAd)>;
    let situations: [(&str, Tweak); 4] = [
        (
            "idle afternoon (14:00, kbd 24 min)",
            Box::new(|ad: &mut ClassAd| {
                ad.set_int("DayTime", 14 * 3600);
                ad.set_int("KeyboardIdle", 1432);
                ad.set_real("LoadAvg", 0.042969);
            }),
        ),
        (
            "busy afternoon (14:00, kbd 30 s)",
            Box::new(|ad: &mut ClassAd| {
                ad.set_int("DayTime", 14 * 3600);
                ad.set_int("KeyboardIdle", 30);
                ad.set_real("LoadAvg", 0.8);
            }),
        ),
        (
            "idle night (23:00, kbd 2 h)",
            Box::new(|ad: &mut ClassAd| {
                ad.set_int("DayTime", 23 * 3600);
                ad.set_int("KeyboardIdle", 7200);
                ad.set_real("LoadAvg", 0.01);
            }),
        ),
        (
            "busy night (23:00, kbd 10 s)",
            Box::new(|ad: &mut ClassAd| {
                ad.set_int("DayTime", 23 * 3600);
                ad.set_int("KeyboardIdle", 10);
                ad.set_real("LoadAvg", 1.5);
            }),
        ),
    ];

    println!("Figure 1 policy decision matrix for leonardo.cs.wisc.edu\n");
    print!("{:38}", "");
    for o in owners {
        print!("{o:>10}");
    }
    println!();
    println!(
        "{:38}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "(relationship)", "research", "research", "friend", "other", "untrusted"
    );

    for (label, tweak) in &situations {
        let mut machine = base.clone();
        tweak(&mut machine);
        print!("{label:<38}");
        for owner in owners {
            let job = job_for(owner);
            let ok = constraint_holds(&machine, &job, &policy, &conv);
            print!("{:>10}", if ok { "serve" } else { "-" });
        }
        println!();
    }

    println!("\nmachine's rank of each customer (match preference):");
    for owner in owners {
        let job = job_for(owner);
        println!(
            "  {owner:10} rank = {}",
            rank_of(&base, &job, &policy, &conv)
        );
    }

    println!("\nthe published constraint:");
    println!("  Constraint = {}", base.get("Constraint").unwrap());
    println!("  Rank       = {}", base.get("Rank").unwrap());

    // A faithful-reproduction footnote: with standard `?:` precedence the
    // figure's expression parses as `(!member(...) && Rank >= 10) ? ... :
    // ... : <night rule>`, so an *untrusted* user falls through to the
    // night rule — visible in the matrix above, where riffraff is served
    // at 23:00. The paper's prose says untrusted users are never served;
    // that intent needs the untrusted test conjoined outside the cascade:
    let mut fixed = base.clone();
    fixed.set(
        "Constraint",
        classad::parse_expr(
            "!member(other.Owner, Untrusted) && \
             (Rank >= 10 ? true : \
              Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 : \
              DayTime < 8*60*60 || DayTime > 18*60*60)",
        )
        .unwrap(),
    );
    fixed.set_int("DayTime", 23 * 3600);
    fixed.set_int("KeyboardIdle", 7200);
    let riffraff = job_for("riffraff");
    println!("\nprecedence quirk (see EXPERIMENTS.md E1):");
    println!(
        "  figure text, idle night, riffraff : {}",
        if constraint_holds(
            &{
                let mut m = base.clone();
                m.set_int("DayTime", 23 * 3600);
                m.set_int("KeyboardIdle", 7200);
                m
            },
            &riffraff,
            &policy,
            &conv
        ) {
            "serve (!)"
        } else {
            "-"
        }
    );
    println!(
        "  prose-faithful, idle night        : {}",
        if constraint_holds(&fixed, &riffraff, &policy, &conv) {
            "serve (!)"
        } else {
            "- (never serve untrusted)"
        }
    );
}
