//! `pool_top` — a `top`-style live view of pool health, built entirely on
//! daemon self-ads (see `docs/observability.md`). Every daemon publishes a
//! `DaemonAd = true` classad into the matchmaker's ad store; this tool
//! polls them with ordinary `Query` messages — the paper's one-way
//! matching protocol — so there is no bespoke monitoring RPC to speak.
//!
//! Run against a live daemon (see `examples/live_pool.rs`):
//!
//! ```text
//! cargo run --example pool_top -- --connect 127.0.0.1:9618
//! ```
//!
//! or with no arguments to spawn a small demo pool in-process and watch
//! it converge. `--interval <secs>` sets the refresh period (default 2);
//! `--once` renders a single frame without clearing the screen — handy
//! for scripts and CI logs; `--no-color` strips ANSI styling *and*
//! cursor control, turning the live loop into an append-only log.
//!
//! Live frames are drawn by diffing against the previous frame and
//! repainting only the lines that changed (cursor-addressed, no
//! full-screen clear), so the display never flickers.

use classad::{ClassAd, Expr, Literal};
use condor_obs::{schema, self_ad_constraint};
use condor_pool::wire::{self, IoConfig};
use condor_pool::PoolBuilder;
use matchmaker::protocol::Message;
use std::fmt::Write as _;
use std::time::Duration;

/// Append one line (or, with no format args, a blank line) to the frame.
macro_rules! wl {
    ($out:expr) => {
        $out.push('\n')
    };
    ($out:expr, $($t:tt)*) => {{
        let _ = writeln!($out, $($t)*);
    }};
}

/// Append without the newline.
macro_rules! w {
    ($out:expr, $($t:tt)*) => {{
        let _ = write!($out, $($t)*);
    }};
}

fn int(ad: &ClassAd, attr: &str) -> i64 {
    ad.get_int(attr).unwrap_or(0)
}

fn real(ad: &ClassAd, attr: &str) -> Option<f64> {
    match ad.get(attr).map(|e| e.as_ref()) {
        Some(Expr::Lit(Literal::Real(v))) => Some(*v),
        Some(Expr::Lit(Literal::Int(v))) => Some(*v as f64),
        _ => None,
    }
}

fn stats_ads(addr: &str, my_type: &str) -> Vec<ClassAd> {
    let msg = Message::Query {
        constraint: self_ad_constraint(my_type),
        kind: None,
        projection: vec![],
    };
    match wire::request_reply(addr, &msg, &IoConfig::default()) {
        Ok(Message::QueryReply { mut ads }) => {
            ads.sort_by(|a, b| a.get_string("Name").cmp(&b.get_string("Name")));
            ads
        }
        Ok(other) => {
            eprintln!("unexpected reply from {addr}: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("query to {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn render_matchmaker(out: &mut String, ads: &[ClassAd], color: bool) {
    let Some(ad) = ads.first() else {
        wl!(out, "MATCHMAKER    (no self-ad yet)");
        return;
    };
    wl!(
        out,
        "MATCHMAKER    {}   up {}s",
        ad.get_string("Name").unwrap_or("?"),
        int(ad, "UptimeSecs"),
    );
    // Leadership: a lone daemon leads at epoch 0; HA members carry their
    // elected epoch, standby count, and (when standing by) the leader's
    // contact for the redirect.
    if ad.contains("IsLeader") {
        let leading = matches!(
            ad.get("IsLeader").map(|e| e.as_ref()),
            Some(Expr::Lit(Literal::Bool(true)))
        );
        let role = if leading { "leader" } else { "standby" };
        w!(
            out,
            "  ha: {role} epoch {}   standbys {}",
            int(ad, "LeaderEpoch"),
            int(ad, "StandbyCount"),
        );
        if let Some(contact) = ad.get_string("LeaderContact") {
            w!(out, "   leader at {contact}");
        }
        wl!(
            out,
            "   elections won {}  redirects {}  checkpoints {}",
            int(ad, "ElectionsWon"),
            int(ad, "LeaderRedirects"),
            int(ad, "CheckpointsWritten"),
        );
    }
    // Alerting: one line for the firing set, severity-sorted by the
    // monitor itself (`ActiveAlertSummary`). Quiet pools with the alarm
    // on show "alerts: none"; pools without it show nothing.
    if ad.contains("ActiveAlerts") || ad.contains("AlertsRaisedTotal") {
        let active = int(ad, "ActiveAlerts");
        let (red, reset) = if color && active > 0 {
            ("\x1b[1;31m", "\x1b[0m")
        } else {
            ("", "")
        };
        match ad.get_string("ActiveAlertSummary") {
            Some(summary) if active > 0 => {
                wl!(out, "  {red}alerts: {active} firing — {summary}{reset}")
            }
            _ => wl!(
                out,
                "  alerts: none   ({} raised / {} cleared over {} rules)",
                int(ad, "AlertsRaisedTotal"),
                int(ad, "AlertsClearedTotal"),
                int(ad, "AlertRules"),
            ),
        }
    }
    // Federation: the peer table summary plus both directions of flock
    // traffic. A pool that neither forwards nor answers shows nothing.
    if ad.contains("FlockPeerTable")
        || int(ad, "FlockQueriesSent") > 0
        || int(ad, "FlockQueriesReceived") > 0
    {
        wl!(out,
            "  flocking: peers {} up / {} down / {} pre-flock   flocked jobs {}   remote matches {}",
            int(ad, "FlockPeersUp"),
            int(ad, "FlockPeersDown"),
            int(ad, "FlockPeersNonFlocking"),
            int(ad, "JobsFlocked"),
            int(ad, "FlockMatches"),
        );
        wl!(
            out,
            "    queries {} sent / {} received   grants {}   rejects {}",
            int(ad, "FlockQueriesSent"),
            int(ad, "FlockQueriesReceived"),
            int(ad, "FlockGrants"),
            int(ad, "FlockRejects"),
        );
    }
    wl!(
        out,
        "  cycles {:<6} matches {:<6} requests {:<6} unmatched {:<6} expired {}",
        int(ad, "Cycles"),
        int(ad, "MatchesTotal"),
        int(ad, "RequestsConsideredTotal"),
        int(ad, "UnmatchedRequestsTotal"),
        int(ad, "AdsExpiredTotal"),
    );
    wl!(
        out,
        "  conns {} (active {})  frames {} ({} rejected)  notify {} sent / {} failed",
        int(ad, "ConnectionsAccepted"),
        int(ad, "ActiveConnections"),
        int(ad, "FramesHandled"),
        int(ad, "FramesRejected"),
        int(ad, "NotificationsSent"),
        int(ad, "NotificationsFailed"),
    );
    w!(
        out,
        "  last cycle: {} req / {} offers / {} matches",
        int(ad, "LastCycleRequests"),
        int(ad, "LastCycleOffers"),
        int(ad, "LastCycleMatches"),
    );
    if let (Some(p50), Some(p99)) = (
        real(ad, "CycleDurationMsP50"),
        real(ad, "CycleDurationMsP99"),
    ) {
        w!(out, "   cycle p50 {p50:.2}ms p99 {p99:.2}ms");
    }
    if ad.contains("JournalPosition") {
        w!(
            out,
            "   journal seq {} ({} io errors, {} dropped)",
            int(ad, "JournalPosition"),
            int(ad, "JournalIoErrors"),
            int(ad, "JournalDropped"),
        );
    }
    wl!(out);
    wl!(
        out,
        "  incremental: {} cycles   shards {} scanned / {} skipped   dirty resources {}",
        int(ad, "IncrementalCycles"),
        int(ad, "ShardsScanned"),
        int(ad, "ShardsSkipped"),
        int(ad, "DirtyResources"),
    );
    // Attribution summary: why the last cycle's unmatched requests went
    // unmatched, straight from the negotiator's rejection tables.
    if let Some(reasons) = ad.get_string("RejectionTopReasons") {
        wl!(out, "  rejections (top reasons): {reasons}");
    }
    wl!(
        out,
        "  wire: {} frames in / {} out   {} in / {} out",
        int(ad, "FramesIn"),
        int(ad, "FramesOut"),
        human_bytes(int(ad, "BytesIn")),
        human_bytes(int(ad, "BytesOut")),
    );
    let phase = |label: &str, base: &str| -> String {
        if let (Some(mean), Some(p99)) = (
            real(ad, &format!("{base}Mean")),
            real(ad, &format!("{base}P99")),
        ) {
            format!("   {label} mean {mean:.1}ms p99 {p99:.1}ms")
        } else {
            String::new()
        }
    };
    wl!(
        out,
        "  phases:{}{}",
        phase("queue-wait", "PhaseQueueWaitMs"),
        phase("negotiation", "PhaseNegotiationMs")
    );
}

/// Render a byte count with a binary-unit suffix (`14.2KiB`).
fn human_bytes(n: i64) -> String {
    let n = n.max(0) as f64;
    if n >= 1024.0 * 1024.0 {
        format!("{:.1}MiB", n / (1024.0 * 1024.0))
    } else if n >= 1024.0 {
        format!("{:.1}KiB", n / 1024.0)
    } else {
        format!("{n:.0}B")
    }
}

fn render_resources(out: &mut String, ads: &[ClassAd]) {
    wl!(out, "RESOURCE AGENTS ({})", ads.len());
    if ads.is_empty() {
        return;
    }
    wl!(
        out,
        "  {:<20}{:>8}{:>10}{:>10}{:>8}{:>12}{:>8}",
        "NAME",
        "CLAIMED",
        "ACCEPTED",
        "REJECTED",
        "ADS",
        "FRAMES(I/O)",
        "UP"
    );
    for ad in ads {
        wl!(
            out,
            "  {:<20}{:>8}{:>10}{:>10}{:>8}{:>12}{:>7}s",
            ad.get_string("Machine")
                .or_else(|| ad.get_string("Name"))
                .unwrap_or("?"),
            if int(ad, "Claimed") == 1 { "yes" } else { "no" },
            int(ad, "ClaimsAccepted"),
            int(ad, "ClaimsRejected"),
            int(ad, "AdsSent"),
            format!("{}/{}", int(ad, "FramesIn"), int(ad, "FramesOut")),
            int(ad, "UptimeSecs"),
        );
    }
}

fn render_customers(out: &mut String, ads: &[ClassAd]) {
    wl!(out, "CUSTOMER AGENTS ({})", ads.len());
    if ads.is_empty() {
        return;
    }
    wl!(
        out,
        "  {:<20}{:>10}{:>8}{:>9}{:>8}{:>8}{:>12}{:>8}",
        "USER",
        "SUBMITTED",
        "IDLE",
        "CLAIMED",
        "FAILED",
        "ADS",
        "FRAMES(I/O)",
        "UP"
    );
    for ad in ads {
        wl!(
            out,
            "  {:<20}{:>10}{:>8}{:>9}{:>8}{:>8}{:>12}{:>7}s",
            ad.get_string("User")
                .or_else(|| ad.get_string("Name"))
                .unwrap_or("?"),
            int(ad, "JobsSubmitted"),
            int(ad, "JobsIdle"),
            int(ad, "JobsClaimed"),
            int(ad, "JobsFailed"),
            int(ad, "AdsSent"),
            format!("{}/{}", int(ad, "FramesIn"), int(ad, "FramesOut")),
            int(ad, "UptimeSecs"),
        );
    }
}

/// Build one complete frame as a string — no terminal control codes, so
/// it can be printed verbatim (`--once`, `--no-color`) or diffed against
/// the previous frame for a flicker-free live repaint.
fn render_frame(addr: &str, color: bool) -> String {
    let mm = stats_ads(addr, schema::MATCHMAKER_STATS);
    let ras = stats_ads(addr, schema::RESOURCE_AGENT_STATS);
    let cas = stats_ads(addr, schema::CUSTOMER_AGENT_STATS);
    let (bold, reset) = if color {
        ("\x1b[1m", "\x1b[0m")
    } else {
        ("", "")
    };
    let mut out = String::new();
    wl!(out, "{bold}pool_top — matchmaker at {addr}{reset}\n");
    render_matchmaker(&mut out, &mm, color);
    wl!(out);
    render_resources(&mut out, &ras);
    wl!(out);
    render_customers(&mut out, &cas);
    out
}

/// Flicker-free terminal painter: instead of `\x1b[2J` (clear + repaint,
/// which blanks the screen every tick), diff the new frame against the
/// previous one and rewrite only the lines that changed, addressing each
/// by row and clearing to end-of-line.
struct Screen {
    prev: Vec<String>,
}

impl Screen {
    fn new() -> Screen {
        Screen { prev: Vec::new() }
    }

    fn draw(&mut self, frame: &str) {
        let lines: Vec<String> = frame.lines().map(str::to_string).collect();
        let mut out = String::new();
        if self.prev.is_empty() {
            out.push_str("\x1b[2J"); // first frame: start from a clean screen
        }
        for (i, line) in lines.iter().enumerate() {
            if self.prev.get(i) != Some(line) {
                w!(out, "\x1b[{};1H\x1b[K{line}", i + 1);
            }
        }
        // A shorter frame leaves stale tails behind: blank them.
        for i in lines.len()..self.prev.len() {
            w!(out, "\x1b[{};1H\x1b[K", i + 1);
        }
        w!(out, "\x1b[{};1H", lines.len() + 1); // park below the frame
        print!("{out}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        self.prev = lines;
    }
}

fn demo_pool() -> condor_pool::PoolHandle {
    let machine = |mips: i64| {
        classad::parse_classad(&format!(
            r#"[ Type = "Machine"; Mips = {mips};
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap()
    };
    let job = || {
        classad::parse_classad(
            r#"[ Type = "Job"; Constraint = other.Type == "Machine";
                 Rank = other.Mips ]"#,
        )
        .unwrap()
    };
    PoolBuilder::new()
        .machine("demo-m0", machine(100))
        .machine("demo-m1", machine(400))
        .user(
            "demo",
            vec![("demo-0".into(), job()), ("demo-1".into(), job())],
        )
        .spawn()
        .expect("demo pool failed to start")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!(
                    "usage: pool_top [--connect host:port] [--interval secs] [--once] [--no-color]"
                );
                std::process::exit(2);
            })
        })
    };
    let once = args.iter().any(|a| a == "--once");
    let color = !args.iter().any(|a| a == "--no-color");
    let interval = flag_value("--interval")
        .map(|s| s.parse::<f64>().expect("--interval takes seconds"))
        .unwrap_or(2.0);

    // With no --connect, spawn a demo pool in-process and watch it.
    let (addr, _demo) = match flag_value("--connect") {
        Some(addr) => (addr, None),
        None => {
            let pool = demo_pool();
            let addr = pool.daemon().addr().to_string();
            println!("no --connect given: spawned a demo pool at {addr}");
            std::thread::sleep(Duration::from_millis(300));
            (addr, Some(pool))
        }
    };

    if once {
        print!("{}", render_frame(&addr, color));
        return;
    }
    if !color {
        // Append-only log mode: full frames, no cursor control — exactly
        // what CI capture and `tee` want.
        loop {
            print!("{}", render_frame(&addr, false));
            println!("\n--- (next frame in {interval}s — Ctrl-C to quit)");
            std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
        }
    }
    let mut screen = Screen::new();
    loop {
        let mut frame = render_frame(&addr, color);
        wl!(frame, "\n(refreshing every {interval}s — Ctrl-C to quit)");
        screen.draw(&frame);
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
    }
}
