//! Run an experiment described by a `.classad` configuration file —
//! configuration is classads too.
//!
//! Usage:
//!
//! ```console
//! cargo run --release --example scenario_file [path/to/scenario.classad]
//! ```
//!
//! Without an argument, runs `examples/scenarios/overnight.classad`.

use condor_sim::{scenario_from_str, scenario_to_ad};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/scenarios/overnight.classad".to_string());
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("scenario_file: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let scenario = scenario_from_str(&src).unwrap_or_else(|e| {
        eprintln!("scenario_file: {e}");
        std::process::exit(2);
    });

    println!("loaded {path}; effective configuration:\n");
    println!("{}\n", scenario_to_ad(&scenario).pretty());

    let (summary, sim) = scenario.run();
    println!("==== results ====");
    println!(
        "virtual time      : {:.1} h",
        sim.now() as f64 / 3_600_000.0
    );
    println!(
        "jobs completed    : {}/{}",
        summary.jobs_completed, summary.jobs_submitted
    );
    println!(
        "throughput        : {:.1} jobs/hour",
        summary.throughput_per_hour
    );
    println!(
        "mean wait         : {:.1} min",
        summary.mean_wait_ms / 60_000.0
    );
    println!(
        "mean turnaround   : {:.1} min",
        summary.mean_turnaround_ms / 60_000.0
    );
    println!(
        "goodput fraction  : {:.1} %",
        summary.goodput_fraction * 100.0
    );
    println!("owner vacates     : {}", sim.metrics().vacated_by_owner);
}
