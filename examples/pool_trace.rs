//! `pool_trace` — assemble end-to-end match traces from daemon journals.
//!
//! Every pool daemon journals its lifecycle events with span ids (see
//! `docs/observability.md` §Tracing). This tool replays one or more of
//! those journals — the matchmaker's plus any agents' — stitches records
//! that share a trace id into a span tree, and prints it as a timeline,
//! tolerating clock skew, torn trailing lines, and missing daemons.
//!
//! ```text
//! # One trace, end to end:
//! cargo run --example pool_trace -- \
//!     --journal mm.jsonl --journal ra.jsonl --journal ca.jsonl \
//!     --trace 7f3a9c2d11e08b54
//!
//! # Per-phase latency statistics over every trace in the journals:
//! cargo run --example pool_trace -- --journal mm.jsonl --summary
//!
//! # The N slowest traces, rendered:
//! cargo run --example pool_trace -- --journal mm.jsonl --slowest 3
//! ```
//!
//! With none of `--trace`, `--summary`, `--slowest`, lists every trace id
//! found with its span count and extent.

use condor_obs::trace::{format_id, parse_id};
use condor_obs::TraceAssembler;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: pool_trace --journal <path>... [--trace <hex-id> | --summary | --slowest <n>] \
         [--skew-ms <ms>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut journals: Vec<String> = Vec::new();
    let mut trace: Option<u64> = None;
    let mut summary = false;
    let mut slowest: Option<usize> = None;
    let mut skew_ms: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--journal" => {
                i += 1;
                journals.push(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                let raw = args.get(i).map(String::as_str).unwrap_or_else(|| usage());
                trace = Some(parse_id(raw).unwrap_or_else(|| {
                    eprintln!("--trace takes a hex id (16 digits max), got {raw:?}");
                    std::process::exit(2);
                }));
            }
            "--summary" => summary = true,
            "--slowest" => {
                i += 1;
                slowest = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--skew-ms" => {
                i += 1;
                skew_ms = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
        i += 1;
    }
    if journals.is_empty() {
        usage();
    }

    let mut asm = TraceAssembler::new();
    if let Some(ms) = skew_ms {
        asm = asm.with_skew_tolerance(std::time::Duration::from_millis(ms));
    }
    for path in &journals {
        // Label spans by journal file stem so the timeline names its
        // source daemon (mm.jsonl -> "mm").
        let label = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path);
        match asm.add_journal_file(label, path) {
            Ok(n) => eprintln!("{path}: {n} traced record(s)"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(id) = trace {
        match asm.assemble(id) {
            Some(tree) => print!("{}", tree.render()),
            None => {
                eprintln!("no spans for trace {}", format_id(id));
                std::process::exit(1);
            }
        }
        return;
    }

    if summary {
        let stats = asm.summary();
        let traces = asm.trace_ids().len();
        println!("{traces} trace(s) assembled");
        println!(
            "{:<22}{:>7}{:>9}{:>9}{:>9}{:>9}{:>9}",
            "PHASE", "COUNT", "MIN", "MEAN", "P50", "P99", "MAX"
        );
        for (phase, s) in &stats {
            println!(
                "{:<22}{:>7}{:>7}ms{:>7.1}ms{:>7}ms{:>7}ms{:>7}ms",
                phase, s.count, s.min_ms, s.mean_ms, s.p50_ms, s.p99_ms, s.max_ms
            );
        }
        if stats.is_empty() {
            println!("(no recognized protocol phases in these journals)");
        }
        return;
    }

    if let Some(n) = slowest {
        for tree in asm.slowest(n) {
            print!("{}", tree.render());
            println!();
        }
        return;
    }

    // Default: an index of what's here.
    let ids = asm.trace_ids();
    println!("{} trace(s)", ids.len());
    for id in ids {
        if let Some(tree) = asm.assemble(id) {
            println!(
                "  {}  {} span(s)  {} ms{}",
                format_id(id),
                tree.spans.len(),
                tree.total_ms(),
                if tree.skewed { "  (skewed)" } else { "" }
            );
        }
    }
}
