//! Gang matching / co-allocation (paper §3.1 and §5): a simulation job
//! that needs a fast workstation **and** a software license **and** a tape
//! drive, atomically, expressed with nested classads.
//!
//! Run with: `cargo run --example gang_coalloc`

use classad::{parse_classad, ClassAd, EvalPolicy};
use gangmatch::coalloc::{GangRequest, GangSolver};
use std::sync::Arc;

fn pool() -> Vec<Arc<ClassAd>> {
    let mut ads = Vec::new();
    for (i, mips) in [(0, 60), (1, 104), (2, 140)] {
        ads.push(
            parse_classad(&format!(
                r#"[ Name = "cpu{i}"; Type = "Machine"; Arch = "INTEL";
                     Mips = {mips}; Memory = 64;
                     Constraint = other.Type == "Job" || other.Type == "Gang";
                     Rank = 0 ]"#
            ))
            .unwrap(),
        );
    }
    ads.push(
        parse_classad(
            r#"[ Name = "matlab-lic-1"; Type = "License"; Product = "matlab";
                 Seats = 1;
                 Constraint = member(other.Owner, { "raman", "miron" });
                 Rank = 0 ]"#,
        )
        .unwrap(),
    );
    ads.push(
        parse_classad(
            r#"[ Name = "tape-a"; Type = "TapeDrive"; CapacityGB = 35;
                 Constraint = true; Rank = 0 ]"#,
        )
        .unwrap(),
    );
    ads.push(
        parse_classad(
            r#"[ Name = "tape-b"; Type = "TapeDrive"; CapacityGB = 120;
                 Constraint = true; Rank = 0 ]"#,
        )
        .unwrap(),
    );
    ads.into_iter().map(Arc::new).collect()
}

fn main() {
    let offers = pool();
    println!("pool:");
    let policy = EvalPolicy::default();
    for ad in &offers {
        println!(
            "  {:<14} {}",
            ad.eval_attr("Name", &policy),
            ad.eval_attr("Type", &policy)
        );
    }

    let gang_src = r#"[
        Name  = "sim-run-17";
        Type  = "Gang";
        Owner = "raman";
        Ports = {
            [ Label = "compute";
              Constraint = other.Type == "Machine" && other.Memory >= 32;
              Rank = other.Mips ],
            [ Label = "license";
              Constraint = other.Type == "License" && other.Product == "matlab" ],
            [ Label = "staging";
              Constraint = other.Type == "TapeDrive" && other.CapacityGB >= 100 ]
        };
    ]"#;
    let gang_ad = parse_classad(gang_src).unwrap();
    println!("\ngang request:\n{}\n", gang_ad.pretty());

    let gang = GangRequest::from_ad(&gang_ad).expect("well-formed gang");
    let solver = GangSolver::default();

    match solver.solve(&gang, &offers) {
        Some(m) => {
            println!("gang matched (total rank {:.1}):", m.total_rank);
            for (p, &offer) in m.assignment.iter().enumerate() {
                let label = gang.ports[p].get_string("Label").unwrap_or("?");
                println!(
                    "  port {p} ({label:<8}) -> {}",
                    offers[offer].eval_attr("Name", &policy)
                );
            }
        }
        None => println!("gang could not be co-allocated"),
    }

    // All-or-nothing: the same gang submitted by a user the license
    // refuses fails entirely, even though machines and tapes are free.
    let rival_src = gang_src.replace("raman", "rival");
    let rival = GangRequest::from_ad(&parse_classad(&rival_src).unwrap()).unwrap();
    println!(
        "\nsame gang from user 'rival' (license refuses them): {}",
        match solver.solve(&rival, &offers) {
            Some(_) => "matched (unexpected!)",
            None => "rejected atomically — no partial allocation",
        }
    );
}
