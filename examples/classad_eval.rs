//! A command-line ClassAd evaluator — the smallest useful tool on top of
//! the language crate.
//!
//! Usage:
//!
//! ```console
//! # Evaluate an expression against an ad:
//! cargo run --example classad_eval -- '[Memory = 64]' 'Memory * 2'
//!
//! # Evaluate in a match context (two ads + expression each side can see):
//! cargo run --example classad_eval -- '[Memory = 31]' '[Memory = 64]' \
//!     'other.Memory >= self.Memory'
//!
//! # No arguments: run the built-in demo script.
//! cargo run --example classad_eval
//! ```

use classad::flatten::flatten;
use classad::{parse_classad, parse_expr, EvalPolicy, Evaluator, Side};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let policy = EvalPolicy::default();

    match args.len() {
        2 => {
            let ad = parse_classad(&args[0]).unwrap_or_else(|e| die(&format!("bad ad: {e}")));
            let expr =
                parse_expr(&args[1]).unwrap_or_else(|e| die(&format!("bad expression: {e}")));
            println!("{}", ad.eval_expr(&expr, &policy));
        }
        3 => {
            let left =
                parse_classad(&args[0]).unwrap_or_else(|e| die(&format!("bad left ad: {e}")));
            let right =
                parse_classad(&args[1]).unwrap_or_else(|e| die(&format!("bad right ad: {e}")));
            let expr =
                parse_expr(&args[2]).unwrap_or_else(|e| die(&format!("bad expression: {e}")));
            let v = Evaluator::pair(&left, &right, &policy).eval(&expr, Side::Left);
            println!("{v}");
        }
        0 => demo(&policy),
        _ => die("expected: <ad> <expr>  |  <left-ad> <right-ad> <expr>  |  (no args)"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("classad_eval: {msg}");
    std::process::exit(2);
}

fn demo(policy: &EvalPolicy) {
    println!("classad_eval demo — expression semantics at a glance\n");
    let ad = parse_classad(
        r#"[
            Memory = 64; Mips = 104; Arch = "INTEL";
            Friends = { "tannenba", "wright" };
            Threshold = Memory / 2;
        ]"#,
    )
    .unwrap();
    println!("ad = {}\n", ad.pretty());

    let cases = [
        "Memory * 2",
        "Threshold",
        "Mips >= 100 && Arch == \"intel\"",
        "member(\"wright\", Friends)",
        "NoSuchAttr",
        "NoSuchAttr > 10",
        "NoSuchAttr is undefined",
        "1/0",
        "1/0 == 1/0",
        "(1/0) is error",
        "Mips >= 10 || Kflops >= 1000",
        "ifThenElse(Memory > 32, \"big\", \"small\")",
        "regexp(\"^INT\", Arch)",
        "substr(Arch, 0, 3)",
        "quantize(Memory + 1, 16)",
    ];
    for src in cases {
        let e = parse_expr(src).unwrap();
        println!("  {:45} => {}", src, ad.eval_expr(&e, policy));
    }

    println!("\npartial evaluation (flattening) against the ad:");
    for src in [
        "other.Memory >= Threshold && other.Arch == Arch",
        "member(other.Owner, Friends) ? other.Mips : 0",
    ] {
        let e = parse_expr(src).unwrap();
        println!("  {:45} => {}", src, flatten(&e, &ad, policy));
    }
}
