//! Pool federation (flocking), live on loopback: two pools with their
//! own matchmakers, a job that pool A cannot serve, and the grant that
//! brings it home from pool B — then pool A's matchmaker is killed to
//! show the cross-pool claim is a direct lease nobody can take away.
//!
//! Run with:
//!
//! ```text
//! cargo run --example pool_flock -- --demo
//! ```
//!
//! Flocking keeps the paper's architecture intact across pool
//! boundaries: when a negotiation cycle leaves an autocluster unmatched,
//! the origin matchmaker forwards one representative ad to its peers as
//! a `FlockQuery`; a peer with a free, mutually-acceptable machine
//! answers a `FlockOffer` carrying the provider's full advertisement —
//! delegated ticket included — and the origin relays it to the customer
//! as an ordinary `Notify`. The claim then runs agent-to-agent across
//! the pools; no job or machine state is replicated between matchmakers.
//!
//! Without `--demo` the example prints usage and exits (the demo kills a
//! daemon, so it asks to be invoked deliberately).

use classad::parse_classad;
use condor_flock::FlockConfig;
use condor_pool::{
    CustomerAgent, CustomerConfig, DaemonConfig, IoConfig, JobStatus, MatchmakerDaemon,
    ResourceAgent, ResourceConfig,
};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(60);

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn fast_io() -> IoConfig {
    IoConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
    }
}

fn main() {
    if !std::env::args().any(|a| a == "--demo") {
        println!("usage: cargo run --example pool_flock -- --demo");
        println!("(spawns two federated pools on loopback, flocks a job from pool A");
        println!(" to pool B, and kills A's matchmaker; see docs/protocol.md §14)");
        return;
    }

    // Pool B first: one matchmaker willing to answer flock queries (a
    // FlockConfig with no peers grants but never forwards) and one free
    // machine.
    let mut mm_b = MatchmakerDaemon::spawn(DaemonConfig {
        name: "mmB".into(),
        cycle_interval: Duration::from_millis(200),
        io: fast_io(),
        flock: Some(FlockConfig::default()),
        ..DaemonConfig::default()
    })
    .expect("spawn pool B matchmaker");
    let addr_b = mm_b.addr().to_string();
    let machine_b = ResourceAgent::spawn(
        ResourceConfig {
            name: "b-machine".into(),
            matchmaker: addr_b.clone(),
            heartbeat: Duration::from_millis(150),
            ticket_seed: 42,
            io: fast_io(),
            ..ResourceConfig::default()
        },
        parse_classad(
            r#"[ Type = "Machine"; Mips = 400;
                 Constraint = other.Type == "Job"; Rank = 0 ]"#,
        )
        .unwrap(),
    )
    .expect("spawn pool B resource agent");
    println!("pool B: matchmaker on {addr_b}, machine b-machine free");

    // Pool A: a matchmaker configured to flock to B, and a customer with
    // one job — but no machines at all, so every local cycle comes up
    // empty and the unmatched cluster is forwarded.
    let mut mm_a = MatchmakerDaemon::spawn(DaemonConfig {
        name: "mmA".into(),
        cycle_interval: Duration::from_millis(200),
        io: fast_io(),
        flock: Some(FlockConfig {
            peers: vec![vec![addr_b.clone()]],
            ..FlockConfig::default()
        }),
        ..DaemonConfig::default()
    })
    .expect("spawn pool A matchmaker");
    let addr_a = mm_a.addr().to_string();
    let customer = CustomerAgent::spawn(
        CustomerConfig {
            user: "alice".into(),
            matchmaker: addr_a.clone(),
            heartbeat: Duration::from_millis(150),
            io: fast_io(),
            ..CustomerConfig::default()
        },
        vec![(
            "job-0".into(),
            parse_classad(
                r#"[ Type = "Job"; Constraint = other.Type == "Machine";
                     Rank = other.Mips ]"#,
            )
            .unwrap(),
        )],
    )
    .expect("spawn pool A customer agent");
    println!("pool A: matchmaker on {addr_a} (peers: {addr_b}), job-0 idle, no machines");

    // The job flocks: A's cycle leaves it unmatched, the representative
    // crosses to B, B grants its machine, and the claim runs directly
    // from A's customer to B's resource agent.
    wait_until("the cross-pool placement", || {
        matches!(
            &customer.jobs()[0].1,
            JobStatus::Claimed { provider_name, .. } if provider_name == "b-machine"
        )
    });
    let a = mm_a.stats();
    let b = mm_b.stats();
    println!(
        "flocked: job-0 claimed b-machine across the pool boundary \
         (A sent {} queries, B granted {})",
        a.flock_queries_sent, b.flock_grants
    );
    for peer in mm_a.flock_peers() {
        println!(
            "peer table: {} {:?} sent={} grants={}",
            peer.name, peer.health, peer.sent, peer.grants
        );
    }

    // Kill the origin matchmaker. The claim is a direct agent-to-agent
    // lease — neither matchmaker holds it, so neither can lose it.
    println!("killing pool A's matchmaker ...");
    mm_a.shutdown();
    std::thread::sleep(Duration::from_millis(500));
    assert!(machine_b.is_claimed(), "the cross-pool claim must survive");
    assert!(matches!(
        &customer.jobs()[0].1,
        JobStatus::Claimed { provider_name, .. } if provider_name == "b-machine"
    ));
    println!("claims survived: job-0 still holds b-machine with mmA gone");

    customer.shutdown();
    machine_b.shutdown();
    mm_b.shutdown();
    println!("demo complete: one job flocked, zero claims lost");
}
