//! `pool_doctor` — a live alert console for the pool health monitor
//! (`crates/alarm`, `docs/observability.md` §7).
//!
//! Point it at a matchmaker running with `DaemonConfig::alarm`:
//!
//! ```text
//! cargo run --example pool_doctor -- --connect 127.0.0.1:9618
//! ```
//!
//! Every interval (default 2s, `--interval <secs>`) it sends one
//! `AlertQuery` frame (tag 17) and renders the monitor's full state —
//! firing alerts first, then the quiet rules with whatever conjunct is
//! currently holding each back. `--once` renders a single frame;
//! `--firing` restricts the query to `other.State == "firing"`. A daemon
//! without the alarm (or predating it) answers with a structured error,
//! surfaced here as a clean failure.
//!
//! `--demo` runs the whole lifecycle offline instead: a monitor loaded
//! with the default rule pack sweeps a scripted pool timeline — a flock
//! peer dies, utilization collapses, the peer comes back — and every
//! raise/clear is narrated as it happens. No sockets, deterministic
//! output; CI smokes this mode and greps for the transitions.

use classad::ClassAd;
use condor_alarm::{severity_rank, Monitor, MonitorConfig};
use condor_pool::wire::{self, IoConfig};
use matchmaker::protocol::Message;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pool_doctor [--connect host:port [--interval secs] [--once] [--firing]] [--demo]"
    );
    std::process::exit(2);
}

/// Fetch the alert state over the wire.
fn fetch(addr: &str, constraint: &str) -> Vec<ClassAd> {
    let msg = Message::AlertQuery {
        constraint: constraint.to_string(),
    };
    match wire::request_reply(addr, &msg, &IoConfig::default()) {
        Ok(Message::AlertReply { ads }) => ads,
        Ok(other) => {
            eprintln!("unexpected reply from {addr}: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("alerts at {addr} unavailable: {e}");
            eprintln!("(the daemon may predate alerting, or run without `alarm`)");
            std::process::exit(1);
        }
    }
}

/// Render one console frame: firing alerts first (the monitor sorts by
/// severity), then the quiet rules with their blocking conjuncts.
fn render(ads: &[ClassAd]) {
    let firing: Vec<_> = ads
        .iter()
        .filter(|a| a.get_string("State") == Some("firing"))
        .collect();
    if firing.is_empty() {
        println!(
            "pool healthy — no alerts firing ({} rule states tracked)",
            ads.len()
        );
    } else {
        println!("{} ALERT(S) FIRING", firing.len());
        for ad in &firing {
            println!(
                "  !! {:<9} {}   since {}",
                ad.get_string("Severity").unwrap_or("?"),
                ad.get_string("Name").unwrap_or("?"),
                ad.get_int("Since").unwrap_or(0),
            );
            if let Some(detail) = ad.get_string("Detail") {
                if !detail.is_empty() {
                    println!("       tripped: {detail}");
                }
            }
        }
    }
    for ad in ads {
        if ad.get_string("State") == Some("firing") {
            continue;
        }
        print!(
            "  ok {:<9} {}",
            ad.get_string("Severity").unwrap_or("?"),
            ad.get_string("Name").unwrap_or("?"),
        );
        match ad.get_string("Detail") {
            Some(d) if !d.is_empty() => println!("   (blocked by: {d})"),
            _ => println!(),
        }
    }
}

/// A presence ad as `condor_alarm::view_telemetry` would derive it.
fn presence(pool: &str, source: &str, tail: i64, count: i64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set_str("MyType", condor_alarm::PRESENCE_AD_TYPE);
    ad.set_str("Name", &format!("{pool}/{source}"));
    ad.set_str("Pool", pool);
    ad.set_str("Source", source);
    ad.set_int("AbsentTail", tail);
    ad.set_int("AbsentCount", count);
    ad
}

/// A pool-utilization history summary ad.
fn utilization(last: f64, max: f64) -> ClassAd {
    let mut ad = ClassAd::new();
    ad.set_str("MyType", condor_alarm::HISTORY_SUMMARY_AD_TYPE);
    ad.set_str("Name", "local/Utilization/pool");
    ad.set_str("Pool", "local");
    ad.set_str("Metric", "Utilization");
    ad.set_str("Source", "pool");
    ad.set_int("Points", 6);
    ad.set_real("Last", last);
    ad.set_real("Max", max);
    ad.set_real("Min", 0.0);
    ad.set_real("Mean", (last + max) / 2.0);
    ad.set_real("Rate", 0.0);
    ad.set_real("Integral", 0.0);
    ad.set_int("AbsentTail", 0);
    ad
}

/// `--demo`: sweep a scripted timeline through a real monitor and
/// narrate every transition. Deterministic, offline, grep-friendly.
fn demo() {
    let monitor =
        Monitor::with_default_pack(&[], MonitorConfig::default()).expect("default pack validates");
    println!(
        "pool_doctor --demo: {} rules loaded from the default pack\n",
        monitor.rule_count()
    );
    // Each step: (narration, telemetry the collector would derive).
    let timeline: Vec<(&str, Vec<ClassAd>)> = vec![
        (
            "pool healthy: peer poolB answering, utilization 0.8",
            vec![presence("poolB", "pool", 0, 0), utilization(0.8, 0.8)],
        ),
        (
            "peer poolB misses a sample (absent tombstone lands)",
            vec![presence("poolB", "pool", 1, 1), utilization(0.8, 0.8)],
        ),
        (
            "peer poolB still dark; local utilization drops to 0.05",
            vec![presence("poolB", "pool", 2, 2), utilization(0.05, 0.8)],
        ),
        (
            "second collapsed sample (UtilizationCollapse holds 2 intervals)",
            vec![presence("poolB", "pool", 3, 3), utilization(0.05, 0.8)],
        ),
        (
            "peer poolB answers again; utilization recovering",
            vec![presence("poolB", "pool", 0, 3), utilization(0.6, 0.8)],
        ),
        (
            "steady state restored",
            vec![presence("poolB", "pool", 0, 3), utilization(0.75, 0.8)],
        ),
    ];
    let mut unix = 946684800u64;
    for (step, (narration, telemetry)) in timeline.iter().enumerate() {
        println!("sweep {}: {narration}", step + 1);
        for t in monitor.evaluate(telemetry, unix) {
            if t.raised {
                println!(
                    "  >> ALERT RAISED  {}:{}@{} — tripped by: {}",
                    t.severity, t.rule, t.subject, t.detail
                );
            } else {
                println!("  >> ALERT CLEARED {}:{}@{}", t.severity, t.rule, t.subject);
            }
        }
        unix += 10;
    }
    let mut remaining = monitor.query("true").expect("true parses");
    remaining.sort_by_key(|ad| {
        std::cmp::Reverse(severity_rank(ad.get_string("Severity").unwrap_or("")))
    });
    println!("\nfinal state:");
    render(&remaining);
    println!(
        "\ntotals: {} raised, {} cleared, {} active",
        monitor.raised_total(),
        monitor.cleared_total(),
        monitor.active()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--demo") {
        demo();
        return;
    }
    let Some(addr) = args
        .iter()
        .position(|a| a == "--connect")
        .and_then(|i| args.get(i + 1).cloned())
    else {
        usage();
    };
    let constraint = if args.iter().any(|a| a == "--firing") {
        r#"other.State == "firing""#
    } else {
        "true"
    };
    let once = args.iter().any(|a| a == "--once");
    let interval = args
        .iter()
        .position(|a| a == "--interval")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse::<f64>().unwrap_or_else(|_| usage()))
        .unwrap_or(2.0);
    loop {
        println!("-- pool_doctor @ {addr} --");
        render(&fetch(&addr, constraint));
        if once {
            return;
        }
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
    }
}
