//! `match_analyze` — live match-failure attribution, end to end.
//!
//! The paper's §5 asks the operational question every pool eventually
//! hears: *"why doesn't my job run?"*. This demo answers it with the full
//! attribution stack:
//!
//! 1. a matchmaker daemon runs with journaling on (attribution is on by
//!    default for live daemons);
//! 2. machines and two deliberately unmatchable jobs advertise over TCP —
//!    one job demands more Mips than any machine has, the other references
//!    an attribute no machine defines;
//! 3. after a negotiation cycle, the `Analyze` wire query asks the daemon
//!    why each job is still idle, and the reply names the failing
//!    constraint clause (or undefined attribute) plus a full rejection
//!    breakdown;
//! 4. the matchmaker self-ad carries the same story as
//!    `RejectionTopReasons`, and the journal's `CycleRejections` events
//!    preserve it for post-mortem replay.
//!
//! Run with: `cargo run --example match_analyze`

use classad::{parse_classad, ClassAd};
use condor_obs::{replay_with_stats, schema, self_ad_constraint, Event, JournalConfig};
use condor_pool::wire::{self, IoConfig};
use condor_pool::{DaemonConfig, MatchmakerDaemon};
use matchmaker::protocol::{Advertisement, EntityKind, Message};
use matchmaker::ticket::Ticket;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(30);

fn advertise(addr: &str, kind: EntityKind, ad: ClassAd, contact: &str) {
    let adv = Advertisement {
        kind,
        ad,
        contact: contact.to_string(),
        ticket: Some(Ticket::from_raw(7)),
        expires_at: wire::unix_now() + 300,
    };
    wire::send_oneway(addr, &Message::Advertise(adv), &IoConfig::default()).unwrap();
}

/// Render a `MatchAnalysis` reply ad as a `condor_q -analyze` report.
fn print_analysis(name: &str, ad: &ClassAd) {
    println!("why is {name} idle?");
    let found = ad.get("Found").map(|e| e.to_string());
    if found.as_deref() != Some("true") {
        println!("  (request not advertised)\n");
        return;
    }
    println!(
        "  {} of {} offer(s) match right now",
        ad.get_int("MatchesNow").unwrap_or(0),
        ad.get_int("PoolSize").unwrap_or(0)
    );
    if let Some(c) = ad.get_string("RequestConstraint") {
        println!("  constraint:  {c}");
    }
    if let Some(r) = ad.get_string("TopReason") {
        println!("  top reason:  {r}");
    }
    if let Some(clause) = ad.get_string("FailingClause") {
        println!(
            "  failing clause ({} side): {clause}",
            ad.get_string("FailingSide").unwrap_or("?")
        );
    } else if let Some(attr) = ad.get_string("FailingAttr") {
        println!(
            "  undefined attribute ({} side): {attr}",
            ad.get_string("FailingSide").unwrap_or("?")
        );
    }
    if let Some(b) = ad.get_string("RejectBreakdown") {
        println!("  breakdown:   {b}");
    }
    if let (Some(cycle), Some(r)) = (ad.get_int("Cycle"), ad.get_string("LastCycleRejections")) {
        println!("  cycle {cycle} recorded: {r}");
    }
    println!();
}

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("match-analyze");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("matchmaker.jsonl");

    let mut daemon = MatchmakerDaemon::spawn(DaemonConfig {
        cycle_interval: Duration::from_millis(100),
        journal: Some(JournalConfig::new(&journal_path)),
        ..DaemonConfig::default()
    })
    .expect("daemon should bind loopback");
    let addr = daemon.addr().to_string();
    println!(
        "matchmaker daemon on {addr}, journaling to {}\n",
        journal_path.display()
    );

    for (name, mips) in [("slow", 50), ("medium", 100), ("fast", 150)] {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Mips = {mips}; State = "Unclaimed";
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap();
        advertise(&addr, EntityKind::Provider, ad, "127.0.0.1:9614");
    }
    let jobs = [
        (
            "greedy.0",
            r#"other.Type == "Machine" && other.Mips >= 10000"#,
        ),
        ("exotic.0", r#"other.Type == "Machine" && other.Gpus >= 4"#),
    ];
    for (name, constraint) in jobs {
        let ad = parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Job"; Owner = "demo";
                 Constraint = {constraint}; Rank = 0 ]"#
        ))
        .unwrap();
        advertise(&addr, EntityKind::Customer, ad, "127.0.0.1:9615");
    }

    // Wait until the daemon has seen all five ads and attributed at least
    // one negotiation cycle over them.
    let deadline = Instant::now() + WAIT;
    while daemon.service().ad_count() < 5 || daemon.stats().cycles < 2 {
        assert!(
            Instant::now() < deadline,
            "daemon never cycled over the ads"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The Analyze wire query: one frame out, one MatchAnalysis classad back.
    for (name, _) in jobs {
        let reply = wire::request_reply(
            &addr,
            &Message::Analyze {
                name: name.to_string(),
            },
            &IoConfig::default(),
        )
        .unwrap();
        let Message::AnalyzeReply { ad } = reply else {
            panic!("unexpected reply: {reply:?}");
        };
        print_analysis(name, &ad);
    }

    // The same attribution, one aggregation level up: the matchmaker's
    // self-ad summarises the last cycle's rejection tables.
    let reply = wire::request_reply(
        &addr,
        &Message::Query {
            constraint: self_ad_constraint(schema::MATCHMAKER_STATS),
            kind: None,
            projection: vec![],
        },
        &IoConfig::default(),
    )
    .unwrap();
    if let Message::QueryReply { ads } = reply {
        if let Some(top) = ads
            .first()
            .and_then(|ad| ad.get_string("RejectionTopReasons"))
        {
            println!("self-ad RejectionTopReasons: {top}\n");
        }
    }

    daemon.shutdown();

    // Post-mortem: the journal kept every cycle's rejection tables.
    let (records, stats) = replay_with_stats(&journal_path).unwrap();
    let cycle_rejections: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::CycleRejections {
                cycle, breakdown, ..
            } => Some((cycle, breakdown)),
            _ => None,
        })
        .collect();
    println!(
        "journal replay: {} record(s), {} unknown-kind, {} torn; {} CycleRejections event(s)",
        stats.records,
        stats.unknown_kind,
        stats.torn,
        cycle_rejections.len()
    );
    if let Some((cycle, breakdown)) = cycle_rejections.last() {
        println!("last attributed cycle {cycle}: {breakdown}");
    }
    assert!(
        !cycle_rejections.is_empty(),
        "attribution-enabled daemon should journal CycleRejections"
    );
    println!("done");
}
