//! A `condor_status`-style browsing tool built on one-way query matching
//! (paper §4: "One-way matching protocols are used to find all objects
//! matching a given pattern").
//!
//! Run with: `cargo run --example status_query` for a self-contained
//! in-memory pool, or point it at a live matchmaker daemon (see
//! `examples/live_pool.rs`) with:
//!
//! ```text
//! cargo run --example status_query -- --connect 127.0.0.1:9618
//! ```
//!
//! In `--connect` mode every query goes over TCP as a framed `Query`
//! message and the table is rendered from the `QueryReply` — the same
//! bytes a remote administration tool would exchange.
//!
//! `--stats` switches to browsing the pool's *self-ads* instead — the
//! `DaemonAd = true` telemetry classads every daemon publishes about
//! itself (see `docs/observability.md`). Works in both modes; combine
//! with `--connect` to inspect a live daemon's counters.
//!
//! `--peers` prints the federation view: the matchmaker's flock peer
//! table (`FlockPeerTable` in its self-ad) and both directions of flock
//! traffic. Combine with `--connect` to inspect a live federated pool;
//! without it a demo self-ad shows the format.
//!
//! `--tail <journal.jsonl>` follows a daemon's event journal instead,
//! pretty-printing each event with its trace/span ids as it is appended —
//! `tail -f` for the pool's causal history. `--from-start` replays the
//! whole file first; `--for <secs>` exits after a fixed watch window
//! (handy in scripts and CI).
//!
//! `--journal <journal.jsonl>` is the one-shot audit counterpart of
//! `--tail`: replay the whole journal (rotated generations included),
//! count records by kind, report replay health (torn lines, lines of an
//! unknown future kind), and locate the recovery position — the last
//! `Checkpoint` plus the tail a restarting or newly elected matchmaker
//! would replay (see `docs/protocol.md` §13).
//!
//! `--history <metric>` reads the pool-history subsystem instead: a
//! `HistoryQuery` frame (tag 15, a classad constraint over series
//! metadata) fetches the matching retained time series and prints each
//! tier's samples (`docs/observability.md` §6). Use a metric name like
//! `Utilization` or `MatchRate`, or `all` for every series; `--limit N`
//! caps samples per series. A daemon running without the view — or
//! predating it — rejects the tag with a structured error, which
//! surfaces here as a clean failure. Without `--connect` a demo store
//! shows the format.
//!
//! `--alerts [constraint]` reads the pool health monitor instead: an
//! `AlertQuery` frame (tag 17, a classad constraint over alert-state
//! ads) fetches the monitor's per-(rule, subject) state — firing and
//! quiet — and prints one row per alert (`docs/observability.md` §7).
//! The optional constraint defaults to `true`; try
//! `'other.State == "firing"'` or `'other.Severity == "critical"'`. A
//! daemon running without the alarm — or predating it — rejects the tag
//! with a structured error, which surfaces here as a clean failure.
//! Without `--connect` a demo monitor shows the format.
//!
//! `--analyze <job>` asks "why doesn't my job run?" — the paper §5
//! diagnosis question. Against a live daemon it sends the `Analyze` wire
//! message and renders the `MatchAnalysis` reply; locally it runs the same
//! analysis against the demo pool through an attribution-enabled
//! matchmaker. Either way the answer names the failing constraint clause
//! and breaks the pool down by rejection reason.

use classad::{ClassAd, EvalPolicy, MatchConventions, Value};
use condor_obs::trace::format_id;
use condor_obs::Record;
use condor_pool::wire::{self, IoConfig};
use matchmaker::prelude::*;
use matchmaker::protocol::{Message, Timestamp};
use std::io::{Read as _, Seek, SeekFrom};
use std::time::{Duration, Instant};

const COLUMNS: [&str; 7] = ["Name", "Arch", "OpSys", "Mips", "Memory", "State", "Owner"];

/// The demo pool: five machines, two runnable jobs, and one job whose
/// constraint nothing can satisfy (fodder for `--analyze`).
fn demo_ads() -> Vec<Advertisement> {
    let mut ads = Vec::new();
    let machines = [
        ("leonardo", "INTEL", "SOLARIS251", 104, 64, "Unclaimed"),
        ("raphael", "INTEL", "SOLARIS251", 120, 128, "Claimed"),
        ("donatello", "SPARC", "SOLARIS251", 80, 256, "Unclaimed"),
        ("michelangelo", "INTEL", "LINUX", 140, 64, "Owner"),
        ("splinter", "SPARC", "SOLARIS251", 60, 64, "Unclaimed"),
    ];
    for (name, arch, os, mips, mem, state) in machines {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Arch = "{arch}"; OpSys = "{os}";
                 Mips = {mips}; Memory = {mem}; State = "{state}";
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap();
        ads.push(Advertisement {
            kind: EntityKind::Provider,
            ad,
            contact: format!("{name}:9614"),
            ticket: None,
            expires_at: 1000,
        });
    }
    let jobs = [
        ("raman.0", "raman", 31, r#"other.Type == "Machine""#),
        ("miron.0", "miron", 64, r#"other.Type == "Machine""#),
        (
            "picky.0",
            "picky",
            64,
            r#"other.Type == "Machine" && other.Mips >= 10000"#,
        ),
    ];
    for (name, owner, mem, constraint) in jobs {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Job"; Owner = "{owner}"; Memory = {mem};
                 Constraint = {constraint}; Rank = 0 ]"#
        ))
        .unwrap();
        ads.push(Advertisement {
            kind: EntityKind::Customer,
            ad,
            contact: format!("{owner}-ca:1"),
            ticket: None,
            expires_at: 1000,
        });
    }
    ads
}

fn advertise_pool(store: &mut AdStore, proto: &AdvertisingProtocol) {
    for adv in demo_ads() {
        store.advertise(adv, 0, proto).unwrap();
    }
}

fn print_table(title: &str, constraint: &str, results: &[ClassAd]) {
    let policy = EvalPolicy::default();
    println!("$ condor_status -constraint '{constraint}'   # {title}");
    println!(
        "{:<14}{:<8}{:<12}{:>6}{:>8}  {:<10}{:<8}",
        "NAME", "ARCH", "OPSYS", "MIPS", "MEMORY", "STATE", "OWNER"
    );
    for ad in results {
        let s = |attr: &str| match ad.eval_attr(attr, &policy) {
            Value::Str(v) => v.to_string(),
            Value::Int(v) => v.to_string(),
            _ => String::new(),
        };
        println!(
            "{:<14}{:<8}{:<12}{:>6}{:>8}  {:<10}{:<8}",
            s("Name"),
            s("Arch"),
            s("OpSys"),
            s("Mips"),
            s("Memory"),
            s("State"),
            s("Owner"),
        );
    }
    println!("  ({} ad(s) matched)\n", results.len());
}

/// Run one query against the in-memory store.
fn query_local(store: &AdStore, constraint: &str, kind: Option<EntityKind>) -> Vec<ClassAd> {
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let mut q = Query::from_constraint(constraint).unwrap().select(&COLUMNS);
    q.kind = kind;
    let now: Timestamp = 0;
    q.run_projected(store, now, &policy, &conv)
}

/// Pretty-print daemon self-ads: identity header, then every attribute
/// sorted by name — the full counter set, not a fixed column list.
fn print_stats(my_type: &str, ads: &[ClassAd]) {
    println!(
        "$ condor_status -constraint '{}'",
        condor_obs::self_ad_constraint(my_type)
    );
    if ads.is_empty() {
        println!("  (no {my_type} self-ads published)\n");
        return;
    }
    for ad in ads {
        println!(
            "  {} — {} (up {}s)",
            ad.get_string("Name").unwrap_or("?"),
            my_type,
            ad.get_int("UptimeSecs").unwrap_or(0)
        );
        let mut attrs: Vec<_> = ad
            .iter()
            .map(|(n, e)| (n.as_str().to_owned(), e.to_string()))
            .collect();
        attrs.sort();
        for (name, expr) in attrs {
            println!("    {name:<28}= {expr}");
        }
    }
    println!();
}

/// In local mode there is no live daemon, so fabricate a matchmaker
/// self-ad the same way a real daemon does: a metrics registry snapshot
/// rendered through `condor_obs::self_ad` and advertised into the store.
fn advertise_demo_self_ad(store: &mut AdStore, proto: &AdvertisingProtocol) {
    use condor_obs::schema;
    let registry = condor_obs::Registry::new();
    registry.counter(schema::CYCLES).add(12);
    registry.counter(schema::MATCHES).add(7);
    registry.counter(schema::REQUESTS_CONSIDERED).add(9);
    registry.counter(schema::CONNECTIONS_ACCEPTED).add(31);
    registry.gauge(schema::ACTIVE_CONNECTIONS).set(1);
    let ad = condor_obs::self_ad(
        "matchmaker#stats",
        schema::MATCHMAKER_STATS,
        42,
        &registry.snapshot(),
    );
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Provider,
                ad,
                contact: "matchmaker:9618".into(),
                ticket: None,
                expires_at: 1000,
            },
            0,
            proto,
        )
        .unwrap();
}

/// `--peers`: render the federation view from a matchmaker self-ad —
/// the aggregate flock counters plus the per-peer table the daemon
/// publishes as `FlockPeerTable` (see `docs/protocol.md` §14).
fn print_peers(ad: &ClassAd) {
    let int = |attr: &str| ad.get_int(attr).unwrap_or(0);
    println!(
        "matchmaker {} — federation (flocking)",
        ad.get_string("Name").unwrap_or("?")
    );
    println!(
        "  peers: {} up / {} down / {} pre-flock",
        int("FlockPeersUp"),
        int("FlockPeersDown"),
        int("FlockPeersNonFlocking"),
    );
    println!(
        "  queries: {} sent / {} received   grants {}   rejects {}",
        int("FlockQueriesSent"),
        int("FlockQueriesReceived"),
        int("FlockGrants"),
        int("FlockRejects"),
    );
    println!(
        "  jobs flocked {}   remote matches {}",
        int("JobsFlocked"),
        int("FlockMatches"),
    );
    match ad.get_string("FlockPeerTable") {
        Some(table) if !table.is_empty() => {
            println!("  peer table:");
            for row in table.split(" | ") {
                println!("    {row}");
            }
        }
        _ => println!("  peer table: (no flock peers configured)"),
    }
}

/// The demo self-ad for `--peers` without `--connect`: the counters and
/// peer table a small federated pool would publish.
fn demo_flock_self_ad() -> ClassAd {
    use condor_obs::schema;
    let registry = condor_obs::Registry::new();
    registry.counter(schema::FLOCK_QUERIES_SENT).add(3);
    registry.counter(schema::FLOCK_MATCHES).add(1);
    registry.counter(schema::JOBS_FLOCKED).add(1);
    registry.gauge(schema::FLOCK_PEERS_UP).set(1);
    registry.gauge(schema::FLOCK_PEERS_NON_FLOCKING).set(1);
    let mut ad = condor_obs::self_ad(
        "matchmaker#stats",
        schema::MATCHMAKER_STATS,
        42,
        &registry.snapshot(),
    );
    ad.set_str(
        "FlockPeerTable",
        "poolB:9614 up sent=3 grants=1 | poolC:9614 non-flocking sent=1 grants=0",
    );
    ad
}

/// Run one query against a live daemon over TCP.
fn query_remote(addr: &str, constraint: &str, kind: Option<EntityKind>) -> Vec<ClassAd> {
    let msg = Message::Query {
        constraint: constraint.to_string(),
        kind,
        projection: COLUMNS.iter().map(|s| s.to_string()).collect(),
    };
    match wire::request_reply(addr, &msg, &IoConfig::default()) {
        Ok(Message::QueryReply { ads }) => ads,
        Ok(other) => {
            eprintln!("unexpected reply from {addr}: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("query to {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Pretty-print a `MatchAnalysis` classad the way `condor_q -analyze`
/// would: verdict first, then the blamed clause, then the full breakdown.
fn print_analysis(name: &str, ad: &ClassAd) {
    println!("$ condor_q -analyze {name}");
    let found = ad.get("Found").map(|e| e.to_string());
    if found.as_deref() != Some("true") {
        println!("  no request named {name:?} is advertised\n");
        return;
    }
    let matches_now = ad.get_int("MatchesNow").unwrap_or(0);
    let pool = ad.get_int("PoolSize").unwrap_or(0);
    println!("  {matches_now} of {pool} offer(s) match this request right now");
    if let Some(c) = ad.get_string("RequestConstraint") {
        println!("  constraint: {c}");
    }
    if let Some(r) = ad.get_string("TopReason") {
        println!("  top reason: {r}");
    }
    match (ad.get_string("FailingClause"), ad.get_string("FailingAttr")) {
        (Some(clause), _) => {
            let side = ad.get_string("FailingSide").unwrap_or("?");
            println!("  failing clause ({side} side): {clause}");
        }
        (None, Some(attr)) => {
            let side = ad.get_string("FailingSide").unwrap_or("?");
            println!("  undefined attribute ({side} side): {attr}");
        }
        _ => {}
    }
    if let Some(b) = ad.get_string("RejectBreakdown") {
        println!("  breakdown: {b}");
    }
    if let Some(cycle) = ad.get_int("Cycle") {
        println!("  last negotiation cycle: {cycle}");
        if let Some(r) = ad.get_string("LastCycleRejections") {
            println!("  last cycle said: {r}");
        }
    }
    println!();
}

/// `--history`: fetch and render retained time series. Live mode sends
/// the `HistoryQuery` wire message; local mode fabricates a small store
/// so the output format is inspectable offline.
fn history_mode(connect: Option<&str>, metric: &str, limit: u32) {
    let constraint = if metric == "all" {
        "true".to_string()
    } else {
        format!(r#"other.Metric == "{metric}""#)
    };
    let ads = match connect {
        Some(addr) => {
            let msg = Message::HistoryQuery {
                constraint: constraint.clone(),
                limit,
            };
            match wire::request_reply(addr, &msg, &IoConfig::default()) {
                Ok(Message::HistoryReply { ads }) => ads,
                Ok(other) => {
                    eprintln!("unexpected reply from {addr}: {other:?}");
                    std::process::exit(1);
                }
                // A pre-view daemon rejects tag 15 itself ("unknown tag
                // 15"); a view-less daemon rejects the message at the
                // service. Either way: a clean refusal, not a hang.
                Err(e) => {
                    eprintln!("history at {addr} unavailable: {e}");
                    eprintln!("(the daemon may predate pool history, or run without `view`)");
                    std::process::exit(1);
                }
            }
        }
        None => demo_history_ads(&constraint, limit),
    };
    println!("$ condor_view -constraint '{constraint}'");
    if ads.is_empty() {
        println!("  (no series matched)");
        return;
    }
    for ad in &ads {
        print_series(ad);
    }
}

/// Render one `HistorySeries` ad: identity line, then `time  value` rows
/// (gauges add min/max so a downsampled bucket shows its spread).
fn print_series(ad: &ClassAd) {
    let int = |attr: &str| ad.get_int(attr).unwrap_or(0);
    println!(
        "  {} — {} ({}s buckets, tier {}, {} point(s){})",
        ad.get_string("Name").unwrap_or("?"),
        ad.get_string("Kind").unwrap_or("?"),
        int("IntervalSecs"),
        int("Tier"),
        int("Points"),
        match ad.get("Integral").map(|e| e.to_string()) {
            Some(i) => format!(", integral {i}"),
            None => String::new(),
        }
    );
    let split = |attr: &str| -> Vec<String> {
        ad.get_string(attr)
            .map(|s| s.split(',').map(str::to_string).collect())
            .unwrap_or_default()
    };
    let times = split("Times");
    let data = split("Data");
    let mins = split("DataMin");
    let maxs = split("DataMax");
    let absent = split("Absent");
    let gauge = ad.get_string("Kind") == Some("Gauge");
    for (i, t) in times.iter().enumerate() {
        let v = data.get(i).map(String::as_str).unwrap_or("?");
        let gone = absent.get(i).is_some_and(|a| a == "1");
        if gauge {
            println!(
                "    {t}  {v:>12}  (min {} max {}){}",
                mins.get(i).map(String::as_str).unwrap_or("?"),
                maxs.get(i).map(String::as_str).unwrap_or("?"),
                if gone { "  [absent]" } else { "" }
            );
        } else {
            println!("    {t}  {v:>12}/s{}", if gone { "  [absent]" } else { "" });
        }
    }
}

/// The `--history` demo without a daemon: a minute of a small pool's
/// life, downsampled by a real store.
fn demo_history_ads(constraint: &str, limit: u32) -> Vec<ClassAd> {
    use condor_view::{metric, HistoryConfig, HistoryStore, LOCAL_POOL, POOL_SOURCE};
    let mut store = HistoryStore::new(HistoryConfig::single(10, 32));
    let mut matches = 0.0;
    for step in 0..12u64 {
        let unix = 946684800 + step * 5;
        let claimed = (step as f64 / 12.0).min(1.0);
        store.record_gauge(LOCAL_POOL, metric::UTILIZATION, POOL_SOURCE, unix, claimed);
        matches += if step % 3 == 0 { 2.0 } else { 0.0 };
        store.record_counter(LOCAL_POOL, metric::MATCH_RATE, POOL_SOURCE, unix, matches);
    }
    // One machine left the pool mid-window: an absent tombstone.
    store.record_gauge(LOCAL_POOL, metric::CLAIMED, "ra-splinter", 946684800, 1.0);
    store.record_absent(LOCAL_POOL, "ra-splinter", 946684830);
    store.query(constraint, limit).unwrap_or_else(|e| {
        eprintln!("bad constraint: {e}");
        std::process::exit(2);
    })
}

/// `--alerts`: fetch and render the pool health monitor's alert state.
/// Live mode sends the `AlertQuery` wire message; local mode runs a demo
/// monitor over a synthetic dead flock peer so the output format is
/// inspectable offline.
fn alerts_mode(connect: Option<&str>, constraint: &str) {
    let ads = match connect {
        Some(addr) => {
            let msg = Message::AlertQuery {
                constraint: constraint.to_string(),
            };
            match wire::request_reply(addr, &msg, &IoConfig::default()) {
                Ok(Message::AlertReply { ads }) => ads,
                Ok(other) => {
                    eprintln!("unexpected reply from {addr}: {other:?}");
                    std::process::exit(1);
                }
                // A pre-alarm daemon rejects tag 17 itself ("unknown tag
                // 17"); an alarm-less daemon rejects the message at the
                // service. Either way: a clean refusal, not a hang.
                Err(e) => {
                    eprintln!("alerts at {addr} unavailable: {e}");
                    eprintln!("(the daemon may predate alerting, or run without `alarm`)");
                    std::process::exit(1);
                }
            }
        }
        None => demo_alert_ads(constraint),
    };
    println!("$ condor_alerts -constraint '{constraint}'");
    if ads.is_empty() {
        println!("  (no alerts matched)");
        return;
    }
    for ad in &ads {
        print_alert(ad);
    }
}

/// Render one `AlertState` ad as a grep-friendly row: state, severity,
/// rule@subject, then the attribution (the conjunct that tripped while
/// firing, or the one currently holding the rule back).
fn print_alert(ad: &ClassAd) {
    let firing = ad.get_string("State") == Some("firing");
    println!(
        "  {:<7} {:<9} {}",
        if firing { "FIRING" } else { "ok" },
        ad.get_string("Severity").unwrap_or("?"),
        ad.get_string("Name").unwrap_or("?"),
    );
    if let Some(detail) = ad.get_string("Detail") {
        if !detail.is_empty() {
            println!(
                "          {} {detail}",
                if firing { "tripped:" } else { "blocked:" }
            );
        }
    }
    if firing {
        println!("          since {}", ad.get_int("Since").unwrap_or(0));
    }
}

/// The `--alerts` demo without a daemon: a monitor running the default
/// rule pack over a pool whose flock peer just stopped answering.
fn demo_alert_ads(constraint: &str) -> Vec<ClassAd> {
    let monitor =
        condor_alarm::Monitor::with_default_pack(&[], condor_alarm::MonitorConfig::default())
            .expect("default pack validates");
    let mut peer = ClassAd::new();
    peer.set_str("MyType", condor_alarm::PRESENCE_AD_TYPE);
    peer.set_str("Name", "poolB/pool");
    peer.set_str("Pool", "poolB");
    peer.set_str("Source", "pool");
    peer.set_int("AbsentTail", 3);
    peer.set_int("AbsentCount", 3);
    monitor.evaluate(&[peer], 946684800);
    monitor.query(constraint).unwrap_or_else(|e| {
        eprintln!("bad constraint: {e}");
        std::process::exit(2);
    })
}

/// `--analyze` against a live daemon: one `Analyze` frame, one
/// `AnalyzeReply`. A pre-analysis daemon replies with a structured error
/// (`unknown tag 9`), which surfaces here as a remote failure.
fn analyze_remote(addr: &str, name: &str) -> ClassAd {
    let msg = Message::Analyze {
        name: name.to_string(),
    };
    match wire::request_reply(addr, &msg, &IoConfig::default()) {
        Ok(Message::AnalyzeReply { ad }) => ad,
        Ok(other) => {
            eprintln!("unexpected reply from {addr}: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("analyze at {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `--analyze` without a daemon: stand up an attribution-enabled
/// matchmaker over the demo pool, run one negotiation cycle so the
/// per-cycle rejection tables fill, then ask it the same question.
fn analyze_local(name: &str) -> ClassAd {
    let mm = Matchmaker::new(NegotiatorConfig {
        attribution: true,
        ..NegotiatorConfig::default()
    });
    for adv in demo_ads() {
        mm.advertise(adv, 0).unwrap();
    }
    mm.negotiate(0);
    mm.analyze(name, 0)
}

/// Pretty-print one journal record: sequence, timestamp, trace ids when
/// present, then the event. One line per record, grep-friendly.
fn print_record(r: &Record) {
    let ids = match &r.span {
        Some(s) => format!(
            "trace={} span={} parent={}",
            format_id(s.trace_id),
            format_id(s.span_id),
            format_id(s.parent_span_id)
        ),
        None => "untraced".to_string(),
    };
    println!(
        "seq {:>6}  {}.{:03}  {:<58}  {:?}",
        r.seq,
        r.unix_ms / 1000,
        r.unix_ms % 1000,
        ids,
        r.event
    );
}

/// Follow a journal file like `tail -f`, decoding each appended line.
/// Torn trailing lines are retried on the next poll; a shrinking file
/// (rotation) resets the read position to the new start.
/// `--journal`: replay the whole journal once and print an audit digest —
/// counts by event kind, replay health, and the recovery position a
/// restarting (or newly elected) matchmaker would resume from.
fn summarize_journal(path: &str) {
    use condor_obs::journal::{replay_with_stats, Event};

    let (records, stats) = match replay_with_stats(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot replay {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("journal {path}");
    println!(
        "  records decoded: {}  (torn lines skipped: {}, unknown kinds skipped: {})",
        stats.records, stats.torn, stats.unknown_kind
    );
    if let (Some(first), Some(last)) = (records.first(), records.last()) {
        println!(
            "  span: seq {}..{}, {} seconds of pool history",
            first.seq,
            last.seq,
            last.unix.saturating_sub(first.unix)
        );
    }

    let mut by_kind = std::collections::BTreeMap::<&'static str, u64>::new();
    for r in &records {
        *by_kind.entry(r.event.kind()).or_default() += 1;
    }
    for (kind, n) in &by_kind {
        println!("  {kind:<17} {n}");
    }

    // The recovery position: what `condor-ha` would rebuild on restart.
    match records
        .iter()
        .enumerate()
        .rev()
        .find(|(_, r)| matches!(r.event, Event::Checkpoint { .. }))
    {
        Some((i, r)) => {
            if let Event::Checkpoint {
                epoch,
                ads,
                matches,
                ..
            } = &r.event
            {
                println!(
                    "  last checkpoint: seq {} (epoch {epoch}, {ads} ads, {matches} open matches)",
                    r.seq
                );
                println!(
                    "  recovery = that snapshot + a {}-record tail",
                    records.len() - i - 1
                );
            }
        }
        None => println!("  no checkpoint: a restart would rebuild from re-advertisement alone"),
    }
}

fn tail_journal(path: &str, from_start: bool, watch_for: Option<Duration>) {
    let mut file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut pos = if from_start {
        0
    } else {
        file.seek(SeekFrom::End(0)).unwrap_or(0)
    };
    let deadline = watch_for.map(|d| Instant::now() + d);
    let mut pending = String::new();
    eprintln!("tailing {path} (Ctrl-C to quit)");
    loop {
        // Rotation/truncation: the file restarted beneath us.
        if let Ok(meta) = std::fs::metadata(path) {
            if meta.len() < pos {
                pos = 0;
                pending.clear();
                // The path may now be a fresh inode; reopen.
                if let Ok(f) = std::fs::File::open(path) {
                    file = f;
                }
            }
        }
        let _ = file.seek(SeekFrom::Start(pos));
        let mut chunk = String::new();
        if file.read_to_string(&mut chunk).is_ok() && !chunk.is_empty() {
            pos += chunk.len() as u64;
            pending.push_str(&chunk);
            // Only complete lines decode; the remainder is a torn write
            // still in flight and stays buffered for the next poll.
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                let line = line.trim_end();
                if line.is_empty() {
                    continue;
                }
                match Record::decode(line) {
                    Some(r) => print_record(&r),
                    None => println!("(undecodable line: {line})"),
                }
            }
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn main() {
    // `--connect host:port` switches from the built-in demo pool to a live
    // matchmaker daemon.
    let args: Vec<String> = std::env::args().collect();
    let connect = args.iter().position(|a| a == "--connect").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!(
                "usage: status_query [--connect host:port] [--stats] [--peers] \
                 [--history metric [--limit n]] [--alerts [constraint]] \
                 [--analyze request-name] \
                 [--tail journal.jsonl [--from-start] [--for secs]] \
                 [--journal journal.jsonl]"
            );
            std::process::exit(2);
        })
    });
    let stats = args.iter().any(|a| a == "--stats");
    if args.iter().any(|a| a == "--peers") {
        let ad = match &connect {
            Some(addr) => {
                let msg = Message::Query {
                    constraint: condor_obs::self_ad_constraint(
                        condor_obs::schema::MATCHMAKER_STATS,
                    ),
                    kind: None,
                    projection: vec![],
                };
                match wire::request_reply(addr, &msg, &IoConfig::default()) {
                    Ok(Message::QueryReply { ads }) if !ads.is_empty() => ads[0].clone(),
                    Ok(_) => {
                        eprintln!("no matchmaker self-ad published yet at {addr}");
                        std::process::exit(1);
                    }
                    Err(e) => {
                        eprintln!("query to {addr} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            None => demo_flock_self_ad(),
        };
        print_peers(&ad);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--analyze") {
        let Some(name) = args.get(i + 1) else {
            eprintln!("--analyze takes a request name");
            std::process::exit(2);
        };
        let ad = match &connect {
            Some(addr) => analyze_remote(addr, name),
            None => analyze_local(name),
        };
        print_analysis(name, &ad);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--history") {
        let Some(metric) = args.get(i + 1) else {
            eprintln!("--history takes a metric name (or `all`)");
            std::process::exit(2);
        };
        let limit = args
            .iter()
            .position(|a| a == "--limit")
            .and_then(|i| args.get(i + 1))
            .map(|s| {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("--limit takes a sample count");
                    std::process::exit(2);
                })
            })
            .unwrap_or(0);
        history_mode(connect.as_deref(), metric, limit);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--alerts") {
        let constraint = args
            .get(i + 1)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("true");
        alerts_mode(connect.as_deref(), constraint);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--journal") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--journal takes a journal path");
            std::process::exit(2);
        };
        summarize_journal(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--tail") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--tail takes a journal path");
            std::process::exit(2);
        };
        let from_start = args.iter().any(|a| a == "--from-start");
        let watch_for = args
            .iter()
            .position(|a| a == "--for")
            .and_then(|i| args.get(i + 1))
            .map(|s| {
                Duration::from_secs_f64(s.parse().unwrap_or_else(|_| {
                    eprintln!("--for takes seconds");
                    std::process::exit(2);
                }))
            });
        tail_journal(path, from_start, watch_for);
        return;
    }

    let local_store = if connect.is_none() {
        let proto = AdvertisingProtocol::default();
        let mut store = AdStore::new();
        advertise_pool(&mut store, &proto);
        if stats {
            advertise_demo_self_ad(&mut store, &proto);
        }
        Some(store)
    } else {
        None
    };

    if stats {
        // Browse telemetry instead of machines: one query per self-ad type,
        // unprojected so every counter shows.
        let policy = EvalPolicy::default();
        let conv = MatchConventions::default();
        for my_type in [
            condor_obs::schema::MATCHMAKER_STATS,
            condor_obs::schema::RESOURCE_AGENT_STATS,
            condor_obs::schema::CUSTOMER_AGENT_STATS,
        ] {
            let constraint = condor_obs::self_ad_constraint(my_type);
            let ads: Vec<ClassAd> = match (&connect, &local_store) {
                (Some(addr), _) => {
                    let msg = Message::Query {
                        constraint,
                        kind: None,
                        projection: vec![],
                    };
                    match wire::request_reply(addr, &msg, &IoConfig::default()) {
                        Ok(Message::QueryReply { ads }) => ads,
                        Ok(other) => {
                            eprintln!("unexpected reply from {addr}: {other:?}");
                            std::process::exit(1);
                        }
                        Err(e) => {
                            eprintln!("query to {addr} failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                (None, Some(store)) => Query::from_constraint(&constraint)
                    .unwrap()
                    .run(store, 0, &policy, &conv)
                    .into_iter()
                    .map(|s| (*s.ad).clone())
                    .collect(),
                (None, None) => unreachable!(),
            };
            print_stats(my_type, &ads);
        }
        return;
    }

    let run = |title: &str, constraint: &str, kind: Option<EntityKind>| {
        let results = match (&connect, &local_store) {
            (Some(addr), _) => query_remote(addr, constraint, kind),
            (None, Some(store)) => query_local(store, constraint, kind),
            (None, None) => unreachable!(),
        };
        print_table(title, constraint, &results);
    };

    if let Some(addr) = &connect {
        println!("querying live matchmaker at {addr} over TCP\n");
    }
    run("everything", "true", None);
    run(
        "available fast INTEL machines",
        r#"other.Type == "Machine" && other.Arch == "INTEL" && other.State == "Unclaimed" && other.Mips >= 100"#,
        Some(EntityKind::Provider),
    );
    run(
        "big-memory machines (any state)",
        r#"other.Type == "Machine" && other.Memory >= 128"#,
        Some(EntityKind::Provider),
    );
    run(
        "the job queue",
        r#"other.Type == "Job""#,
        Some(EntityKind::Customer),
    );
    run(
        "ads with no State attribute (three-valued logic at work)",
        "other.State is undefined",
        None,
    );
}
