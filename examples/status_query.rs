//! A `condor_status`-style browsing tool built on one-way query matching
//! (paper §4: "One-way matching protocols are used to find all objects
//! matching a given pattern").
//!
//! Run with: `cargo run --example status_query`

use classad::{EvalPolicy, MatchConventions, Value};
use matchmaker::prelude::*;
use matchmaker::protocol::Timestamp;

fn advertise_pool(store: &mut AdStore, proto: &AdvertisingProtocol) {
    let machines = [
        ("leonardo", "INTEL", "SOLARIS251", 104, 64, "Unclaimed"),
        ("raphael", "INTEL", "SOLARIS251", 120, 128, "Claimed"),
        ("donatello", "SPARC", "SOLARIS251", 80, 256, "Unclaimed"),
        ("michelangelo", "INTEL", "LINUX", 140, 64, "Owner"),
        ("splinter", "SPARC", "SOLARIS251", 60, 64, "Unclaimed"),
    ];
    for (name, arch, os, mips, mem, state) in machines {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Machine"; Arch = "{arch}"; OpSys = "{os}";
                 Mips = {mips}; Memory = {mem}; State = "{state}";
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap();
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Provider,
                    ad,
                    contact: format!("{name}:9614"),
                    ticket: None,
                    expires_at: 1000,
                },
                0,
                proto,
            )
            .unwrap();
    }
    for (name, owner, mem) in [("raman.0", "raman", 31), ("miron.0", "miron", 64)] {
        let ad = classad::parse_classad(&format!(
            r#"[ Name = "{name}"; Type = "Job"; Owner = "{owner}"; Memory = {mem};
                 Constraint = other.Type == "Machine"; Rank = 0 ]"#
        ))
        .unwrap();
        store
            .advertise(
                Advertisement {
                    kind: EntityKind::Customer,
                    ad,
                    contact: format!("{owner}-ca:1"),
                    ticket: None,
                    expires_at: 1000,
                },
                0,
                proto,
            )
            .unwrap();
    }
}

fn show(store: &AdStore, title: &str, constraint: &str, kind: Option<EntityKind>) {
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let mut q = Query::from_constraint(constraint)
        .unwrap()
        .select(&["Name", "Arch", "OpSys", "Mips", "Memory", "State", "Owner"]);
    q.kind = kind;
    let now: Timestamp = 0;
    let results = q.run_projected(store, now, &policy, &conv);
    println!("$ condor_status -constraint '{constraint}'   # {title}");
    println!(
        "{:<14}{:<8}{:<12}{:>6}{:>8}  {:<10}{:<8}",
        "NAME", "ARCH", "OPSYS", "MIPS", "MEMORY", "STATE", "OWNER"
    );
    for ad in &results {
        let s = |attr: &str| match ad.eval_attr(attr, &policy) {
            Value::Str(v) => v.to_string(),
            Value::Int(v) => v.to_string(),
            _ => String::new(),
        };
        println!(
            "{:<14}{:<8}{:<12}{:>6}{:>8}  {:<10}{:<8}",
            s("Name"),
            s("Arch"),
            s("OpSys"),
            s("Mips"),
            s("Memory"),
            s("State"),
            s("Owner"),
        );
    }
    println!("  ({} ad(s) matched)\n", results.len());
}

fn main() {
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    advertise_pool(&mut store, &proto);

    show(&store, "everything", "true", None);
    show(
        &store,
        "available fast INTEL machines",
        r#"other.Type == "Machine" && other.Arch == "INTEL" && other.State == "Unclaimed" && other.Mips >= 100"#,
        Some(EntityKind::Provider),
    );
    show(
        &store,
        "big-memory machines (any state)",
        r#"other.Type == "Machine" && other.Memory >= 128"#,
        Some(EntityKind::Provider),
    );
    show(
        &store,
        "the job queue",
        r#"other.Type == "Job""#,
        Some(EntityKind::Customer),
    );
    show(
        &store,
        "ads with no State attribute (three-valued logic at work)",
        "other.State is undefined",
        None,
    );
}
