//! A high-availability matchmaker set, live on loopback: one leader, two
//! standbys, agents that know the whole set — then the leader is killed
//! and the demo narrates the takeover.
//!
//! Run with:
//!
//! ```text
//! cargo run --example pool_ha -- --demo
//! ```
//!
//! The paper's weak-consistency design is what makes this scene short.
//! Claims are direct agent-to-agent leases, so the dead leader takes no
//! allocation with it; the standbys' lease election picks a successor at
//! a higher epoch; and the agents' probes chase the `leader-redirect`
//! error to the new leader, where ordinary soft-state re-advertisement
//! rebuilds the ad store. Nothing is copied between matchmakers — the
//! pool itself is the replica.
//!
//! Without `--demo` the example prints usage and exits (the demo kills a
//! daemon, so it asks to be invoked deliberately).

use classad::parse_classad;
use condor_pool::{
    Backoff, CustomerAgent, CustomerConfig, DaemonConfig, HaConfig, IoConfig, MatchmakerDaemon,
    ResourceAgent, ResourceConfig,
};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(60);

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn leader_of(daemons: &[Option<MatchmakerDaemon>]) -> Option<usize> {
    let leaders: Vec<usize> = daemons
        .iter()
        .enumerate()
        .filter(|(_, d)| d.as_ref().is_some_and(|d| d.is_leader()))
        .map(|(i, _)| i)
        .collect();
    (leaders.len() == 1).then(|| leaders[0])
}

fn main() {
    if !std::env::args().any(|a| a == "--demo") {
        println!("usage: cargo run --example pool_ha -- --demo");
        println!("(spawns a 3-member HA matchmaker set on loopback, kills the leader,");
        println!(" and narrates the failover; see docs/protocol.md §13)");
        return;
    }

    // Three matchmakers, each an equal candidate with a 2-second lease.
    let mut daemons: Vec<Option<MatchmakerDaemon>> = (0..3)
        .map(|i| {
            Some(
                MatchmakerDaemon::spawn(DaemonConfig {
                    name: format!("mm{i}"),
                    cycle_interval: Duration::from_millis(200),
                    io: IoConfig {
                        connect_timeout: Duration::from_millis(500),
                        read_timeout: Duration::from_millis(500),
                        write_timeout: Duration::from_millis(500),
                    },
                    ha: Some(HaConfig {
                        peers: Vec::new(),
                        lease: Duration::from_secs(2),
                        recovery_path: None,
                    }),
                    ..DaemonConfig::default()
                })
                .expect("spawn matchmaker"),
            )
        })
        .collect();
    let addrs: Vec<String> = daemons
        .iter()
        .map(|d| d.as_ref().unwrap().addr().to_string())
        .collect();
    for (i, d) in daemons.iter().enumerate() {
        let peers = (0..3)
            .filter(|j| *j != i)
            .map(|j| addrs[j].clone())
            .collect();
        d.as_ref().unwrap().set_ha_peers(peers);
    }
    for (i, a) in addrs.iter().enumerate() {
        println!("mm{i} listening on {a}");
    }

    wait_until("the first election", || leader_of(&daemons).is_some());
    let first = leader_of(&daemons).unwrap();
    let epoch = daemons[first].as_ref().unwrap().leader_epoch();
    println!("elected: mm{first} leads at epoch {epoch}");

    // Two machines and a two-job customer, all HA-aware: every agent is
    // configured with the full contact list and probes for the leader.
    let machine = |mips: i64| {
        parse_classad(&format!(
            r#"[ Type = "Machine"; Mips = {mips};
                 Constraint = other.Type == "Job"; Rank = 0 ]"#
        ))
        .unwrap()
    };
    let job = || {
        parse_classad(
            r#"[ Type = "Job"; Constraint = other.Type == "Machine";
                 Rank = other.Mips ]"#,
        )
        .unwrap()
    };
    let backoff = |seed| Backoff {
        initial: Duration::from_millis(25),
        max_delay: Duration::from_millis(250),
        jitter: 0.5,
        jitter_seed: seed,
        ..Backoff::default()
    };
    let resources: Vec<ResourceAgent> = (0..2)
        .map(|i| {
            ResourceAgent::spawn(
                ResourceConfig {
                    name: format!("machine-{i}"),
                    matchmakers: addrs.clone(),
                    heartbeat: Duration::from_millis(150),
                    backoff: backoff(i as u64 + 1),
                    ticket_seed: i as u64 + 11,
                    ..ResourceConfig::default()
                },
                machine(100 * (i as i64 + 1)),
            )
            .expect("spawn resource agent")
        })
        .collect();
    let customer = CustomerAgent::spawn(
        CustomerConfig {
            user: "alice".into(),
            matchmakers: addrs.clone(),
            heartbeat: Duration::from_millis(150),
            backoff: backoff(7),
            ..CustomerConfig::default()
        },
        vec![("job-0".into(), job())],
    )
    .expect("spawn customer agent");

    wait_until("the first placement", || customer.all_claimed());
    println!("placed: job-0 claimed through the epoch-{epoch} leader");

    // The outage. Nothing is flushed, handed over, or copied first.
    println!("killing leader mm{first} ...");
    let killed = Instant::now();
    daemons[first].take().unwrap().shutdown();

    wait_until("a successor", || {
        leader_of(&daemons).is_some_and(|i| i != first)
    });
    let second = leader_of(&daemons).unwrap();
    let new_epoch = daemons[second].as_ref().unwrap().leader_epoch();
    println!(
        "failover complete: mm{second} leads at epoch {new_epoch} after {:?}",
        killed.elapsed()
    );

    // The claim predates the failover and survives it untouched.
    assert!(customer.all_claimed(), "the live claim must survive");
    println!("claims survived: job-0 still holds its machine");

    // New work flows through the successor: the agents probe, follow the
    // standby's redirect, re-advertise, and the next cycles match.
    customer.add_job("job-1", job());
    wait_until("a post-failover placement", || customer.all_claimed());
    println!(
        "re-matched: job-1 placed through epoch {new_epoch} (agent failovers: {})",
        customer.stats().failovers
    );

    customer.shutdown();
    for r in resources {
        r.shutdown();
    }
    for d in daemons.iter_mut().filter_map(Option::take) {
        let mut d = d;
        d.shutdown();
    }
    println!("demo complete: zero claims lost across the failover");
}
