//! A day in the life of a Condor-like pool: the paper's Figure 3 protocol
//! (advertise → match → notify → claim) running end to end in the
//! discrete-event simulator, with opportunistic desktop machines, three
//! competing users, preemption, and checkpointing.
//!
//! Run with: `cargo run --release --example condor_pool`

use condor_sim::scenario::{GangLoadSpec, NegotiatorSettings, PolicyConfig, Scenario};
use condor_sim::workload::{FleetSpec, MachineTemplate, OwnerActivity, UserSpec};
use condor_sim::NetworkModel;

fn main() {
    let scenario = Scenario {
        seed: 20260706,
        fleet: FleetSpec {
            count: 48,
            templates: vec![
                MachineTemplate::intel_solaris(),
                MachineTemplate::sparc_solaris(),
            ],
            activity: OwnerActivity {
                mean_active_ms: 25.0 * 60_000.0,
                mean_away_ms: 45.0 * 60_000.0,
                initially_present_prob: 0.5,
                day_length_ms: 24 * 3_600 * 1000,
                night_away_factor: 4.0,
            },
        },
        policy: PolicyConfig::OwnerIdle {
            min_keyboard_idle_s: 300,
        },
        users: vec![
            UserSpec {
                mean_interarrival_ms: 2.0 * 60_000.0,
                mean_duration_ms: 20.0 * 60_000.0,
                ..UserSpec::standard("raman", 40)
            },
            UserSpec {
                mean_interarrival_ms: 3.0 * 60_000.0,
                mean_duration_ms: 15.0 * 60_000.0,
                checkpoint_prob: 0.0, // no checkpointing: restarts waste work
                ..UserSpec::standard("miron", 30)
            },
            UserSpec {
                mean_interarrival_ms: 5.0 * 60_000.0,
                mean_duration_ms: 30.0 * 60_000.0,
                ..UserSpec::standard("solomon", 20)
            },
        ],
        network: NetworkModel {
            base_latency_ms: 2,
            jitter_ms: 5,
            drop_prob: 0.001,
        },
        advertise_period_ms: 60_000,
        negotiation_period_ms: 120_000,
        push_ads_on_change: true,
        negotiator: NegotiatorSettings {
            threads: 1,
            preemption: true,
            charge_per_match: 60.0,
            priority_halflife_ms: Some(3_600_000.0),
            autocluster: true,
        },
        duration_ms: 24 * 3_600 * 1000, // one simulated day
        // Co-allocation load: gangs needing a machine AND a matlab seat.
        licenses: 3,
        gang_users: vec![GangLoadSpec {
            user: "jbasney".into(),
            count: 10,
            mean_interarrival_ms: 45.0 * 60_000.0,
            mean_duration_ms: 25.0 * 60_000.0,
            memory: 31,
        }],
        ..Default::default()
    };

    println!(
        "simulating {} machines, {} users, {} jobs, one virtual day...\n",
        scenario.fleet.count,
        scenario.users.len(),
        scenario.total_jobs()
    );

    let (summary, sim) = scenario.run();
    let m = sim.metrics();

    println!("==== pool activity ====");
    println!(
        "virtual time elapsed     : {:.1} h",
        sim.now() as f64 / 3_600_000.0
    );
    println!("events processed         : {}", sim.events_processed());
    println!("negotiation cycles       : {}", m.cycles);
    println!("matches handed out       : {}", m.matches);
    println!("claim attempts           : {}", m.claim_attempts);
    println!("claims accepted          : {}", m.claims_accepted);
    for (why, n) in &m.claims_rejected {
        println!("  rejected ({why}): {n}");
    }
    println!("vacated by owner return  : {}", m.vacated_by_owner);
    println!("preempted by rank        : {}", m.preempted_by_rank);
    println!(
        "gangs granted / aborted  : {} / {}",
        m.gangs_granted, m.gangs_aborted
    );
    println!(
        "messages sent / dropped  : {} / {}",
        m.messages_sent, m.messages_dropped
    );

    println!("\n==== throughput (the HTC view) ====");
    println!("jobs submitted           : {}", summary.jobs_submitted);
    println!("jobs completed           : {}", summary.jobs_completed);
    println!(
        "throughput               : {:.1} jobs/hour",
        summary.throughput_per_hour
    );
    println!(
        "mean wait                : {:.1} min",
        summary.mean_wait_ms / 60_000.0
    );
    println!(
        "mean turnaround          : {:.1} min",
        summary.mean_turnaround_ms / 60_000.0
    );
    println!(
        "machine utilization      : {:.1} %",
        summary.utilization * 100.0
    );
    println!(
        "goodput fraction         : {:.1} %",
        summary.goodput_fraction * 100.0
    );
    println!(
        "claim failure rate       : {:.1} %",
        summary.claim_failure_rate * 100.0
    );

    println!("\n==== per-user completed work (fair share) ====");
    let mut users: Vec<(&String, &u64)> = m.per_user_goodput.iter().collect();
    users.sort();
    for (user, work) in users {
        println!(
            "  {user:10} {:.1} reference-cpu-minutes",
            *work as f64 / 60_000.0
        );
    }
}
