//! "Why doesn't my job run?" — the paper's §5 diagnosis direction.
//!
//! Builds a small heterogeneous pool and diagnoses three requests: one
//! satisfiable, one with an impossible numeric bound, one rejected by the
//! machines' own policies.
//!
//! Run with: `cargo run --example diagnosis`

use classad::{parse_classad, ClassAd, EvalPolicy, MatchConventions};
use gangmatch::diagnosis::diagnose;
use std::sync::Arc;

fn pool() -> Vec<Arc<ClassAd>> {
    (0..12)
        .map(|i| {
            Arc::new(
                parse_classad(&format!(
                    r#"[ Name = "node{i:02}"; Type = "Machine";
                         Arch = "{arch}"; OpSys = "SOLARIS251";
                         Memory = {mem}; Mips = {mips}; Disk = {disk};
                         Constraint = other.Owner != "riffraff";
                         Rank = 0 ]"#,
                    arch = if i % 3 == 0 { "SPARC" } else { "INTEL" },
                    mem = 32 << (i % 3), // 32 / 64 / 128
                    mips = 60 + 7 * i,
                    disk = 50_000 + 40_000 * i,
                ))
                .unwrap(),
            )
        })
        .collect()
}

fn diagnose_and_print(title: &str, job_src: &str, offers: &[Arc<ClassAd>]) {
    let job = parse_classad(job_src).unwrap();
    let d = diagnose(
        &job,
        offers,
        &EvalPolicy::default(),
        &MatchConventions::default(),
    );
    println!("--- {title} ---");
    println!("constraint: {}", job.get("Constraint").unwrap());
    print!("{d}");
    if d.unsatisfiable() {
        println!("verdict: UNSATISFIABLE in this pool\n");
    } else {
        println!("verdict: {} machine(s) can serve this job\n", d.matches);
    }
}

fn main() {
    let offers = pool();
    println!(
        "pool: {} machines (INTEL/SPARC, 32–128 MB, 60–137 mips)\n",
        offers.len()
    );

    diagnose_and_print(
        "a reasonable job",
        r#"[ Name = "ok"; Type = "Job"; Owner = "raman";
            Constraint = other.Type == "Machine" && other.Arch == "INTEL"
                         && other.Memory >= 64 ]"#,
        &offers,
    );

    diagnose_and_print(
        "an impossible memory requirement",
        r#"[ Name = "big"; Type = "Job"; Owner = "raman";
            Constraint = other.Type == "Machine" && other.Memory >= 1024
                         && other.Arch == "INTEL" ]"#,
        &offers,
    );

    diagnose_and_print(
        "a typo'd architecture",
        r#"[ Name = "typo"; Type = "Job"; Owner = "raman";
            Constraint = other.Type == "Machine" && other.Arch == "INTLE" ]"#,
        &offers,
    );

    diagnose_and_print(
        "an attribute nobody advertises",
        r#"[ Name = "gpu"; Type = "Job"; Owner = "raman";
            Constraint = other.Type == "Machine" && other.GPUs >= 2 ]"#,
        &offers,
    );

    diagnose_and_print(
        "a banned user (offer-side veto)",
        r#"[ Name = "banned"; Type = "Job"; Owner = "riffraff";
            Constraint = other.Type == "Machine" ]"#,
        &offers,
    );
}
