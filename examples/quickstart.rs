//! Quickstart: the paper's Figure 1 and Figure 2 ads, matched exactly as
//! §3.2 describes, then pushed through a full negotiation cycle.
//!
//! Run with: `cargo run --example quickstart`

use classad::fixtures::{FIGURE1_MACHINE, FIGURE2_JOB};
use classad::{evaluate_match, parse_classad, EvalPolicy, MatchConventions};
use matchmaker::prelude::*;

fn main() {
    // --- 1. The classad data model -------------------------------------
    let machine = parse_classad(FIGURE1_MACHINE).expect("figure 1 parses");
    let mut job = parse_classad(FIGURE2_JOB).expect("figure 2 parses");
    // Figure 2 carries no Name; the advertising protocol requires one (it
    // keys the matchmaker's ad store), so name it as a CA would.
    job.set_str("Name", "raman.sim2.0");

    println!("Machine ad (paper, Figure 1):\n{}\n", machine.pretty());
    println!("Job ad (paper, Figure 2):\n{}\n", job.pretty());

    // --- 2. Bilateral matching -----------------------------------------
    // Both Constraint expressions must evaluate to true, each ad seeing
    // the other through `other.*`; Rank orders compatible candidates.
    let policy = EvalPolicy::default();
    let conv = MatchConventions::default();
    let result = evaluate_match(&job, &machine, &policy, &conv);
    println!("job constraint accepts machine: {}", result.left_constraint);
    println!(
        "machine constraint accepts job: {}",
        result.right_constraint
    );
    println!(
        "job's rank of machine:  {:.3}  (KFlops/1E3 + Memory/32)",
        result.left_rank
    );
    println!(
        "machine's rank of job:  {:.3}  (research group member)",
        result.right_rank
    );
    assert!(result.matched());

    // --- 3. A negotiation cycle ----------------------------------------
    // Entities advertise to the matchmaker; the negotiator pairs them and
    // produces match notifications. The matchmaker keeps no match state.
    let proto = AdvertisingProtocol::default();
    let mut store = AdStore::new();
    let mut tickets = TicketIssuer::new(42);
    let ticket = tickets.issue();
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Provider,
                ad: machine,
                contact: "leonardo.cs.wisc.edu:9614".into(),
                ticket: Some(ticket),
                expires_at: 600,
            },
            0,
            &proto,
        )
        .expect("machine ad admitted");
    store
        .advertise(
            Advertisement {
                kind: EntityKind::Customer,
                ad: job,
                contact: "raman-ca:1".into(),
                ticket: None,
                expires_at: 600,
            },
            0,
            &proto,
        )
        .expect("job ad admitted");

    let mut negotiator = Negotiator::default();
    let outcome = negotiator.negotiate(&store, 0);
    println!("\nnegotiation cycle: {} match(es)", outcome.stats.matches);
    let m = &outcome.matches[0];
    println!(
        "  {} (owner {}) <-> {}  [request rank {:.3}, offer rank {:.1}]",
        m.request_name, m.owner, m.offer_name, m.request_rank, m.offer_rank
    );

    // --- 4. Claiming ----------------------------------------------------
    // The customer contacts the provider directly, presenting the ticket;
    // the provider re-verifies everything against *current* state.
    let (to_customer, _to_provider) = m.notifications();
    let mut handler = ClaimHandler::new();
    handler.set_ticket(ticket);
    let req = ClaimRequest {
        ticket: to_customer
            .ticket
            .expect("customer copy carries the ticket"),
        customer_ad: to_customer.own_ad.clone(),
        customer_contact: "raman-ca:1".into(),
    };
    let (resp, _) = handler.handle_claim(&req, &to_customer.peer_ad, 5, |_| false);
    println!("\nclaim accepted: {}", resp.accepted);
    assert!(resp.accepted);
    println!("claim state: {:?}", handler.state());
}
