#![forbid(unsafe_code)]
//! # matchmaking — classad matchmaking for high-throughput computing
//!
//! Umbrella crate for a from-scratch reproduction of *Raman, Livny &
//! Solomon, "Matchmaking: Distributed Resource Management for High
//! Throughput Computing" (HPDC 1998)* — the ClassAd framework that
//! underpins Condor/HTCondor.
//!
//! The system is split into five crates, re-exported here:
//!
//! * [`classad`] — the ClassAd language: parser, three-valued evaluator,
//!   builtin functions, bilateral matching semantics, pretty-printer,
//!   JSON interop, and the paper's Figure 1/2 ads as fixtures.
//! * [`matchmaker`] — the framework: advertising protocol, soft-state ad
//!   store, fair-share priorities, negotiation cycles, match
//!   notifications, tickets, and the claiming protocol.
//! * [`condor_sim`] — a deterministic discrete-event simulation of a
//!   Condor-like pool (Resource-owner Agents, Customer Agents, pool
//!   manager) that drives the real protocol end to end.
//! * [`gangmatch`] — the paper's §5 directions, implemented: regularity
//!   aggregation / group matching, gang co-allocation, and
//!   unsatisfiable-constraint diagnosis.
//! * [`condor_pool`] — the live runtime: the matchmaker as a TCP daemon
//!   plus resource/customer agent runtimes with soft-state leases,
//!   deadlines, and bounded retry, speaking the same wire format over
//!   real sockets.
//!
//! See `examples/quickstart.rs` for a three-minute tour, and DESIGN.md /
//! EXPERIMENTS.md for the paper-artifact map.

pub use classad;
pub use condor_pool;
pub use condor_sim;
pub use gangmatch;
pub use matchmaker;
